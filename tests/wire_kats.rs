//! Golden known-answer vectors for the wire codec: one pinned hex frame
//! per cross-player message type.
//!
//! These freeze the byte layout of [`borndist::net::WIRE_VERSION`] 1. If
//! any of them changes, the wire format changed: bump the version byte
//! and regenerate (`cargo test --test wire_kats -- --ignored
//! regenerate_kats --nocapture` prints fresh vectors). All inputs are
//! deterministic (seeded shim RNG), so the vectors are stable across
//! machines and runs.

use borndist::core::netsign::SignMessage;
use borndist::core::ro::ThresholdScheme;
use borndist::dkg::{AggregateWitness, DkgMessage, RecoveryMessage};
use borndist::net::encode_frame;
use borndist::pairing::{G1Projective, G2Projective};
use borndist::shamir::{PedersenBases, PedersenSharing, ThresholdParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{:02x}", b)).collect()
}

/// Builds one deterministic frame per wire message type.
fn kat_frames() -> Vec<(&'static str, Vec<u8>)> {
    // Shamir layer: one Pedersen sharing, threshold 1 (2 coefficients).
    let mut r = StdRng::seed_from_u64(0x6a7);
    let bases = PedersenBases {
        g_z: G2Projective::random(&mut r).to_affine(),
        g_r: G2Projective::random(&mut r).to_affine(),
    };
    let sharing = PedersenSharing::deal_random(&bases, 1, &mut r);
    let witness = AggregateWitness {
        z0: G1Projective::random(&mut r).to_affine(),
        r0: G1Projective::random(&mut r).to_affine(),
    };

    // Core layer: dealer keygen (t=1, n=3) and a signature.
    let scheme = ThresholdScheme::new(b"wire-kats");
    let mut rk = StdRng::seed_from_u64(0x6a72);
    let km = scheme.dealer_keygen(ThresholdParams::new(1, 3).unwrap(), &mut rk);
    let partial1 = scheme.share_sign(&km.shares[&1], b"kat message");
    let partial2 = scheme.share_sign(&km.shares[&2], b"kat message");
    let sig = scheme.combine(&km.params, &[partial1, partial2]).unwrap();

    vec![
        (
            "dkg_commitments",
            encode_frame(&DkgMessage::Commitments {
                commitments: vec![sharing.commitment.clone()],
                aggregate: Some(witness),
            }),
        ),
        (
            "dkg_shares",
            encode_frame(&DkgMessage::Shares {
                shares: vec![sharing.share_for(2)],
            }),
        ),
        (
            "dkg_complaints",
            encode_frame(&DkgMessage::Complaints {
                against: vec![2, 5],
            }),
        ),
        (
            "dkg_complaint_answers",
            encode_frame(&DkgMessage::ComplaintAnswers {
                answers: vec![(3, vec![sharing.share_for(3)])],
            }),
        ),
        (
            "recovery_mask_commitment",
            encode_frame(&RecoveryMessage::MaskCommitment {
                commitment: sharing.commitment.clone(),
            }),
        ),
        (
            "recovery_mask_share",
            encode_frame(&RecoveryMessage::MaskShare {
                share: sharing.share_for(4),
            }),
        ),
        (
            "recovery_masked_point",
            encode_frame(&RecoveryMessage::MaskedPoint {
                a: sharing.share_for(1).a,
                b: sharing.share_for(1).b,
            }),
        ),
        (
            "sign_partial",
            encode_frame(&SignMessage::Partial(partial1)),
        ),
        ("sign_combined", encode_frame(&SignMessage::Combined(sig))),
        ("public_key", encode_frame(&km.public_key)),
        ("verification_key", encode_frame(&km.verification_keys[&2])),
        ("key_share", encode_frame(&km.shares[&2])),
        ("partial_signature", encode_frame(&partial2)),
        ("signature", encode_frame(&sig)),
        ("pedersen_commitment", encode_frame(&sharing.commitment)),
        ("pedersen_share", encode_frame(&sharing.share_for(5))),
        ("one_time_signature", encode_frame(&sig.sig)),
    ]
}

/// The pinned vectors (wire version 1).
const EXPECTED: &[(&str, &str)] = &[
    ("dkg_commitments", "0100000000010000000286f296834e366b4a3ed097fb385e8779fb2e6e82bdaab46b2796d228d93d5e1959a2ae4591269d6db35c6c78c7748dc60932d0c54a1a4327465eee51d4328a2531bec706d5bc1261ee03e603dc4a3caf55c257539f3d4d79616f4690dbcec923848b915df872039b949191ce3cca7eaa4732baecf7de732fec88c1f636b0098c4778efe9a129c98c012a958873584a2b150250cbbd11f54e1aacee13d604e6ff4f372528eb6ef01e7d539032afb3ca26d22c43b2e4ebea01857f519eda62e5c201b6e85dc5e42a4e8bdaa5c647c52f5bec2b9bca36cae158a26231466cfe18c3cc71180a7fd8bdc7da973f8a8b15f9e28d97aa98643bd1a7af060c40626ad78be1853d8547560a3068e613a8dea9c2d29c4f780092a5cd05e883e944677e2a613a"),
    ("dkg_shares", "010100000001000000026205d485429412cf8933f25e591b327ed6872760454130c48ca130191063b090611b2380313ae80371351822ab4ba0eda6ebb34f6f8f097b8d9630756728b049"),
    ("dkg_complaints", "0102000000020000000200000005"),
    ("dkg_complaint_answers", "0103000000010000000300000001000000036150ba456422d97a0f5a5fd1e70b9af1445d07e8421015e8b0cd96944a1e0ab82857b6477eede2b63c07f98fbc6dd3e794d7b99a12cc573578433d7142f1da33"),
    ("recovery_mask_commitment", "01000000000286f296834e366b4a3ed097fb385e8779fb2e6e82bdaab46b2796d228d93d5e1959a2ae4591269d6db35c6c78c7748dc60932d0c54a1a4327465eee51d4328a2531bec706d5bc1261ee03e603dc4a3caf55c257539f3d4d79616f4690dbcec923848b915df872039b949191ce3cca7eaa4732baecf7de732fec88c1f636b0098c4778efe9a129c98c012a958873584a2b150250cbbd11f54e1aacee13d604e6ff4f372528eb6ef01e7d539032afb3ca26d22c43b2e4ebea01857f519eda62e5c2"),
    ("recovery_mask_share", "010100000004609ba00585b1a0249580cd4574fc0363b232e8703edefb0cd4f9fd0f83d864e06381f061f63e5ab13a14b304d731dee6d68163e7b60800ee62f04a6c1ebb041e"),
    ("recovery_masked_point", "010262baeec521054c25030d84eacb2aca0c68b146d848724ba06874c99dd6a9566825f0e965b9ea700873285ead908795ee65420901cc535fc2a2e9237a8b5f865e"),
    ("sign_partial", "0100000000019287750b355ec34f52fac59b91c47a12eda1de9194de526f8a3aaa06b56848fbf84e2868558d4c393b1bf1cc058f8523879d8e2eb7b44f128ddf714a09b1b53f6358fe6876697a1b86e670365e4c1ff939737921ee72423f367580ce0282fc7d"),
    ("sign_combined", "010195396de88c137500a3eb076f9a2cbe8b250d7a63d3a19378335ffcbafb489b5fadcce05a46257e72413942876df1d2bb875c15b089c86cbc12b52c21569f4239cbe4f2103c4cb9613a309c2a0ad332ff1e2f218628be0ccf6a490e25d60c5e6c"),
    ("public_key", "018a3fe2a6637751f841306c80b4a318cb9d4183e613a7483c0e1e98c8d56c4aa95a5ffb95889d91697355f71eaf6a56740b5b866b8b4b96e5dbf3268e85417cbbd9ab998f425b9fc53f827fa23b43f2fb332dad5a6ebab9c0e0075bd8a9e21616b8926618c6dd96e1ff575c82fd48914d42dd30b7522ad34a9cf80b33506821fea8aa7d14f688b2ffee3cb25430087150198d3a2f28e2ad315e400ac160345bcfdab30d8e61fee4d4ac0e7c058445c4b286f947c7311c408e841ce2bbdcd157fd"),
    ("verification_key", "01000000020000000298d01232022b555de4b6a922394c66113f260d6b642b131bbcca6136343a86c9be391cdfa1b6aca401df011d14c1b3111987e987e7cb5fdbbab144611392d62c1377d490b09be2defe5db12e65deccca63848f92373525e793a7b4ea97a49e6fa325439cd2ca285123de6e95c07f9337ada9802624d8f9c5363d3f86a8f35a3de9f466daf8262dc48d7c616c0f0f931f10dedfbb8b5ea6d4155964b2f366191e5f1731511b216be6537a2ec64b84666ed48928822c0cdc6d7a6be553a50a8bc9"),
    ("key_share", "01000000020000000272e9219c7a52d224dc7d62f3cb9fea12336cf8091b52046a6cfe70d6ff1891f36529bcc29e9d0b8510c8152f5c77e1e4fe0b26fa189f21988c06bbb076286d05000000024f9ed5a4d47566a0e5a4b6a8e37faa5be42a1ea627ebcc513853b69c358ca6e241952eb7de321e599bbb70c6a493b3e7be7672c35ebaa9cc935d31b8b03f0f72"),
    ("partial_signature", "010000000299288fd1eb2fa1986799844c9bb600f83b8d16d18a85ff05b64b399ded8486760d57ec1ff556ac4356c0b1729314c9c5b7c281a036470bd6c5dae90a0cf2199270a1015d1ab5feabec4025d1c5369199daf73d29cf9701d313eefbe08f9d687b"),
    ("signature", "0195396de88c137500a3eb076f9a2cbe8b250d7a63d3a19378335ffcbafb489b5fadcce05a46257e72413942876df1d2bb875c15b089c86cbc12b52c21569f4239cbe4f2103c4cb9613a309c2a0ad332ff1e2f218628be0ccf6a490e25d60c5e6c"),
    ("pedersen_commitment", "010000000286f296834e366b4a3ed097fb385e8779fb2e6e82bdaab46b2796d228d93d5e1959a2ae4591269d6db35c6c78c7748dc60932d0c54a1a4327465eee51d4328a2531bec706d5bc1261ee03e603dc4a3caf55c257539f3d4d79616f4690dbcec923848b915df872039b949191ce3cca7eaa4732baecf7de732fec88c1f636b0098c4778efe9a129c98c012a958873584a2b150250cbbd11f54e1aacee13d604e6ff4f372528eb6ef01e7d539032afb3ca26d22c43b2e4ebea01857f519eda62e5c2"),
    ("pedersen_share", "01000000055fe685c5a74066cf1ba73ab902ec6bd62008c8f83bade030f926638abd92bf082abe832943f1556404e79471e85411e0c46d6a3259454ea84d9d5767fa842e08"),
    ("one_time_signature", "0195396de88c137500a3eb076f9a2cbe8b250d7a63d3a19378335ffcbafb489b5fadcce05a46257e72413942876df1d2bb875c15b089c86cbc12b52c21569f4239cbe4f2103c4cb9613a309c2a0ad332ff1e2f218628be0ccf6a490e25d60c5e6c"),
];

#[test]
#[ignore = "generator: prints fresh vectors for pinning"]
fn regenerate_kats() {
    println!("const EXPECTED: &[(&str, &str)] = &[");
    for (name, frame) in kat_frames() {
        println!("    (\"{}\", \"{}\"),", name, hex(&frame));
    }
    println!("];");
}

#[test]
fn golden_frames_match() {
    let frames = kat_frames();
    assert_eq!(
        frames.len(),
        EXPECTED.len(),
        "KAT coverage changed — regenerate the pinned vectors"
    );
    for ((name, frame), (exp_name, exp_hex)) in frames.iter().zip(EXPECTED) {
        assert_eq!(name, exp_name, "KAT order changed");
        assert_eq!(
            &hex(frame),
            exp_hex,
            "wire layout of `{}` changed — this is a format break; bump WIRE_VERSION",
            name
        );
    }
}

/// Strictly decodes a KAT frame through the message type it was pinned
/// for and returns the re-encoding — the per-type dispatch both the
/// canonicity test and the tamper test go through.
fn decode_reencode(name: &str, frame: &[u8]) -> Result<Vec<u8>, borndist::pairing::CodecError> {
    use borndist::net::decode_frame;
    Ok(match name {
        n if n.starts_with("dkg_") => encode_frame(&decode_frame::<DkgMessage>(frame)?),
        n if n.starts_with("recovery_") => encode_frame(&decode_frame::<RecoveryMessage>(frame)?),
        n if n.starts_with("sign_") => encode_frame(&decode_frame::<SignMessage>(frame)?),
        "public_key" => encode_frame(&decode_frame::<borndist::core::ro::PublicKey>(frame)?),
        "verification_key" => {
            encode_frame(&decode_frame::<borndist::core::ro::VerificationKey>(frame)?)
        }
        "key_share" => encode_frame(&decode_frame::<borndist::core::ro::KeyShare>(frame)?),
        "partial_signature" => encode_frame(&decode_frame::<borndist::core::ro::PartialSignature>(
            frame,
        )?),
        "signature" => encode_frame(&decode_frame::<borndist::core::ro::Signature>(frame)?),
        "pedersen_commitment" => encode_frame(
            &decode_frame::<borndist::shamir::PedersenCommitment>(frame)?,
        ),
        "pedersen_share" => encode_frame(&decode_frame::<borndist::shamir::PedersenShare>(frame)?),
        "one_time_signature" => {
            encode_frame(&decode_frame::<borndist::lhsps::OneTimeSignature>(frame)?)
        }
        other => panic!("unknown KAT `{}`", other),
    })
}

#[test]
fn golden_frames_decode() {
    // Every pinned frame decodes strictly through its message type and
    // re-encodes to the identical bytes (canonicity at the frame level).
    for (name, frame) in kat_frames() {
        let reencoded = decode_reencode(name, &frame)
            .unwrap_or_else(|e| panic!("`{}` failed to decode: {}", name, e));
        assert_eq!(
            reencoded, frame,
            "`{}` does not re-encode canonically",
            name
        );
    }
}

#[test]
fn wire_sizes_are_paper_scale() {
    // E1/E4 sanity directly on the codec: signatures are 2 G1 points,
    // shares 4 scalars — the "short" sizes the paper claims, up to
    // BLS12-381's 48-byte base field.
    let frames: std::collections::BTreeMap<_, _> = kat_frames().into_iter().collect();
    assert_eq!(frames["signature"].len(), 1 + 96);
    assert_eq!(frames["partial_signature"].len(), 1 + 4 + 96);
    assert_eq!(frames["public_key"].len(), 1 + 192);
    assert_eq!(frames["pedersen_share"].len(), 1 + 4 + 64);
    assert_eq!(frames["key_share"].len(), 1 + 4 + (4 + 64) + (4 + 64));
}

#[test]
fn trailing_and_truncated_kat_frames_rejected() {
    // Strictness, exercised per message type through the same dispatch
    // the canonicity test uses: appending a byte or dropping the last
    // byte must fail the strict decode for every pinned frame.
    for (name, frame) in kat_frames() {
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(
            decode_reencode(name, &trailing).is_err(),
            "`{}` accepted a trailing byte — strict decoding is broken",
            name
        );
        assert!(
            decode_reencode(name, &frame[..frame.len() - 1]).is_err(),
            "`{}` accepted a truncated frame",
            name
        );
    }
}
