//! The aggregation gateway's batching contract (ISSUE 8): a poisoned
//! buffer is bisected so honest traffic still verifies and every forgery
//! is pinpointed; buffers never fold across epochs; deadline-only
//! trickle traffic is answered by `poll`; and verdicts are bit-identical
//! at every thread count.

use borndist::core::gateway::{AggregationGateway, GatewayConfig, Verdict, VerifyRequest};
use borndist::core::ro::{PartialSignature, Signature};
use borndist::core::{AggPublicKey, AggregateScheme};
use borndist::parallel::{with_parallelism, Parallelism};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A signing authority: self-certifying key plus enough shares to
/// combine.
struct Authority {
    pk: AggPublicKey,
    km: borndist::core::ro::KeyMaterial,
    params: ThresholdParams,
}

fn authorities(scheme: &AggregateScheme, n: usize, rng: &mut StdRng) -> Vec<Authority> {
    let params = ThresholdParams::new(1, 4).unwrap();
    (0..n)
        .map(|_| {
            let (pk, km) = scheme.dealer_keygen(params, rng);
            Authority { pk, km, params }
        })
        .collect()
}

fn sign(scheme: &AggregateScheme, auth: &Authority, msg: &[u8]) -> Signature {
    let partials: Vec<PartialSignature> = (1..=2u32)
        .map(|j| scheme.share_sign(&auth.pk, &auth.km.shares[&j], msg))
        .collect();
    scheme.combine(&auth.params, &partials).unwrap()
}

/// Builds `k` requests from a handful of authorities, signing message
/// `i`; requests whose index is in `forged` carry a signature over a
/// *different* message (a forgery against the submitted statement).
fn requests(
    scheme: &AggregateScheme,
    auths: &[Authority],
    k: usize,
    epoch: u64,
    forged: &[usize],
) -> Vec<VerifyRequest> {
    (0..k)
        .map(|i| {
            let auth = &auths[i % auths.len()];
            let msg = format!("gateway message {}", i).into_bytes();
            let sig = if forged.contains(&i) {
                sign(scheme, auth, b"a different message entirely")
            } else {
                sign(scheme, auth, &msg)
            };
            VerifyRequest {
                id: i as u64,
                epoch,
                pk: auth.pk.clone(),
                msg,
                sig,
            }
        })
        .collect()
}

#[test]
fn poisoned_buffer_bisection_isolates_forgeries() {
    let scheme = AggregateScheme::new(b"gateway-bisect");
    let mut rng = StdRng::seed_from_u64(81);
    let auths = authorities(&scheme, 3, &mut rng);
    let forged = [2usize, 9, 10];
    let reqs = requests(&scheme, &auths, 16, 0, &forged);

    let config = GatewayConfig {
        max_batch: 16,
        ..GatewayConfig::default()
    };
    let mut gw = AggregationGateway::new(scheme, config, StdRng::seed_from_u64(82));
    let now = Instant::now();
    let mut verdicts: Vec<Verdict> = Vec::new();
    for req in reqs {
        verdicts.extend(gw.submit_at(req, now));
    }
    // The 16th submission hit the size trigger and answered everything.
    assert_eq!(verdicts.len(), 16);
    assert_eq!(gw.buffered(), 0);
    for v in &verdicts {
        assert_eq!(
            v.valid,
            !forged.contains(&(v.id as usize)),
            "request {} misjudged",
            v.id
        );
    }
    let stats = gw.stats();
    assert_eq!(stats.size_flushes, 1);
    assert_eq!(stats.accepted, 13);
    assert_eq!(stats.rejected, 3);
    // The first product rejected and forced splits; the forgeries were
    // pinned down at per-item leaves.
    assert!(stats.bisections >= 1, "poisoned batch must bisect");
    assert!(stats.leaf_checks >= forged.len() as u64);
}

#[test]
fn all_honest_buffer_costs_one_product() {
    let scheme = AggregateScheme::new(b"gateway-amortize");
    let mut rng = StdRng::seed_from_u64(83);
    let auths = authorities(&scheme, 2, &mut rng);
    let reqs = requests(&scheme, &auths, 8, 0, &[]);

    let config = GatewayConfig {
        max_batch: 8,
        ..GatewayConfig::default()
    };
    let mut gw = AggregationGateway::new(scheme, config, StdRng::seed_from_u64(84));
    let now = Instant::now();
    let mut verdicts = Vec::new();
    for req in reqs.iter().cloned() {
        verdicts.extend(gw.submit_at(req, now));
    }
    assert_eq!(verdicts.len(), 8);
    assert!(verdicts.iter().all(|v| v.valid));
    let stats = gw.stats();
    assert_eq!(stats.multi_pairings, 1, "honest flush = one folded product");
    assert_eq!(stats.bisections, 0);
    assert_eq!(stats.leaf_checks, 0);
    assert_eq!(stats.prepared_misses, 2, "two distinct keys prepared");

    // Second buffer under the same keys: cache hits, and the keys'
    // validity equations no longer ride along (already memoized).
    let again = requests(gw.scheme(), &auths, 8, 0, &[]);
    let mut verdicts2 = Vec::new();
    for req in again {
        verdicts2.extend(gw.submit_at(req, now));
    }
    assert!(verdicts2.iter().all(|v| v.valid));
    let stats = gw.stats();
    assert_eq!(stats.multi_pairings, 2);
    assert_eq!(stats.prepared_misses, 2, "no re-preparation on reuse");
    assert!(stats.prepared_hits >= 2);
}

#[test]
fn epoch_boundary_flushes_without_cross_epoch_folding() {
    let scheme = AggregateScheme::new(b"gateway-epoch");
    let mut rng = StdRng::seed_from_u64(85);
    let auths = authorities(&scheme, 2, &mut rng);
    let epoch0 = requests(&scheme, &auths, 3, 0, &[]);
    let mut epoch1 = requests(&scheme, &auths, 1, 1, &[]);
    epoch1[0].id = 100;

    let mut gw =
        AggregationGateway::new(scheme, GatewayConfig::default(), StdRng::seed_from_u64(86));
    let now = Instant::now();
    for req in epoch0 {
        assert!(
            gw.submit_at(req, now).is_empty(),
            "buffer below both triggers"
        );
    }
    assert_eq!(gw.buffered(), 3);
    // The first epoch-1 arrival answers epoch 0's stragglers immediately
    // — and only them; the new request waits in its own buffer.
    let verdicts = gw.submit_at(epoch1.pop().unwrap(), now);
    assert_eq!(verdicts.len(), 3);
    assert!(verdicts.iter().all(|v| v.epoch == 0 && v.valid));
    assert_eq!(gw.buffered(), 1);
    assert_eq!(gw.stats().epoch_flushes, 1);
    // The straggler epoch answers on its own — never folded with epoch
    // 0. A singleton buffer skips the folded product entirely and takes
    // the per-item leaf path.
    let flushed = gw.flush_all();
    assert_eq!(flushed.len(), 1);
    assert_eq!(flushed[0].epoch, 1);
    assert_eq!(flushed[0].id, 100);
    assert!(flushed[0].valid);
    assert_eq!(gw.stats().multi_pairings, 1);
    assert_eq!(gw.stats().leaf_checks, 1);
}

#[test]
fn deadline_poll_answers_trickle_traffic() {
    let scheme = AggregateScheme::new(b"gateway-deadline");
    let mut rng = StdRng::seed_from_u64(87);
    let auths = authorities(&scheme, 1, &mut rng);
    let reqs = requests(&scheme, &auths, 2, 0, &[]);

    let config = GatewayConfig {
        max_batch: 64,
        max_delay: Duration::from_millis(5),
        ..GatewayConfig::default()
    };
    let mut gw = AggregationGateway::new(scheme, config, StdRng::seed_from_u64(88));
    let t0 = Instant::now();
    for req in reqs {
        assert!(gw.submit_at(req, t0).is_empty());
    }
    assert_eq!(
        gw.next_deadline(),
        Some(t0 + Duration::from_millis(5)),
        "serving loop sleeps until the oldest request's deadline"
    );
    // Before the deadline: nothing moves.
    assert!(gw.poll_at(t0 + Duration::from_millis(4)).is_empty());
    assert_eq!(gw.buffered(), 2);
    // At the deadline: the whole trickle answers on one product.
    let verdicts = gw.poll_at(t0 + Duration::from_millis(5));
    assert_eq!(verdicts.len(), 2);
    assert!(verdicts.iter().all(|v| v.valid));
    assert_eq!(gw.buffered(), 0);
    assert_eq!(gw.stats().deadline_flushes, 1);
    assert!(gw.next_deadline().is_none());
}

/// Runs a full poisoned workload (two size flushes + a deadline flush)
/// and returns the verdict sequence.
fn poisoned_run(parallelism: Parallelism) -> Vec<Verdict> {
    with_parallelism(parallelism, || {
        let scheme = AggregateScheme::new(b"gateway-invariant");
        let mut rng = StdRng::seed_from_u64(89);
        let auths = authorities(&scheme, 3, &mut rng);
        let reqs = requests(&scheme, &auths, 20, 0, &[1, 7, 13, 18]);
        let config = GatewayConfig {
            max_batch: 8,
            ..GatewayConfig::default()
        };
        let mut gw = AggregationGateway::new(scheme, config, StdRng::seed_from_u64(90));
        let t0 = Instant::now();
        let mut verdicts = Vec::new();
        for req in reqs {
            verdicts.extend(gw.submit_at(req, t0));
        }
        verdicts.extend(gw.poll_at(t0 + Duration::from_millis(10)));
        verdicts
    })
}

#[test]
fn verdicts_invariant_under_thread_count() {
    let reference = poisoned_run(Parallelism::Sequential);
    assert_eq!(reference.len(), 20);
    let forged = [1u64, 7, 13, 18];
    for v in &reference {
        assert_eq!(v.valid, !forged.contains(&v.id));
    }
    for p in [Parallelism::Threads(2), Parallelism::Threads(7)] {
        assert_eq!(
            poisoned_run(p),
            reference,
            "gateway verdicts diverged under {:?}",
            p
        );
    }
}
