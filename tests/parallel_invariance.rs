//! Thread-count invariance of the multi-core execution layer (ISSUE 4).
//!
//! Every parallel hot path — batch verification, robust combine, MSM,
//! Miller-loop sharding, batched normalization, fixed-base tables — must
//! return **bit-identical** results under `Parallelism::Sequential`,
//! `Threads(2)` and `Threads(7)` on the same deterministic-seed inputs,
//! including the forged-in-batch adversarial cases mirrored from
//! `tests/adversarial.rs`. The parallel layer is an execution detail; it
//! must never be observable in outputs.

use borndist::core::ro::{PartialSignature, PublicKey, Signature, ThresholdScheme};
use borndist::pairing::{
    msm, multi_miller_loop_mixed, multi_pairing, multi_pairing_mixed, FixedBaseTable, Fr, G1Affine,
    G1Projective, G2Affine, G2Prepared, G2Projective,
};
use borndist::parallel::{with_parallelism, Parallelism};
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The settings every result is compared across (the first is the
/// sequential reference).
const SETTINGS: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Threads(2),
    Parallelism::Threads(7),
];

/// Runs `f` under every setting and asserts all results equal the
/// sequential reference.
fn invariant<R: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> R) -> R {
    let reference = with_parallelism(SETTINGS[0], &f);
    for p in &SETTINGS[1..] {
        let got = with_parallelism(*p, &f);
        assert_eq!(got, reference, "{} diverged under {:?}", label, p);
    }
    reference
}

fn signed_batch(
    scheme: &ThresholdScheme,
    seed: u64,
    k: usize,
) -> (
    borndist::core::ro::KeyMaterial,
    Vec<Vec<u8>>,
    Vec<Signature>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let km = scheme.dealer_keygen(ThresholdParams::new(2, 6).unwrap(), &mut rng);
    let msgs: Vec<Vec<u8>> = (0..k).map(|i| format!("inv-{}", i).into_bytes()).collect();
    let sigs: Vec<Signature> = msgs
        .iter()
        .map(|m| {
            let partials: Vec<PartialSignature> = (1..=3u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    (km, msgs, sigs)
}

#[test]
fn batch_verify_verdicts_are_thread_count_invariant() {
    let scheme = ThresholdScheme::new(b"par-inv-batch");
    let (km, msgs, sigs) = signed_batch(&scheme, 0x1a, 16);
    let items: Vec<(&[u8], &Signature)> = msgs
        .iter()
        .zip(sigs.iter())
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    // Valid batch accepted under every setting; same RNG seed per run so
    // even the random batching weights are identical.
    let ok = invariant("batch_verify(valid)", || {
        let mut r = StdRng::seed_from_u64(1);
        scheme.batch_verify(&km.public_key, &items, &mut r)
    });
    assert!(ok);
    // Forged-in-batch (signature moved onto the wrong message, as in
    // tests/adversarial.rs): rejected under every setting.
    let mut forged = items.clone();
    forged[11].1 = items[3].1;
    let bad = invariant("batch_verify(forged)", || {
        let mut r = StdRng::seed_from_u64(2);
        scheme.batch_verify(&km.public_key, &forged, &mut r)
    });
    assert!(!bad);
}

#[test]
fn batch_verify_multi_verdicts_are_thread_count_invariant() {
    let scheme = ThresholdScheme::new(b"par-inv-multi");
    let mut rng = StdRng::seed_from_u64(0x2b);
    let kms: Vec<borndist::core::ro::KeyMaterial> = (0..4)
        .map(|_| scheme.dealer_keygen(ThresholdParams::new(1, 3).unwrap(), &mut rng))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("mk-{}", i).into_bytes()).collect();
    let sigs: Vec<Signature> = kms
        .iter()
        .zip(msgs.iter())
        .map(|(km, m)| {
            let partials: Vec<PartialSignature> = (1..=2u32)
                .map(|i| scheme.share_sign(&km.shares[&i], m))
                .collect();
            scheme.combine(&km.params, &partials).unwrap()
        })
        .collect();
    let items: Vec<(&PublicKey, &[u8], &Signature)> = kms
        .iter()
        .zip(msgs.iter())
        .zip(sigs.iter())
        .map(|((km, m), s)| (&km.public_key, m.as_slice(), s))
        .collect();
    let ok = invariant("batch_verify_multi(valid)", || {
        let mut r = StdRng::seed_from_u64(3);
        scheme.batch_verify_multi(&items, &mut r)
    });
    assert!(ok);
    // Cross-wired signature rejected under every setting.
    let mut bad_items = items.clone();
    bad_items[0].2 = items[1].2;
    let bad = invariant("batch_verify_multi(cross-wired)", || {
        let mut r = StdRng::seed_from_u64(4);
        scheme.batch_verify_multi(&bad_items, &mut r)
    });
    assert!(!bad);
}

#[test]
fn combine_batch_verified_output_is_thread_count_invariant() {
    let scheme = ThresholdScheme::new(b"par-inv-combine");
    let mut rng = StdRng::seed_from_u64(0x3c);
    let km = scheme.dealer_keygen(ThresholdParams::new(2, 6).unwrap(), &mut rng);
    let msg = b"invariant combine";
    let mut partials: Vec<PartialSignature> = (1..=6u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    // Happy path: the combined signature (a deterministic function of
    // the surviving shares) must be identical under every setting.
    let sig = invariant("combine_batch_verified(happy)", || {
        let mut r = StdRng::seed_from_u64(5);
        scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap()
    });
    assert!(scheme.verify(&km.public_key, msg, &sig));
    // Byzantine path: two corrupted shares force the per-share fallback
    // filter; the filtered combine must still agree bit-for-bit.
    partials[1].sig.z = partials[2].sig.z;
    partials[4].sig.r = partials[2].sig.r;
    let sig = invariant("combine_batch_verified(byzantine)", || {
        let mut r = StdRng::seed_from_u64(6);
        scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap()
    });
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn msm_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x4d);
    // 40 points exercises the parallel window path (>= 32), 8 the
    // sequential guard; compare in canonical affine coordinates so the
    // check is bit-level, not just equality-up-to-representative.
    for n in [8usize, 40, 200] {
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        scalars[0] = Fr::zero();
        scalars[n / 2] = Fr::one();
        let got = invariant(&format!("msm(n={})", n), || {
            msm(&bases, &scalars).to_affine()
        });
        // Cross-check against the sequential result in projective form.
        assert_eq!(
            got,
            with_parallelism(Parallelism::Sequential, || msm(&bases, &scalars)).to_affine()
        );
    }
}

#[test]
fn pairing_products_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5e);
    let pairs: Vec<(G1Affine, G2Affine)> = (0..6)
        .map(|_| {
            (
                G1Projective::random(&mut rng).to_affine(),
                G2Projective::random(&mut rng).to_affine(),
            )
        })
        .collect();
    let prepared: Vec<(G1Affine, G2Prepared)> = (0..3)
        .map(|_| {
            let q = G2Projective::random(&mut rng).to_affine();
            (
                G1Projective::random(&mut rng).to_affine(),
                G2Prepared::new(&q),
            )
        })
        .collect();
    let live: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(p, q)| (p, q)).collect();
    let pre: Vec<(&G1Affine, &G2Prepared)> = prepared.iter().map(|(p, q)| (p, q)).collect();
    invariant("multi_pairing", || multi_pairing(&live));
    invariant("multi_pairing_mixed", || multi_pairing_mixed(&live, &pre));
    // The raw Miller accumulator (an Fp12 with derived bit-level
    // equality) is where shard folding happens — check it directly.
    invariant("multi_miller_loop_mixed", || {
        multi_miller_loop_mixed(&live, &pre)
    });
}

#[test]
fn normalization_and_tables_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x6f);
    let mut pts: Vec<G1Projective> = (0..300).map(|_| G1Projective::random(&mut rng)).collect();
    pts[7] = G1Projective::identity();
    pts[299] = G1Projective::identity();
    invariant("batch_to_affine(300)", || {
        G1Projective::batch_to_affine(&pts)
    });
    let base = G1Projective::random(&mut rng);
    invariant("fixed_base_table", || FixedBaseTable::with_window(&base, 4));
}

#[test]
fn dkg_outputs_are_thread_count_invariant() {
    use borndist::dkg::{dkg_session, standard_config, Behavior};
    use borndist::net::TransportKind;
    use std::collections::BTreeMap;
    let params = ThresholdParams::new(2, 5).unwrap();
    let cfg = standard_config(params, 2, b"par-inv-dkg", false);
    // One corrupt dealer so the complaint/answer verification paths run.
    let mut behaviors: BTreeMap<u32, Behavior> = BTreeMap::new();
    behaviors.insert(
        2,
        Behavior {
            corrupt_shares_to: [4u32].into_iter().collect(),
            refuse_answers: true,
            ..Behavior::default()
        },
    );
    let outputs = invariant("dkg_session(byzantine)", || {
        let (outputs, _) = dkg_session(&cfg, &behaviors, 0x77, &TransportKind::Lockstep).unwrap();
        outputs
    });
    // Sanity: the honest players agreed on a qualified set that excludes
    // the refusing dealer.
    let honest = outputs[&1].as_ref().unwrap();
    assert!(!honest.qualified.contains(&2));
}
