//! Full-lifecycle integration tests through the public facade: a key is
//! born distributed, signs non-interactively, aggregates, survives
//! proactive epochs, and recovers lost shares.

use borndist::core::aggregate::AggregateScheme;
use borndist::core::proactive::ProactiveDeployment;
use borndist::core::ro::{PartialSignature, ThresholdScheme};
use borndist::core::standard::StandardScheme;
use borndist::core::DlinScheme;
use borndist::net::TransportKind;
use borndist::shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

#[test]
fn complete_lifecycle() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"lifecycle");

    // 1. Birth: distributed key generation, one active round.
    let (km, metrics) = scheme
        .keygen_session(params, &BTreeMap::new(), 1, &TransportKind::Lockstep)
        .unwrap();
    assert_eq!(metrics.active_rounds, 1);
    assert_eq!(km.qualified.len(), 5);

    // 2. Life: non-interactive signing by assorted quorums.
    for (quorum, msg) in [
        (vec![1u32, 2, 3], b"message one".as_slice()),
        (vec![3u32, 4, 5], b"message two".as_slice()),
        (vec![1u32, 3, 5], b"message three".as_slice()),
    ] {
        let partials: Vec<PartialSignature> = quorum
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg))
            .collect();
        for p in &partials {
            assert!(scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        }
        let sig = scheme.combine(&params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    // 3. Aging: three proactive epochs.
    let mut dep = ProactiveDeployment::new(scheme, km);
    let pk = dep.material().public_key.clone();
    for e in 0..3 {
        dep.refresh_epoch(&BTreeMap::new(), 100 + e, &TransportKind::Lockstep)
            .unwrap();
        assert_eq!(dep.material().public_key, pk);
    }

    // 4. Recovery: player 2 loses its share, peers restore it.
    let mut rng = StdRng::seed_from_u64(2);
    let recovered = dep.recover_share(&[1, 3, 4], 2, &mut rng).unwrap();
    assert_eq!(recovered, dep.material().shares[&2]);

    // 5. Still signing after all that.
    let msg = b"life goes on";
    let partials: Vec<PartialSignature> = [1u32, 4, 5]
        .iter()
        .map(|i| dep.scheme().share_sign(&dep.material().shares[i], msg))
        .collect();
    let sig = dep
        .scheme()
        .combine(&dep.material().params, &partials)
        .unwrap();
    assert!(dep.scheme().verify(&dep.material().public_key, msg, &sig));
}

#[test]
fn four_schemes_coexist() {
    // All four constructions operate on the same substrate with the same
    // interaction pattern; verify each end-to-end at (t, n) = (1, 4).
    let params = ThresholdParams::new(1, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(44);
    let msg = b"one substrate, four schemes";

    // §3 ROM.
    let ro = ThresholdScheme::new(b"coexist");
    let km = ro.dealer_keygen(params, &mut rng);
    let p: Vec<_> = (1..=2u32)
        .map(|i| ro.share_sign(&km.shares[&i], msg))
        .collect();
    assert!(ro.verify(&km.public_key, msg, &ro.combine(&params, &p).unwrap()));

    // Appendix F DLIN.
    let dlin = DlinScheme::new(b"coexist");
    let dkm = dlin.dealer_keygen(params, &mut rng);
    let dp: Vec<_> = (1..=2u32)
        .map(|i| dlin.share_sign(&dkm.shares[&i], msg))
        .collect();
    assert!(dlin.verify(&dkm.public_key, msg, &dlin.combine(&params, &dp).unwrap()));

    // §4 standard model.
    let std_s = StandardScheme::new(b"coexist");
    let skm = std_s.dealer_keygen(params, &mut rng);
    let sp: Vec<_> = (1..=2u32)
        .map(|i| std_s.share_sign(&skm.shares[&i], msg, &mut rng))
        .collect();
    let ssig = std_s.combine(&params, msg, &sp, &mut rng).unwrap();
    assert!(std_s.verify(&skm.public_key, msg, &ssig));

    // Appendix G aggregate.
    let agg = AggregateScheme::new(b"coexist");
    let (apk, akm) = agg.dealer_keygen(params, &mut rng);
    let ap: Vec<_> = (1..=2u32)
        .map(|i| agg.share_sign(&apk, &akm.shares[&i], msg))
        .collect();
    let asig = agg.combine(&params, &ap).unwrap();
    assert!(agg.verify(&apk, msg, &asig));
}

#[test]
fn dkg_and_dealer_keys_are_interchangeable() {
    // A signature under a DKG-born key and one under a dealer key use the
    // same verification path; cross-verification must fail (different
    // keys), same-key verification must succeed.
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"interchange");
    let mut rng = StdRng::seed_from_u64(7);

    let (dkg_km, _) = scheme
        .keygen_session(params, &BTreeMap::new(), 9, &TransportKind::Lockstep)
        .unwrap();
    let dealer_km = scheme.dealer_keygen(params, &mut rng);

    let msg = b"which key signed me?";
    let dkg_sig = {
        let p: Vec<_> = (1..=2u32)
            .map(|i| scheme.share_sign(&dkg_km.shares[&i], msg))
            .collect();
        scheme.combine(&params, &p).unwrap()
    };
    let dealer_sig = {
        let p: Vec<_> = (1..=2u32)
            .map(|i| scheme.share_sign(&dealer_km.shares[&i], msg))
            .collect();
        scheme.combine(&params, &p).unwrap()
    };
    assert!(scheme.verify(&dkg_km.public_key, msg, &dkg_sig));
    assert!(scheme.verify(&dealer_km.public_key, msg, &dealer_sig));
    assert!(!scheme.verify(&dkg_km.public_key, msg, &dealer_sig));
    assert!(!scheme.verify(&dealer_km.public_key, msg, &dkg_sig));
}

#[test]
fn aggregate_of_dkg_born_authorities() {
    // Two committees with DKG-born keys; their signatures aggregate.
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = AggregateScheme::new(b"agg-e2e");
    let mut chain = Vec::new();
    for i in 0..2u64 {
        let (pk, km, _) = scheme
            .dist_keygen(params, &BTreeMap::new(), 1000 + i)
            .unwrap();
        assert!(scheme.key_valid(&pk));
        let msg = format!("statement {}", i).into_bytes();
        let partials: Vec<_> = (1..=2u32)
            .map(|j| scheme.share_sign(&pk, &km.shares[&j], &msg))
            .collect();
        let sig = scheme.combine(&params, &partials).unwrap();
        chain.push((pk, msg, sig));
    }
    let agg = scheme.aggregate(&chain).unwrap();
    let statements: Vec<_> = chain
        .iter()
        .map(|(p, m, _)| (p.clone(), m.clone()))
        .collect();
    assert!(scheme.aggregate_verify(&statements, &agg));
}
