//! Property-based tests (proptest) over the workspace invariants:
//! secret-sharing round-trips, homomorphisms, Lagrange identities,
//! serialization, and scheme-level determinism.

use borndist::lhsps::{DpParams, OneTimeSecretKey};
use borndist::pairing::{pairing, Fr, G1Projective, G2Projective, Gt};
use borndist::shamir::{
    interpolate_at, lagrange_coefficients_at_zero, reconstruct, share, Polynomial, Share,
    ThresholdParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a deterministic RNG seed.
fn seeds() -> impl Strategy<Value = u64> {
    any::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// share ∘ reconstruct = id, on arbitrary (t, n) and subset choice.
    #[test]
    fn shamir_roundtrip(seed in seeds(), t in 0usize..6, extra in 1usize..5, skip in 0usize..3) {
        let n = 2 * t + extra.max(1);
        let params = ThresholdParams::new(t, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = Fr::random(&mut rng);
        let (shares, _) = share(secret, params, &mut rng);
        // Take t+1 shares starting at an arbitrary offset.
        let subset: Vec<Share> = shares
            .iter()
            .cycle()
            .skip(skip)
            .take(t + 1)
            .copied()
            .collect();
        prop_assert_eq!(reconstruct(&subset).unwrap(), secret);
    }

    /// Lagrange coefficients at zero sum to one (they interpolate the
    /// constant-1 polynomial).
    #[test]
    fn lagrange_partition_of_unity(indices in proptest::collection::btree_set(1u32..200, 1..8)) {
        let v: Vec<u32> = indices.into_iter().collect();
        let coeffs = lagrange_coefficients_at_zero(&v).unwrap();
        let sum = coeffs.iter().fold(Fr::zero(), |a, c| a + *c);
        prop_assert_eq!(sum, Fr::one());
    }

    /// Polynomial evaluation is linear: (P + Q)(x) = P(x) + Q(x).
    #[test]
    fn polynomial_addition_pointwise(seed in seeds(), d1 in 0usize..6, d2 in 0usize..6, x in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Polynomial::random(d1, &mut rng);
        let q = Polynomial::random(d2, &mut rng);
        let xf = Fr::from_u64(x);
        prop_assert_eq!(p.add(&q).evaluate(xf), p.evaluate(xf) + q.evaluate(xf));
    }

    /// Interpolation through d+1 points reproduces the polynomial
    /// everywhere.
    #[test]
    fn interpolation_extends_correctly(seed in seeds(), d in 0usize..5, probe in 1u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Polynomial::random(d, &mut rng);
        let pts: Vec<(u32, Fr)> = (1..=(d as u32 + 1))
            .map(|i| (i, p.evaluate_at_index(i)))
            .collect();
        let x = Fr::from_u64(probe);
        prop_assert_eq!(interpolate_at(&pts, x).unwrap(), p.evaluate(x));
    }

    /// LHSPS linear homomorphism: a derived signature on the weighted
    /// message combination verifies.
    #[test]
    fn lhsps_linear_homomorphism(seed in seeds()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpParams::random(&mut rng);
        let sk = OneTimeSecretKey::random(2, &mut rng);
        let pk = sk.public_key(&params);
        let m1: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let m2: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let (w1, w2) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let derived = borndist::lhsps::sign_derive(&[(w1, &sk.sign(&m1)), (w2, &sk.sign(&m2))]);
        let combo: Vec<G1Projective> = m1.iter().zip(m2.iter())
            .map(|(a, b)| a.mul(&w1) + b.mul(&w2))
            .collect();
        prop_assert!(pk.verify(&params, &combo, &derived));
    }

    /// LHSPS key homomorphism: sum-key signatures equal products of
    /// per-key signatures.
    #[test]
    fn lhsps_key_homomorphism(seed in seeds()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let _params = DpParams::random(&mut rng);
        let sk1 = OneTimeSecretKey::random(2, &mut rng);
        let sk2 = OneTimeSecretKey::random(2, &mut rng);
        let msg: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let (s1, s2) = (sk1.sign(&msg), sk2.sign(&msg));
        let product = borndist::lhsps::OneTimeSignature {
            z: (s1.z.to_projective().add_affine(&s2.z)).to_affine(),
            r: (s1.r.to_projective().add_affine(&s2.r)).to_affine(),
        };
        prop_assert_eq!(sk1.add(&sk2).sign(&msg), product);
    }

    /// Pairing bilinearity on random scalars.
    #[test]
    fn pairing_bilinearity(seed in seeds()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let p = (G1Projective::generator() * a).to_affine();
        let q = (G2Projective::generator() * b).to_affine();
        prop_assert_eq!(pairing(&p, &q), Gt::generator().pow(&(a * b)));
    }

    /// Group serialization round-trips for random points.
    #[test]
    fn point_serialization_roundtrip(seed in seeds()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        prop_assert_eq!(
            borndist::pairing::G1Affine::from_compressed(&p.to_compressed()).unwrap(), p);
        prop_assert_eq!(
            borndist::pairing::G2Affine::from_compressed(&q.to_compressed()).unwrap(), q);
        prop_assert_eq!(
            borndist::pairing::G1Affine::from_uncompressed(&p.to_uncompressed()).unwrap(), p);
    }

    /// Field serialization and arithmetic consistency.
    #[test]
    fn fr_bytes_roundtrip_and_ring_ops(seed in seeds()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        prop_assert_eq!(Fr::from_bytes(&a.to_bytes()).unwrap(), a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) - b, a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), Fr::one());
        }
    }
}

proptest! {
    // Scheme-level properties are expensive (pairings); fewer cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Threshold signature determinism/uniqueness: any two quorums
    /// produce the identical signature.
    #[test]
    fn scheme_quorum_independence(seed in seeds()) {
        use borndist::core::ro::ThresholdScheme;
        let params = ThresholdParams::new(1, 5).unwrap();
        let scheme = ThresholdScheme::new(b"prop");
        let mut rng = StdRng::seed_from_u64(seed);
        let km = scheme.dealer_keygen(params, &mut rng);
        let msg = seed.to_be_bytes();
        let partials: Vec<_> = (1..=5u32)
            .map(|i| scheme.share_sign(&km.shares[&i], &msg))
            .collect();
        let s1 = scheme.combine(&params, &partials[0..2]).unwrap();
        let s2 = scheme.combine(&params, &partials[3..5]).unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert!(scheme.verify(&km.public_key, &msg, &s1));
    }

    /// Batch verification (one shared multi-pairing) agrees with the
    /// per-signature slow path under random corruption patterns, for
    /// both full signatures and partial-signature batches.
    #[test]
    fn batch_verify_agrees_with_slow_path(seed in seeds(), corrupt_mask in 0u8..16) {
        use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
        let params = ThresholdParams::new(1, 4).unwrap();
        let scheme = ThresholdScheme::new(b"prop-batch");
        let mut rng = StdRng::seed_from_u64(seed);
        let km = scheme.dealer_keygen(params, &mut rng);
        let msgs: Vec<Vec<u8>> = (0..4u8)
            .map(|i| vec![i, seed as u8, (seed >> 8) as u8])
            .collect();
        let mut sigs: Vec<Signature> = msgs
            .iter()
            .map(|m| {
                let ps: Vec<PartialSignature> = (1..=2u32)
                    .map(|j| scheme.share_sign(&km.shares[&j], m))
                    .collect();
                scheme.combine(&params, &ps).unwrap()
            })
            .collect();
        // Corrupt signature i iff bit i of the mask is set.
        for i in 0..4usize {
            if (corrupt_mask >> i) & 1 == 1 {
                sigs[i] = sigs[(i + 1) % 4];
            }
        }
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        let slow = items.iter().all(|(m, s)| scheme.verify(&km.public_key, m, s));
        let fast = scheme.batch_verify(&km.public_key, &items, &mut rng);
        prop_assert_eq!(fast, slow);

        // Partial-signature batches: corrupt share i iff bit i set.
        let msg = b"prop share batch";
        let mut partials: Vec<PartialSignature> = (1..=4u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        for i in 0..4usize {
            if (corrupt_mask >> i) & 1 == 1 {
                partials[i].sig.z = partials[(i + 1) % 4].sig.z;
            }
        }
        let slow = partials
            .iter()
            .all(|p| scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        let fast = scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut rng);
        prop_assert_eq!(fast, slow);
    }
}
