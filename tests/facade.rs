//! Integration coverage for the `borndist` facade crate: every
//! re-exported workspace crate must resolve under its facade path, and
//! the quickstart flow documented on `borndist_core` must run through
//! the facade too.

use std::collections::BTreeMap;

/// Name one load-bearing item from each re-exported module so a broken
/// re-export (or a renamed downstream item) fails this test at compile
/// time rather than surfacing in user code.
#[test]
fn all_facade_reexports_resolve() {
    // pairing
    let _g1: borndist::pairing::G1Projective = borndist::pairing::G1Projective::generator();
    let _fr = borndist::pairing::Fr::from_u64(42);
    // shamir
    let params = borndist::shamir::ThresholdParams::new(1, 4).unwrap();
    assert_eq!(params.n, 4);
    // net
    let _metrics = borndist::net::Metrics::default();
    // dkg
    let _cfg: Option<borndist::dkg::DkgConfig> = None;
    // lhsps
    let _sig: Option<borndist::lhsps::OneTimeSignature> = None;
    // grothsahai
    let _crs: Option<borndist::grothsahai::Crs> = None;
    // core
    let _scheme = borndist::core::ro::ThresholdScheme::new(b"facade-test");
    // baselines
    let _bls: Option<borndist::baselines::BlsSignature> = None;
    // precompute layer (pairing)
    let table = borndist::pairing::g1_generator_table();
    assert_eq!(
        table.base(),
        borndist::pairing::G1Projective::generator().to_affine()
    );
    let _t: Option<borndist::pairing::FixedBaseTable<borndist::pairing::G2Params>> = None;
}

/// The crate-level quickstart (also a doctest on `borndist_core`),
/// driven through the facade paths: distributed keygen, two
/// non-interactive partial signatures, combine, verify.
#[test]
fn quickstart_flow_through_facade() {
    let scheme = borndist::core::ro::ThresholdScheme::new(b"facade-quickstart");
    let params = borndist::shamir::ThresholdParams::new(1, 4).unwrap();
    let (km, _) = scheme
        .keygen_session(
            params,
            &BTreeMap::new(),
            7,
            &borndist::net::TransportKind::Lockstep,
        )
        .unwrap();

    let p1 = scheme.share_sign(&km.shares[&1], b"hello");
    let p3 = scheme.share_sign(&km.shares[&3], b"hello");
    let sig = scheme.combine(&km.params, &[p1, p3]).unwrap();
    assert!(scheme.verify(&km.public_key, b"hello", &sig));
    assert!(!scheme.verify(&km.public_key, b"tampered", &sig));

    // The batch-verification subsystem (core::batch) is reachable and
    // consistent through the facade as well.
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(9)
    };
    let items: Vec<(&[u8], &borndist::core::Signature)> = vec![(b"hello".as_slice(), &sig)];
    assert!(scheme.batch_verify(&km.public_key, &items, &mut rng));
    let sig2 = scheme
        .combine_batch_verified(
            &km.params,
            &km.verification_keys,
            b"hello",
            &[p1, p3],
            &mut rng,
        )
        .unwrap();
    assert_eq!(sig, sig2);
}
