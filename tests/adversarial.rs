//! Adversarial integration tests: Byzantine players during key
//! generation, corrupted partial signatures during signing, threshold
//! violations, and mobile adversaries across proactive epochs.

use borndist::core::proactive::ProactiveDeployment;
use borndist::core::ro::{CombineError, PartialSignature, ThresholdScheme};
use borndist::dkg::Behavior;
use borndist::shamir::ThresholdParams;
use std::collections::BTreeMap;

#[test]
fn maximal_byzantine_dkg_still_yields_working_key() {
    // t = 2 of n = 7 players are actively malicious in different ways.
    let params = ThresholdParams::new(2, 7).unwrap();
    let scheme = ThresholdScheme::new(b"adv-dkg");
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [1u32, 4, 6].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        5u32,
        Behavior {
            bad_commitment_width: true,
            ..Default::default()
        },
    );
    let (km, _) = scheme.dist_keygen(params, &behaviors, 21).unwrap();
    assert!(!km.qualified.contains(&2));
    assert!(!km.qualified.contains(&5));
    assert_eq!(km.qualified.len(), 5);

    // Honest players sign; the key works.
    let msg = b"survived the byzantine birth";
    let partials: Vec<PartialSignature> = [1u32, 3, 6]
        .iter()
        .map(|i| scheme.share_sign(&km.shares[i], msg))
        .collect();
    let sig = scheme.combine(&params, &partials).unwrap();
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn corrupted_partials_filtered_not_fatal() {
    // Robustness (the paper's non-interactive story): the combiner sees
    // n partials, t of them garbage, and still outputs a valid signature
    // with no extra round.
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-sign");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"robust";
    let mut partials: Vec<PartialSignature> = (1..=5u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    // Corrupt exactly t = 2.
    partials[1].sig.z = partials[0].sig.z;
    partials[4].sig.r = partials[0].sig.r;
    let sig = scheme
        .combine_verified(&params, &km.verification_keys, msg, &partials)
        .unwrap();
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn naive_combine_with_garbage_caught_by_final_verify() {
    // If the combiner skips Share-Verify, the result fails Verify — the
    // system is never tricked into accepting a bad signature.
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"adv-naive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"trusting combiner";
    let mut partials: Vec<PartialSignature> = (1..=2u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    partials[0].sig.z = partials[1].sig.r;
    let sig = scheme.combine(&params, &partials).unwrap();
    assert!(!scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn threshold_is_enforced_everywhere() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-threshold");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"two is not three";
    let partials: Vec<PartialSignature> = (1..=2u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    assert_eq!(
        scheme.combine(&params, &partials),
        Err(CombineError::NotEnoughShares { have: 2, need: 3 })
    );
    // Duplicated indices cannot fake a quorum.
    let dup = vec![partials[0], partials[1], partials[1]];
    assert_eq!(scheme.combine(&params, &dup), Err(CombineError::BadIndices));
}

#[test]
fn mobile_adversary_defeated_by_refresh() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-mobile");
    let (km, _) = scheme.dist_keygen(params, &BTreeMap::new(), 31).unwrap();
    let mut dep = ProactiveDeployment::new(scheme, km);

    // Epoch 0: adversary takes shares of players 1, 2.
    let stolen_epoch0: Vec<_> = [1u32, 2]
        .iter()
        .map(|i| dep.material().shares[i].clone())
        .collect();
    dep.advance_epoch(&BTreeMap::new(), 32).unwrap();
    // Epoch 1: adversary takes share of player 3 (fresh).
    let stolen_epoch1 = dep.material().shares[&3].clone();

    // 3 shares total — nominally a quorum — but from mixed epochs.
    let msg = b"forgery attempt";
    let mut forged: Vec<PartialSignature> = stolen_epoch0
        .iter()
        .map(|s| dep.scheme().share_sign(s, msg))
        .collect();
    forged.push(dep.scheme().share_sign(&stolen_epoch1, msg));
    let sig = dep
        .scheme()
        .combine(&dep.material().params, &forged)
        .unwrap();
    // The mixed-epoch combination is NOT a valid signature.
    assert!(!dep.scheme().verify(&dep.material().public_key, msg, &sig));
    // And the stale partials individually fail share verification.
    for s in &stolen_epoch0 {
        let p = dep.scheme().share_sign(s, msg);
        assert!(!dep
            .scheme()
            .share_verify(&dep.material().verification_keys[&s.index], msg, &p));
    }
}

#[test]
fn byzantine_refresh_dealer_cannot_shift_the_key() {
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"adv-refresh");
    let (km, _) = scheme.dist_keygen(params, &BTreeMap::new(), 41).unwrap();
    let pk = km.public_key.clone();
    let mut dep = ProactiveDeployment::new(scheme, km);
    // Player 2 tries to sneak a non-zero secret into the refresh.
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            nonzero_refresh: true,
            ..Default::default()
        },
    );
    dep.advance_epoch(&behaviors, 42).unwrap();
    assert_eq!(dep.material().public_key, pk, "public key must not move");
    // Signing still works with honest players.
    let msg = b"key stayed put";
    let partials: Vec<PartialSignature> = [1u32, 3]
        .iter()
        .map(|i| dep.scheme().share_sign(&dep.material().shares[i], msg))
        .collect();
    let sig = dep
        .scheme()
        .combine(&dep.material().params, &partials)
        .unwrap();
    assert!(dep.scheme().verify(&dep.material().public_key, msg, &sig));
}
