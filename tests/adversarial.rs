//! Adversarial integration tests: Byzantine players during key
//! generation, corrupted partial signatures during signing, threshold
//! violations, and mobile adversaries across proactive epochs.

use borndist::core::proactive::ProactiveDeployment;
use borndist::core::ro::{CombineError, PartialSignature, ThresholdScheme};
use borndist::dkg::Behavior;
use borndist::net::TransportKind;
use borndist::shamir::ThresholdParams;
use std::collections::BTreeMap;

#[test]
fn maximal_byzantine_dkg_still_yields_working_key() {
    // t = 2 of n = 7 players are actively malicious in different ways.
    let params = ThresholdParams::new(2, 7).unwrap();
    let scheme = ThresholdScheme::new(b"adv-dkg");
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            corrupt_shares_to: [1u32, 4, 6].into_iter().collect(),
            refuse_answers: true,
            ..Default::default()
        },
    );
    behaviors.insert(
        5u32,
        Behavior {
            bad_commitment_width: true,
            ..Default::default()
        },
    );
    let (km, _) = scheme
        .keygen_session(params, &behaviors, 21, &TransportKind::Lockstep)
        .unwrap();
    assert!(!km.qualified.contains(&2));
    assert!(!km.qualified.contains(&5));
    assert_eq!(km.qualified.len(), 5);

    // Honest players sign; the key works.
    let msg = b"survived the byzantine birth";
    let partials: Vec<PartialSignature> = [1u32, 3, 6]
        .iter()
        .map(|i| scheme.share_sign(&km.shares[i], msg))
        .collect();
    let sig = scheme.combine(&params, &partials).unwrap();
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn corrupted_partials_filtered_not_fatal() {
    // Robustness (the paper's non-interactive story): the combiner sees
    // n partials, t of them garbage, and still outputs a valid signature
    // with no extra round.
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-sign");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"robust";
    let mut partials: Vec<PartialSignature> = (1..=5u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    // Corrupt exactly t = 2.
    partials[1].sig.z = partials[0].sig.z;
    partials[4].sig.r = partials[0].sig.r;
    let sig = scheme
        .combine_verified(&params, &km.verification_keys, msg, &partials)
        .unwrap();
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn naive_combine_with_garbage_caught_by_final_verify() {
    // If the combiner skips Share-Verify, the result fails Verify — the
    // system is never tricked into accepting a bad signature.
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"adv-naive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"trusting combiner";
    let mut partials: Vec<PartialSignature> = (1..=2u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    partials[0].sig.z = partials[1].sig.r;
    let sig = scheme.combine(&params, &partials).unwrap();
    assert!(!scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn threshold_is_enforced_everywhere() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-threshold");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"two is not three";
    let partials: Vec<PartialSignature> = (1..=2u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    assert_eq!(
        scheme.combine(&params, &partials),
        Err(CombineError::NotEnoughShares { have: 2, need: 3 })
    );
    // Duplicated indices cannot fake a quorum.
    let dup = vec![partials[0], partials[1], partials[1]];
    assert_eq!(scheme.combine(&params, &dup), Err(CombineError::BadIndices));
}

#[test]
fn mobile_adversary_defeated_by_refresh() {
    let params = ThresholdParams::new(2, 5).unwrap();
    let scheme = ThresholdScheme::new(b"adv-mobile");
    let (km, _) = scheme
        .keygen_session(params, &BTreeMap::new(), 31, &TransportKind::Lockstep)
        .unwrap();
    let mut dep = ProactiveDeployment::new(scheme, km);

    // Epoch 0: adversary takes shares of players 1, 2.
    let stolen_epoch0: Vec<_> = [1u32, 2]
        .iter()
        .map(|i| dep.material().shares[i].clone())
        .collect();
    dep.refresh_epoch(&BTreeMap::new(), 32, &TransportKind::Lockstep)
        .unwrap();
    // Epoch 1: adversary takes share of player 3 (fresh).
    let stolen_epoch1 = dep.material().shares[&3].clone();

    // 3 shares total — nominally a quorum — but from mixed epochs.
    let msg = b"forgery attempt";
    let mut forged: Vec<PartialSignature> = stolen_epoch0
        .iter()
        .map(|s| dep.scheme().share_sign(s, msg))
        .collect();
    forged.push(dep.scheme().share_sign(&stolen_epoch1, msg));
    let sig = dep
        .scheme()
        .combine(&dep.material().params, &forged)
        .unwrap();
    // The mixed-epoch combination is NOT a valid signature.
    assert!(!dep.scheme().verify(&dep.material().public_key, msg, &sig));
    // And the stale partials individually fail share verification.
    for s in &stolen_epoch0 {
        let p = dep.scheme().share_sign(s, msg);
        assert!(!dep
            .scheme()
            .share_verify(&dep.material().verification_keys[&s.index], msg, &p));
    }
}

#[test]
fn byzantine_refresh_dealer_cannot_shift_the_key() {
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"adv-refresh");
    let (km, _) = scheme
        .keygen_session(params, &BTreeMap::new(), 41, &TransportKind::Lockstep)
        .unwrap();
    let pk = km.public_key.clone();
    let mut dep = ProactiveDeployment::new(scheme, km);
    // Player 2 tries to sneak a non-zero secret into the refresh.
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        2u32,
        Behavior {
            nonzero_refresh: true,
            ..Default::default()
        },
    );
    dep.refresh_epoch(&behaviors, 42, &TransportKind::Lockstep)
        .unwrap();
    assert_eq!(dep.material().public_key, pk, "public key must not move");
    // Signing still works with honest players.
    let msg = b"key stayed put";
    let partials: Vec<PartialSignature> = [1u32, 3]
        .iter()
        .map(|i| dep.scheme().share_sign(&dep.material().shares[i], msg))
        .collect();
    let sig = dep
        .scheme()
        .combine(&dep.material().params, &partials)
        .unwrap();
    assert!(dep.scheme().verify(&dep.material().public_key, msg, &sig));
}

// ---------------------------------------------------------------------
// Adversarial batch verification (core::batch): a single forgery hidden
// in a large batch must be caught, and the batch decision must agree
// with per-signature verification on deterministic seeds.
// ---------------------------------------------------------------------

mod batch_adversarial {
    use borndist::core::ro::{PartialSignature, Signature, ThresholdScheme};
    use borndist::shamir::ThresholdParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signed_batch(
        scheme: &ThresholdScheme,
        km: &borndist::core::ro::KeyMaterial,
        count: usize,
    ) -> (Vec<Vec<u8>>, Vec<Signature>) {
        let msgs: Vec<Vec<u8>> = (0..count)
            .map(|i| format!("batch message {}", i).into_bytes())
            .collect();
        let sigs = msgs
            .iter()
            .map(|m| {
                let partials: Vec<PartialSignature> = (1..=2u32)
                    .map(|j| scheme.share_sign(&km.shares[&j], m))
                    .collect();
                scheme.combine(&km.params, &partials).unwrap()
            })
            .collect();
        (msgs, sigs)
    }

    #[test]
    fn one_forged_signature_in_64_is_rejected() {
        let scheme = ThresholdScheme::new(b"adv-batch-64");
        let mut rng = StdRng::seed_from_u64(0x64);
        let km = scheme.dealer_keygen(ThresholdParams::new(1, 3).unwrap(), &mut rng);
        let (msgs, mut sigs) = signed_batch(&scheme, &km, 64);
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert!(scheme.batch_verify(&km.public_key, &items, &mut rng));

        // Hide a single forgery (a valid signature on a *different*
        // message) at an arbitrary position among 63 valid ones.
        let stolen = sigs[0];
        sigs[37] = stolen;
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert!(
            !scheme.batch_verify(&km.public_key, &items, &mut rng),
            "forgery at position 37 slipped through the batch"
        );
    }

    #[test]
    fn one_forged_share_in_64_is_rejected() {
        // 64 signers on one message; a single corrupted partial must sink
        // the batched Share-Verify used by Combine.
        let scheme = ThresholdScheme::new(b"adv-batch-shares");
        let mut rng = StdRng::seed_from_u64(0x65);
        let km = scheme.dealer_keygen(ThresholdParams::new(20, 64).unwrap(), &mut rng);
        let msg = b"share batch";
        let mut partials: Vec<PartialSignature> = (1..=64u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        assert!(scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut rng));
        partials[41].sig.r = partials[3].sig.r;
        assert!(
            !scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut rng),
            "forged share at position 41 slipped through"
        );
        // Robust combine still succeeds by falling back to the filter
        // (a t+2-sized slice keeps the per-share fallback cheap: 21
        // valid of 22 with the forgery at position 10).
        let mut slice: Vec<PartialSignature> = partials[..22].to_vec();
        slice[10].sig.z = slice[2].sig.z;
        let sig = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &slice, &mut rng)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn batch_decision_agrees_with_individual_verification() {
        // Deterministic seeds; each round corrupts a pseudo-random subset
        // (possibly empty) and cross-checks the batch verdict against
        // per-signature verification.
        let scheme = ThresholdScheme::new(b"adv-batch-agreement");
        for seed in 0u64..4 {
            let mut rng = StdRng::seed_from_u64(0xA6EE + seed);
            let km = scheme.dealer_keygen(ThresholdParams::new(1, 3).unwrap(), &mut rng);
            let (msgs, mut sigs) = signed_batch(&scheme, &km, 8);
            // Corrupt position i with probability 1/4, deterministically.
            use rand::RngCore;
            for i in 0..sigs.len() {
                if rng.next_u64() % 4 == 0 {
                    let other = (i + 1) % sigs.len();
                    sigs[i] = sigs[other];
                }
            }
            let items: Vec<(&[u8], &Signature)> = msgs
                .iter()
                .zip(sigs.iter())
                .map(|(m, s)| (m.as_slice(), s))
                .collect();
            let individual = items
                .iter()
                .all(|(m, s)| scheme.verify(&km.public_key, m, s));
            let batched = scheme.batch_verify(&km.public_key, &items, &mut rng);
            assert_eq!(batched, individual, "seed {} disagreement", seed);
        }
    }
}
