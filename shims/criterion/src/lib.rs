//! Offline stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace's `benches/` targets use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a deliberately simple wall-clock harness: per
//! benchmark it warms up, sizes an iteration batch to roughly 10 ms,
//! takes `sample_size` timed samples and prints the median time per
//! iteration. No statistical regression analysis, no HTML reports —
//! enough to compare hot paths locally while CI only compile-checks
//! benches (`cargo bench --no-run`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark manager passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a standalone benchmark (not used by this workspace's
    /// benches, provided for API parity).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        run_benchmark(&label, self.settings, |b| f(b));
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (All reporting is incremental; this is a no-op
    /// kept for API parity.)
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, settings: Settings, mut f: impl FnMut(&mut Bencher)) {
    // Warm up and estimate a single-iteration cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_up_start.elapsed() < settings.warm_up_time {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    }

    // Size batches so one sample costs ~1/sample_size of the budget.
    let sample_budget = settings.measurement_time / settings.sample_size as u32;
    let iters =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut samples_ns: Vec<u128> = Vec::with_capacity(settings.sample_size);
    let deadline = Instant::now() + settings.measurement_time;
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() / iters as u128);
        if Instant::now() > deadline {
            break;
        }
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    println!(
        "{:<40} time: [{} per iter, median of {} samples x {} iters]",
        label,
        format_ns(median),
        samples_ns.len(),
        iters
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
