//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait (associated `Value`, `prop_map`);
//! * integer range strategies (`0usize..48`, `1u8..=255`, …), tuples of
//!   strategies, [`collection::vec`], [`collection::btree_set`],
//!   [`option::of`] and [`any`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support and
//!   the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs
//! are generated from a **deterministic** per-test seed (stable across
//! runs and machines — good for CI), and failing cases are **not
//! shrunk**; the panic message reports the case index instead.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Uniform draw from `[0, span)`; modulo bias is irrelevant for tests.
fn draw_index(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + draw_index(rng, span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                // Wrapping: a full-domain u64/usize range has span 2^64,
                // which wraps to 0 (a plain `+ 1` would panic in debug).
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                start + draw_index(rng, span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    fn arbitrary_sample(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for Vec<u8> {
    fn arbitrary_sample(rng: &mut StdRng) -> Vec<u8> {
        let len = (rng.next_u64() % 64) as usize;
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        buf
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// The canonical strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{draw_index, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s, from [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy producing `BTreeSet`s, from [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded
            // number of times (the element domain may be tiny).
            let mut attempts = 0usize;
            while set.len() < target && attempts < 20 * target + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates `BTreeSet`s with sizes in `size` (best effort when the
    /// element domain is smaller) and elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    fn sample_size(size: &Range<usize>, rng: &mut StdRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + draw_index(rng, (size.end - size.start) as u64) as usize
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Strategy producing `Option`s, from [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Bias toward Some, mirroring proptest's default weighting.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Wraps a strategy to also produce `None` some of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Deterministic per-(test, case) RNG. Public for the macros only.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)))
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __run = ::std::panic::AssertUnwindSafe(|| { $body });
                if let ::std::result::Result::Err(__panic) =
                    ::std::panic::catch_unwind(__run)
                {
                    // No shrinking in this shim; the case index (inputs
                    // are deterministic per (test, case)) is the repro
                    // handle.
                    eprintln!(
                        "proptest shim: test `{}` failed on case {} of {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = __case_rng("ranges", 0);
        for _ in 0..200 {
            let v = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=255).sample(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = __case_rng("collections", 1);
        for _ in 0..100 {
            let v = collection::vec(0u32..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = collection::btree_set(1u32..100, 2..6).sample(&mut rng);
            assert!(s.len() >= 2, "domain of 99 must reach target size");
        }
    }

    #[test]
    fn determinism_across_invocations() {
        let a = (0u64..u64::MAX).sample(&mut __case_rng("det", 3));
        let b = (0u64..u64::MAX).sample(&mut __case_rng("det", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        // Span of 0u64..=u64::MAX is 2^64: must wrap, not panic (debug).
        let mut rng = __case_rng("full", 0);
        let _ = (0u64..=u64::MAX).sample(&mut rng);
        let _ = (0usize..=usize::MAX).sample(&mut rng);
        let v = (0u8..=u8::MAX).sample(&mut rng);
        let _ = v; // full u8 domain is also fine (span 256 fits in u64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, tuples, map, option.
        #[test]
        fn macro_smoke(x in any::<u64>(), pair in (0u32..5, any::<bool>()),
                       opt in crate::option::of(0usize..3)) {
            prop_assert!(pair.0 < 5);
            let _ = x;
            if let Some(v) = opt { prop_assert!(v < 3); }
            prop_assert_eq!(pair.0 as u64 * 2, pair.0 as u64 + pair.0 as u64);
            prop_assert_ne!(pair.0 + 1, pair.0);
        }
    }
}
