//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize, Deserialize)]` for the `serde` shim
//! crate without `syn`/`quote` (neither is available offline): the item
//! is parsed directly from the `proc_macro` token stream and the impls
//! are emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//! * structs with named fields, tuple structs, unit structs;
//! * enums with named-field, tuple and unit variants;
//! * optional generics (copied verbatim onto the impl, no bounds added);
//! * `#[serde(...)]` helper attributes are accepted and ignored
//!   (the one use in the tree, `#[serde(bound = "")]`, requests exactly
//!   the no-extra-bounds behavior this derive always has).
//!
//! Encoding (must stay in sync with the `serde` shim's `Value`):
//! * named fields -> `Value::Map` keyed by field name;
//! * tuple fields -> `Value::Seq` in declaration order;
//! * unit struct  -> empty `Value::Map`;
//! * enum variant -> single-entry `Value::Map { variant_name: payload }`,
//!   except unit variants which encode as `Value::Str(variant_name)`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl must parse")
}

/// Field list of a struct or enum variant.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    /// No fields.
    Unit,
}

/// What kind of item we are deriving on.
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// A parsed `struct`/`enum` item, reduced to what code generation needs.
struct Item {
    name: String,
    /// Generic parameter list with bounds, e.g. `C: CurveParams` —
    /// empty when the type is not generic.
    generics_decl: String,
    /// Bare parameter names for the type path, e.g. `C`.
    generics_use: String,
    kind: Kind,
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut pos = 0;
        skip_attributes_and_vis(&tokens, &mut pos);

        let keyword = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected `struct` or `enum`, got {}", other),
        };
        pos += 1;
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected item name, got {}", other),
        };
        pos += 1;

        let (generics_decl, generics_use) = parse_generics(&tokens, &mut pos);

        let kind = match keyword.as_str() {
            "struct" => Kind::Struct(parse_struct_body(&tokens, &mut pos)),
            "enum" => Kind::Enum(parse_enum_body(&tokens, &mut pos)),
            other => panic!("cannot derive serde impls for `{}` items", other),
        };

        Item {
            name,
            generics_decl,
            generics_use,
            kind,
        }
    }

    /// `impl<'de, C: B> Tr for Name<C>` header fragments.
    fn impl_headers(&self) -> (String, String, String) {
        let ser_impl = if self.generics_decl.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_decl)
        };
        let de_impl = if self.generics_decl.is_empty() {
            "<'de>".to_owned()
        } else {
            format!("<'de, {}>", self.generics_decl)
        };
        let ty = if self.generics_use.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics_use)
        };
        (ser_impl, de_impl, ty)
    }

    fn serialize_impl(&self) -> String {
        let (ser_impl, _, ty) = self.impl_headers();
        let body = match &self.kind {
            Kind::Struct(fields) => serialize_fields_expr(fields, "self.", true),
            Kind::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(vname, fields)| serialize_variant_arm(vname, fields))
                    .collect();
                format!("match self {{ {arms} }}")
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl{ser_impl} ::serde::Serialize for {ty} {{\n\
                 fn serialize<__S: ::serde::Serializer>(&self, __s: __S)\n\
                     -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let (_, de_impl, ty) = self.impl_headers();
        let body = match &self.kind {
            Kind::Struct(fields) => deserialize_fields_expr(fields, "Self"),
            Kind::Enum(variants) => deserialize_enum_expr(variants),
        };
        format!(
            "#[automatically_derived]\n\
             impl{de_impl} ::serde::Deserialize<'de> for {ty} {{\n\
                 fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D)\n\
                     -> ::core::result::Result<Self, __D::Error> {{\n\
                     let __value = ::serde::Deserializer::deserialize_value(__d)?;\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    }
}

/// `__s.serialize_value(...)` for a field list. `prefix` is how fields
/// are reached (`self.` in struct impls, empty for match bindings).
fn serialize_fields_expr(fields: &Fields, prefix: &str, statement: bool) -> String {
    let value = fields_to_value(fields, prefix);
    if statement {
        format!("__s.serialize_value({value})")
    } else {
        value
    }
}

/// Expression of type `serde::Value` encoding the fields.
fn fields_to_value(fields: &Fields, prefix: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::to_value(&{prefix}{n}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(arity) => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| {
                    if prefix.is_empty() {
                        format!("::serde::to_value(__f{i})")
                    } else {
                        format!("::serde::to_value(&{prefix}{i})")
                    }
                })
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Fields::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_owned(),
    }
}

/// One `match` arm serializing an enum variant.
fn serialize_variant_arm(vname: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "Self::{vname} => __s.serialize_value(\
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\"))),"
        ),
        Fields::Named(names) => {
            let bindings = names.join(", ");
            let payload = fields_to_value(fields, "");
            format!(
                "Self::{vname} {{ {bindings} }} => __s.serialize_value(\
                     ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), {payload})])),"
            )
        }
        Fields::Tuple(arity) => {
            let bindings: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let payload = fields_to_value(fields, "");
            format!(
                "Self::{vname}({}) => __s.serialize_value(\
                     ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), {payload})])),",
                bindings.join(", ")
            )
        }
    }
}

/// Shared error-constructor snippet for generated deserialize code.
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

/// Expression deserializing `__value` into `ctor { fields... }`.
fn deserialize_fields_expr(fields: &Fields, ctor: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let field_inits: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "{n}: ::serde::from_value(\
                             ::serde::__take_field(&mut __map, \"{n}\")\
                                 .ok_or_else(|| {DE_ERR}(\"missing field `{n}`\"))?)\
                             .map_err({DE_ERR})?"
                    )
                })
                .collect();
            format!(
                "let mut __map = match __value {{\n\
                     ::serde::Value::Map(m) => m,\n\
                     _ => return ::core::result::Result::Err({DE_ERR}(\"expected map\")),\n\
                 }};\n\
                 ::core::result::Result::Ok({ctor} {{ {} }})",
                field_inits.join(", ")
            )
        }
        Fields::Tuple(arity) => {
            let field_inits: Vec<String> = (0..*arity)
                .map(|_| {
                    format!(
                        "::serde::from_value(__iter.next().expect(\"length checked\"))\
                             .map_err({DE_ERR})?"
                    )
                })
                .collect();
            format!(
                "let __items = match __value {{\n\
                     ::serde::Value::Seq(v) => v,\n\
                     _ => return ::core::result::Result::Err({DE_ERR}(\"expected sequence\")),\n\
                 }};\n\
                 if __items.len() != {arity} {{\n\
                     return ::core::result::Result::Err({DE_ERR}(\"wrong tuple length\"));\n\
                 }}\n\
                 let mut __iter = __items.into_iter();\n\
                 ::core::result::Result::Ok({ctor}({}))",
                field_inits.join(", ")
            )
        }
        Fields::Unit => format!("::core::result::Result::Ok({ctor})"),
    }
}

/// Match over the externally-tagged enum encoding.
fn deserialize_enum_expr(variants: &[(String, Fields)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => ::core::result::Result::Ok(Self::{vname}),"))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .map(|(vname, fields)| {
            let body = deserialize_fields_expr(fields, &format!("Self::{vname}"));
            format!("\"{vname}\" => {{ let __value = __payload; {body} }}")
        })
        .collect();
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit_arms}\n\
                 _ => ::core::result::Result::Err({DE_ERR}(\"unknown unit variant\")),\n\
             }},\n\
             ::serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = __m.remove(0);\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     _ => ::core::result::Result::Err({DE_ERR}(\"unknown variant\")),\n\
                 }}\n\
             }},\n\
             _ => ::core::result::Result::Err({DE_ERR}(\"invalid enum encoding\")),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers.
// ---------------------------------------------------------------------------

/// Advances past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` then the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                // `pub(crate)` / `pub(super)` carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses an optional `<...>` generic parameter list, returning the
/// declaration text (with bounds) and the bare parameter names.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> (String, String) {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), String::new()),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    let mut prev_was_dash = false;
    while depth > 0 {
        let tok = tokens
            .get(*pos)
            .unwrap_or_else(|| panic!("unterminated generic parameter list"));
        *pos += 1;
        let was_dash = prev_was_dash;
        prev_was_dash = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                // The `>` of a `->` arrow (e.g. `F: Fn() -> T`) does not
                // close the generic parameter list.
                '>' if was_dash => {}
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                '-' => prev_was_dash = true,
                _ => {}
            }
        }
        inner.push(tok.clone());
    }

    let decl = tokens_to_string(&inner);
    let mut params: Vec<String> = Vec::new();
    for segment in split_top_level_commas(&inner) {
        let mut it = segment.iter();
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                if let Some(TokenTree::Ident(id)) = it.next() {
                    params.push(format!("'{id}"));
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
                if let Some(TokenTree::Ident(name)) = it.next() {
                    params.push(name.to_string());
                }
            }
            Some(TokenTree::Ident(id)) => params.push(id.to_string()),
            _ => {}
        }
    }
    (decl, params.join(", "))
}

/// Parses the body of a `struct` item (after name and generics).
fn parse_struct_body(tokens: &[TokenTree], pos: &mut usize) -> Fields {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_field_names(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(split_top_level_commas(&inner).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        // `struct Foo<T> where ...` — no use in this workspace; the
        // derive would need to copy the clause, so reject loudly.
        other => panic!("unsupported struct body near {:?}", other),
    }
}

/// Parses enum variants from the brace group at `pos`.
fn parse_enum_body(tokens: &[TokenTree], pos: &mut usize) -> Vec<(String, Fields)> {
    let group = match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body, got {:?}", other),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    for segment in split_top_level_commas(&inner) {
        let mut i = 0usize;
        skip_attributes_and_vis(&segment, &mut i);
        if i >= segment.len() {
            continue; // trailing comma
        }
        let name = match &segment[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {}", other),
        };
        i += 1;
        let fields = match segment.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_field_names(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_level_commas(&body).len())
            }
            None => Fields::Unit,
            other => panic!("unsupported variant shape near {:?}", other),
        };
        variants.push((name, fields));
    }
    variants
}

/// Extracts field names from the token stream of a named-field body.
fn parse_named_field_names(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    for segment in split_top_level_commas(tokens) {
        let mut i = 0usize;
        skip_attributes_and_vis(&segment, &mut i);
        if i >= segment.len() {
            continue; // trailing comma
        }
        match &segment[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("expected field name, got {}", other),
        }
        // The `: Type` tail is intentionally ignored: generated code
        // relies on inference at the construction site instead.
    }
    names
}

/// Splits a token slice on commas that sit outside any `<...>` nesting.
/// (Bracketed/parenthesized content arrives as single `Group` tokens, so
/// only angle brackets need explicit depth tracking.) The `>` of a `->`
/// return-type arrow is not an angle-bracket close; a depth underflow —
/// some construct this mini-parser does not model — panics loudly rather
/// than silently merging fields.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0isize;
    let mut prev_was_dash = false;
    for tok in tokens {
        let mut is_dash = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' if prev_was_dash => {} // the `>` of a `->` arrow
                '>' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced `>` in field or generics list");
                }
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    prev_was_dash = false;
                    continue;
                }
                '-' => is_dash = true,
                _ => {}
            }
        }
        prev_was_dash = is_dash;
        current.push(tok.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Renders tokens back to source text.
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}
