//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Provides `to_string` / `from_str` over the `serde` shim's [`Value`]
//! pivot: serialization builds a `Value` tree and renders it as JSON
//! text; deserialization parses JSON text into a `Value` and decodes it.
//! Covers full JSON (nested arrays/objects, string escapes including
//! surrogate pairs, signed/unsigned/float numbers) so every round-trip
//! test in the workspace exercises a real codec.

use serde::{de::Error as _, Deserialize, Serialize, Value};
use std::fmt;

/// Error type for JSON encoding/decoding.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out);
    Ok(out)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    T::deserialize(serde::ValueDeserializer(value)).map_err(Error::custom)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // Rust's Display for f64 is shortest-round-trip; append
                // `.0` so integral floats stay floats on re-parse.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump()? {
            got if got == b => Ok(()),
            got => Err(Error(format!(
                "expected `{}`, got `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            ))),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| Error("unexpected end of input".into()))?
        {
            b'n' => self.eat_literal("null").map(|_| Value::Null),
            b't' => self.eat_literal("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_literal("false").map(|_| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error("invalid low surrogate".into()));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid unicode escape".into()))?,
                        );
                    }
                    other => return Err(Error(format!("invalid escape `\\{}`", other as char))),
                },
                // Multi-byte UTF-8: pass raw bytes through and re-validate.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error("invalid hex digit in \\u escape".into()))?;
            v = (v << 4) | digit;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> Result<usize> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error("invalid UTF-8 lead byte".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u8> = vec![0, 1, 255];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[0,1,255]");
        assert_eq!(from_str::<Vec<u8>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote:\" backslash:\\ newline:\n unicode:é 日本 \u{1}";
        let s = to_string(original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn float_roundtrip() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.5);
        let whole = to_string(&2.0f64).unwrap();
        assert_eq!(whole, "2.0");
    }
}
