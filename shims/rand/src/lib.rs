//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it consumes: the [`RngCore`] and
//! [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a small,
//! well-studied, allocation-free generator with 256 bits of state. It is
//! **not** a cryptographically secure RNG; the workspace only ever seeds
//! it explicitly (`seed_from_u64`) for reproducible tests, examples and
//! benchmarks, never for production key material.

/// The core trait every random number generator implements.
///
/// API-compatible (for this workspace's usage) with `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for RNGs suitable for cryptographic use.
///
/// Present for API parity; the deterministic [`rngs::StdRng`] shim does
/// *not* implement it honestly — see the crate docs.
pub trait CryptoRng {}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading it over the full
    /// state with SplitMix64 (mirrors `rand`'s documented behavior).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain, Vigna 2015).
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (limb, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *limb = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state; escape to a
            // fixed full-width state (a single nonzero limb would make the
            // first two outputs coincide).
            if s.iter().all(|&l| l == 0) {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                for (dst, src) in chunk.iter_mut().zip(word) {
                    *dst = src;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
