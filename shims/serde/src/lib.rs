//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no crates.io access, so this crate provides
//! the serde API subset the workspace actually uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits with the real signatures
//!   (`fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>`),
//!   so the hand-written impls in `borndist_pairing` compile unchanged;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim (which also accepts and ignores `#[serde(...)]` attributes);
//! * impls for the primitives and std containers the workspace
//!   serializes.
//!
//! Unlike real serde's visitor-based zero-copy design, this shim funnels
//! everything through a self-describing [`Value`] tree: a [`Serializer`]
//! receives one fully-built `Value`, and a [`Deserializer`] yields one.
//! That is dramatically simpler and entirely sufficient for the
//! workspace's needs (JSON round-trips in tests via the `serde_json`
//! shim).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value, the pivot format of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`; encodes `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

/// Error raised when a [`Value`] cannot be converted to the requested
/// type, and the error type of the built-in [`ValueDeserializer`].
#[derive(Clone, Debug)]
pub struct ValueError(String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

/// Serialization-side error plumbing (`serde::ser`).
pub mod ser {
    /// Trait every [`Serializer`](super::Serializer) error implements.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error plumbing (`serde::de`).
pub mod de {
    /// Trait every [`Deserializer`](super::Deserializer) error implements.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// A sink consuming one serialized [`Value`].
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes the fully-built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source yielding one serialized [`Value`].
///
/// The lifetime parameter mirrors real serde's API so `impl<'de>
/// Deserialize<'de> for …` blocks compile unchanged; this shim never
/// borrows from the input.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the value to decode.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an in-memory [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serializes any value into the pivot [`Value`] tree. Infallible for
/// every `Serialize` impl in this workspace.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("serialization into Value cannot fail")
}

/// Decodes a [`Value`] into a concrete type.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Removes and returns the entry for `key` from a map's entry list.
/// Support function for derived `Deserialize` impls.
#[doc(hidden)]
pub fn __take_field(entries: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    let pos = entries.iter().position(|(k, _)| k == key)?;
    Some(entries.remove(pos).1)
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    other => Err(de::Error::custom(format!(
                        "expected unsigned integer, got {:?}", other
                    ))),
                }
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_value(Value::U64(v as u64))
                } else {
                    s.serialize_value(Value::I64(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.deserialize_value()? {
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom("integer out of range")),
                    other => Err(de::Error::custom(format!(
                        "expected integer, got {:?}", other
                    ))),
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {:?}", other))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!(
                "expected float, got {:?}",
                other
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(v) => Ok(v),
            other => Err(de::Error::custom(format!(
                "expected string, got {:?}",
                other
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Deserialize::deserialize(d)?;
        items
            .try_into()
            .map_err(|_| de::Error::custom("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, got {:?}",
                other
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(de::Error::custom),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.deserialize_value()? {
                    Value::Seq(items) => {
                        let expected = 0usize $(+ { let _ = $idx; 1 })+;
                        if items.len() != expected {
                            return Err(de::Error::custom("wrong tuple length"));
                        }
                        let mut iter = items.into_iter();
                        Ok(($(
                            from_value::<$name>(iter.next().expect("length checked"))
                                .map_err(de::Error::custom)?,
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected tuple sequence, got {:?}", other
                    ))),
                }
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), to_value(v)))
                .collect(),
        ))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = k
                        .parse::<K>()
                        .map_err(|_| de::Error::custom(format!("invalid map key `{k}`")))?;
                    let value = from_value(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected map, got {:?}", other))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(to_value).collect()))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Deserialize::deserialize(d)?;
        Ok(items.into_iter().collect())
    }
}
