#!/usr/bin/env python3
"""Merge every BENCH_*.json trajectory point into one table and fail CI
on malformed or silently-missing bench records.

Each release-gate example prints a machine-readable JSON record that CI
commits as ``BENCH_<name>.json``. This script is the aggregation gate:

* every file in ``EXPECTED`` must exist — a gate that stops emitting its
  record must fail the job, not quietly vanish from the trajectory;
* every file must parse as JSON and carry its required keys (``bench``
  matching the file name, a non-empty ``rows`` list, and the per-file
  keys listed in ``EXPECTED``);
* every row must carry a ``name`` plus that file's required row keys.

On success it prints one merged table (file, row, headline numbers) so
the CI log shows the whole performance trajectory in one place.

Usage: python3 tools/bench_report.py [repo-root]
"""

import json
import sys
from pathlib import Path

# file stem -> (required top-level keys, required per-row keys)
EXPECTED = {
    "batch_verify": (["unit", "reps"], ["batch_ms", "sequential_ms", "speedup"]),
    "dkg_scaling": (
        ["unit", "reps", "host_parallelism", "gate"],
        ["n", "baseline_ms", "batched_ms", "skipped"],
    ),
    "pairing_engine": (["unit", "reps", "iters"], ["ate_ms", "reference_ms", "speedup"]),
    "parallel": (
        ["unit", "reps", "threads", "gate"],
        ["k", "ms", "speedup_t4"],
    ),
    "reactor": (
        ["unit", "host_parallelism", "gate", "service"],
        ["n", "time_ms", "aux", "skipped"],
    ),
    # Rows are heterogeneous (GLV comparisons plus a verify-path sample),
    # so only `name` is required per row; headline() dispatches on shape.
    "scalar_mul": (["unit", "reps", "gate"], []),
    "service": (
        ["host_parallelism", "enforced", "amortization_ratio"],
        ["ops", "elapsed_ms", "p50_ms", "p99_ms"],
    ),
}

# `bench` field inside the record, where it differs from the file stem.
BENCH_NAME = {
    "parallel": "parallel_throughput",
    "reactor": "reactor_mesh",
    "scalar_mul": "scalar_mul_throughput",
    "service": "service_load",
}


def fail(msg: str) -> None:
    print(f"bench_report: ERROR: {msg}", file=sys.stderr)
    sys.exit(1)


def headline(stem: str, row: dict) -> str:
    """The one number per row worth a table cell."""
    if stem == "batch_verify":
        return f"{row['batch_ms']:.3f} ms ({row['speedup']:.2f}x)"
    if stem == "dkg_scaling":
        if row.get("skipped"):
            return "skipped"
        return f"{row['batched_ms']:.1f} ms"
    if stem == "pairing_engine":
        return f"{row['ate_ms']:.3f} ms ({row['speedup']:.2f}x)"
    if stem == "parallel":
        # `ms` is the per-thread-count series [t1, t2, t3, t4].
        ms = row["ms"][-1] if isinstance(row["ms"], list) else row["ms"]
        return f"{ms:.3f} ms ({row['speedup_t4']:.2f}x @t4)"
    if stem == "reactor":
        if row.get("skipped"):
            return "skipped"
        aux = row.get("aux", 0)
        note = f", aux {aux}" if aux else ""
        return f"{row['time_ms']:.1f} ms{note}"
    if stem == "scalar_mul":
        if "glv_ms" in row:
            return f"glv {row['glv_ms']:.3f} ms ({row['vs_schoolbook']:.2f}x vs schoolbook)"
        return f"{row['ms']:.3f} ms"
    if stem == "service":
        return f"{row['ops']} ops, p99 {row['p99_ms']:.2f} ms"
    return "?"


def main() -> None:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent

    present = {p.stem.removeprefix("BENCH_") for p in root.glob("BENCH_*.json")}
    missing = sorted(set(EXPECTED) - present)
    if missing:
        fail(f"missing bench records: {['BENCH_' + m + '.json' for m in missing]}")
    unexpected = sorted(present - set(EXPECTED))
    if unexpected:
        fail(
            f"unlisted bench records {unexpected}: add them to EXPECTED in "
            "tools/bench_report.py so the trajectory table stays complete"
        )

    table = []
    for stem in sorted(EXPECTED):
        path = root / f"BENCH_{stem}.json"
        top_keys, row_keys = EXPECTED[stem]
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path.name}: unreadable or malformed JSON: {e}")
        if record.get("bench") != BENCH_NAME.get(stem, stem):
            fail(
                f"{path.name}: bench field {record.get('bench')!r} does not "
                f"match expected {BENCH_NAME.get(stem, stem)!r}"
            )
        for key in top_keys:
            if key not in record:
                fail(f"{path.name}: missing top-level key {key!r}")
        rows = record.get("rows")
        if not isinstance(rows, list) or not rows:
            fail(f"{path.name}: 'rows' must be a non-empty list")
        for i, row in enumerate(rows):
            if "name" not in row:
                fail(f"{path.name}: row {i} has no 'name'")
            for key in row_keys:
                if key not in row:
                    fail(f"{path.name}: row {row['name']!r} missing key {key!r}")
            table.append((stem, row["name"], headline(stem, row)))

    width = max(len(name) for _, name, _ in table)
    print(f"== bench trajectory ({len(EXPECTED)} records, {len(table)} rows) ==")
    last = None
    for stem, name, cell in table:
        label = stem if stem != last else ""
        print(f"  {label:<14} {name:<{width}}  {cell}")
        last = stem
    print("bench_report: all records present and well-formed")


if __name__ == "__main__":
    main()
