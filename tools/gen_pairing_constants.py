#!/usr/bin/env python3
"""Derives the optimal-ate pairing constants in `crates/pairing/src/constants.rs`.

Outputs (all limb arrays little-endian u64, canonical — not Montgomery — form,
matching the existing generator/Frobenius constants):

* ``BLS_X`` — the absolute value of the BLS12-381 curve parameter
  ``x = -0xd201000000010000`` (the optimal-ate Miller loop length).
* ``FROB1_GAMMA`` — the p-power Frobenius coefficients
  ``gamma_i = xi^(i(p-1)/6) in Fp2`` for ``i = 0..5``, with ``xi = 1 + u``
  the sextic non-residue of the tower.
* ``GLV_*`` — the 2-dimensional GLV lattice for the scalar decomposition
  in ``crates/pairing/src/glv.rs``: the eigenvalue ``lambda = X^2 - 1``
  of the cube-root-of-unity endomorphism on G1 (and its conjugate
  ``-X^2``), the reduced basis ``v1 = (X^2 - 1, -1)``, ``v2 = (1, X^2)``
  of the kernel of ``(k1, k2) -> k1 + k2*lambda mod r`` (determinant
  exactly ``r``), and the Babai rounding constants
  ``floor(2^384 * X^2 / r)`` / ``floor(2^384 / r)`` used to split a
  scalar into two sub-scalars of at most 129 bits.
* ``ATE_TATE_EXP`` — the fixed exponent ``3d mod r`` with
  ``d = L * c^-1 mod r`` the Hess–Smart–Vercauteren constant relating the
  canonical reduced optimal-ate pairing to the swapped-argument reduced
  Tate pairing ``f_{r,Q}(P)^((p^12-1)/r)``, where ``L = (x^12 - 1)/r``
  and ``c = 12 p^11 mod r``.  The extra factor 3 accounts for the final
  exponentiation addition chain computing ``m^(3*(p^4-p^2+1)/r)`` (the
  standard variant — 3 is coprime to r, so the cube is an equally valid
  pairing).  Net: ``pairing(P, Q) = pairing_tate_g2(P, Q)^ATE_TATE_EXP``.
  (Both facts were confirmed numerically against an independent Python
  model of the full tower, and symbolically for the chain exponent.)

Run: ``python3 tools/gen_pairing_constants.py``
"""

p = 0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F6241EABFFFEB153FFFFB9FEFFFFFFFFAAAB
r = 0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001
X = 0xD201000000010000  # |x|; the curve parameter itself is -X


def limbs(n, count):
    out = []
    for _ in range(count):
        out.append(n & 0xFFFFFFFFFFFFFFFF)
        n >>= 64
    assert n == 0
    return out


def fmt(name, n, count, indent=""):
    ls = limbs(n, count)
    body = "\n".join(f"{indent}    0x{l:016x}," for l in ls)
    return f"{indent}{name} = [\n{body}\n{indent}];"


def f2_mul(a, b):
    return ((a[0] * b[0] - a[1] * b[1]) % p, (a[0] * b[1] + a[1] * b[0]) % p)


def f2_pow(a, e):
    acc = (1, 0)
    while e:
        if e & 1:
            acc = f2_mul(acc, a)
        a = f2_mul(a, a)
        e >>= 1
    return acc


def main():
    assert (p - 1) % 6 == 0, "p must be 1 mod 6 for the sextic tower"
    xi = (1, 1)

    print(f"pub const BLS_X: u64 = 0x{X:016x};")
    print()
    print("pub const FROB1_GAMMA: [[[u64; 6]; 2]; 6] = [")
    for i in range(6):
        g = f2_pow(xi, i * (p - 1) // 6)
        print("    [")
        for coord in g:
            body = "\n".join(f"            0x{l:016x}," for l in limbs(coord, 6))
            print(f"        [\n{body}\n        ],")
        print("    ],")
    print("];")
    print()

    # --- GLV lattice for the G1 scalar decomposition (glv.rs) ---
    X2 = X * X
    assert r == X2 * X2 - X2 + 1, "r(X) = X^4 - X^2 + 1 on BLS curves"
    lam1 = (X2 - 1) % r
    lam2 = (-X2) % r
    for lam in (lam1, lam2):
        assert (lam * lam + lam + 1) % r == 0, "lambda is a cube root of 1"
    # Basis of the kernel lattice for lambda = X^2 - 1; determinant is
    # exactly r, so Babai rounding against it splits any k < r into
    # sub-scalars k1 in [0, 2X^2), k2 in (-2, 2X^2) — at most 129 bits.
    assert ((X2 - 1) - lam1) % r == 0, "v1 = (X^2-1, -1) is in the lattice"
    assert (1 + X2 * lam1) % r == 0, "v2 = (1, X^2) is in the lattice"
    assert (X2 - 1) * X2 + 1 == r, "basis determinant is r"
    n384 = 1 << 384
    g1_floor = n384 * X2 // r
    g2_floor = n384 // r
    print(fmt("pub const GLV_X2: [u64; 2]", X2, 2))
    print(fmt("pub const GLV_G1_FLOOR: [u64; 5]", g1_floor, 5))
    print(fmt("pub const GLV_G2_FLOOR: [u64; 3]", g2_floor, 3))
    print(fmt("pub const GLV_LAMBDA_1: [u64; 4]", lam1, 4))
    print(fmt("pub const GLV_LAMBDA_2: [u64; 4]", lam2, 4))
    print()
    # Spot-check the rounding error bound of the floor approximation:
    # k1 = d1*(X^2-1) + d2 and k2 = d2*X^2 - d1 with d1, d2 in [0, 2).
    for k in (1, 2, r // 2, r - 1, lam1, lam2, X2, 0x1234567890ABCDEF):
        c1 = (k * g1_floor) >> 384
        c2 = (k * g2_floor) >> 384
        k1 = k - c1 * (X2 - 1) - c2
        k2 = c1 - c2 * X2
        assert (k1 + k2 * lam1) % r == k % r, "decomposition is congruent"
        assert 0 <= k1 < 2 * X2 and -2 < k2 < 2 * X2, "sub-scalar bounds"

    L = (X**12 - 1) // r
    c = 12 * pow(p, 11, r) % r
    d = 3 * L * pow(c, r - 2, r) % r
    print(fmt("pub const ATE_TATE_EXP: [u64; 4]", d, 4))

    # The final-exponentiation hard part addition chain (see
    # `final_exponentiation` in pairing.rs), modeled on exponents:
    # square -> *2, conjugate -> negate, mul -> add, exp_by_x -> *x
    # (x = -X), frobenius^k -> *p^k. Must compute 3*(p^4-p^2+1)/r.
    xx = -X
    m = 1
    t1 = -2 * m
    t3 = xx * m
    t4 = 2 * t3
    t5 = t1 + t3
    t1 = xx * t5
    t0 = xx * t1
    t6 = xx * t0 + t4
    t4 = xx * t6
    t4 += -t5 + m
    t1 = (t1 + m) * p**3
    t6 = (t6 - m) * p
    t3 = (t3 + t0) * p**2 + t1 + t6
    chain = t3 + t4
    phi = p**4 - p**2 + 1
    assert chain % phi == 3 * (phi // r) % phi, "chain must equal 3x hard part"

    # Cross-checks against facts the Rust test suite also relies on.
    assert p % r == (-X) % r, "T = t - 1 = x must be congruent to p mod r"
    assert pow(X, 12, r) == pow(p, 12, r) % r
    g1 = f2_pow(xi, (p - 1) // 6)
    assert f2_pow(g1, 6) == f2_pow(xi, p - 1)


if __name__ == "__main__":
    main()
