//! # borndist-lhsps
//!
//! One-time **linearly homomorphic structure-preserving signatures**
//! (LHSPS, Libert–Peters–Joye–Yung, Crypto 2013) — the primitive from
//! which the paper's threshold signatures are derived (§2.3, Appendix C).
//!
//! Three pieces:
//!
//! * [`one_time`] — the DP-assumption scheme with 2-element signatures;
//! * [`sdp`] — the SDP-assumption variant with 3-element signatures and
//!   two verification equations (used by the Appendix F DLIN scheme);
//! * [`rom_signature`] — Appendix D.1: LHSPS + random oracle ⇒ ordinary
//!   signature scheme (the centralized baseline of the benchmarks).
//!
//! Both instantiations expose the two structural properties the threshold
//! constructions rely on: *linear* homomorphism over messages
//! (`sign_derive`) and *key* homomorphism (`SecretKey::add`,
//! `PublicKey::combine`).
//!
//! ## Example
//!
//! ```rust
//! use borndist_lhsps::{DpParams, OneTimeSecretKey};
//! use borndist_pairing::G1Projective;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let params = DpParams::derive(b"example");
//! let sk = OneTimeSecretKey::random(2, &mut rng);
//! let pk = sk.public_key(&params);
//! let msg = vec![G1Projective::random(&mut rng), G1Projective::random(&mut rng)];
//! let sig = sk.sign(&msg);
//! assert!(pk.verify(&params, &msg, &sig));
//! ```

pub mod one_time;
pub mod params;
pub mod rom_signature;
pub mod sdp;
pub mod template;

pub use one_time::{
    sign_derive, OneTimePublicKey, OneTimeSecretKey, OneTimeSignature, PreparedOneTimePublicKey,
};
pub use params::{DpParams, PreparedDpParams, SdpParams};
pub use rom_signature::{RomSigner, RomVerifier};
pub use sdp::{SdpPublicKey, SdpSecretKey, SdpSignature};
pub use template::{DpLhsps, OneTimeLhsps, SdpLhsps};
