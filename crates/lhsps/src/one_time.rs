//! The one-time linearly homomorphic SPS of §2.3 (Libert et al.,
//! Crypto 2013), secure under the Double Pairing assumption.
//!
//! * `Keygen(λ, N)`: `sk = {(χ_k, γ_k)}`, `pk = (ĝ_z, ĝ_r, {ĝ_k})` with
//!   `ĝ_k = ĝ_z^{χ_k} ĝ_r^{γ_k}`.
//! * `Sign(sk, M⃗)`: `σ = (z, r) = (Π M_k^{-χ_k}, Π M_k^{-γ_k})`.
//! * `SignDerive`: signatures combine linearly over the message space.
//! * `Verify`: `e(z, ĝ_z)·e(r, ĝ_r)·Π e(M_k, ĝ_k) = 1` and `M⃗ ≠ 1⃗`.
//!
//! Two structural properties carry the whole paper:
//! 1. **Key homomorphism** — `Sign(sk₁+sk₂, M⃗) = Sign(sk₁,M⃗)·Sign(sk₂,M⃗)`,
//!    which makes non-interactive threshold signing possible; and
//! 2. **signature uniqueness under DP** — two distinct valid signatures on
//!    the same vector break Double Pairing, which drives the security
//!    reductions.

use crate::params::{DpParams, PreparedDpParams};
use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{
    msm, multi_pairing, multi_pairing_mixed, Fr, G1Affine, G1Projective, G2Affine, G2Prepared,
    G2Projective,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Secret key: the discrete-log representation `{(χ_k, γ_k)}` of the
/// public `ĝ_k` with respect to `(ĝ_z, ĝ_r)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneTimeSecretKey {
    /// Exponents `χ_k` (one per message coordinate).
    pub chi: Vec<Fr>,
    /// Exponents `γ_k`.
    pub gamma: Vec<Fr>,
}

/// Public key: `{ĝ_k = ĝ_z^{χ_k} ĝ_r^{γ_k}}` (the generators live in the
/// shared [`DpParams`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneTimePublicKey {
    /// Committed coordinates `ĝ_k`.
    pub g_hat: Vec<G2Affine>,
}

/// A public key with every coordinate's Miller line coefficients
/// precomputed — built once at keygen/refresh for long-lived keys, so
/// every verification against it performs zero `Ĝ`-side point
/// arithmetic (all `Ĝ` elements of the equation are then prepared).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedOneTimePublicKey {
    /// The plain key (kept for equality checks and re-derivation).
    pub key: OneTimePublicKey,
    /// Prepared coordinates, index-aligned with `key.g_hat`.
    pub g_hat: Vec<G2Prepared>,
}

/// A (one-time, linearly homomorphic) signature `(z, r) ∈ G²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneTimeSignature {
    /// First component `z`.
    pub z: G1Affine,
    /// Second component `r`.
    pub r: G1Affine,
}

impl OneTimeSecretKey {
    /// Samples a secret key for vectors of dimension `n`.
    pub fn random<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Self {
        OneTimeSecretKey {
            chi: (0..n).map(|_| Fr::random(rng)).collect(),
            gamma: (0..n).map(|_| Fr::random(rng)).collect(),
        }
    }

    /// The message-vector dimension this key signs.
    pub fn dimension(&self) -> usize {
        self.chi.len()
    }

    /// Derives the matching public key.
    pub fn public_key(&self, params: &DpParams) -> OneTimePublicKey {
        let pts: Vec<G2Projective> = self
            .chi
            .iter()
            .zip(self.gamma.iter())
            .map(|(c, g)| msm(&[params.g_z, params.g_r], &[*c, *g]))
            .collect();
        OneTimePublicKey {
            g_hat: G2Projective::batch_to_affine(&pts),
        }
    }

    /// Key homomorphism: componentwise sum of two secret keys.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.dimension(), other.dimension(), "dimension mismatch");
        OneTimeSecretKey {
            chi: self
                .chi
                .iter()
                .zip(other.chi.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
            gamma: self
                .gamma
                .iter()
                .zip(other.gamma.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }

    /// Signs a message vector `M⃗ ∈ G^n`: `(Π M_k^{-χ_k}, Π M_k^{-γ_k})`.
    ///
    /// Deterministic — the property that makes threshold signing
    /// non-interactive (no joint randomness round is ever needed).
    ///
    /// # Panics
    ///
    /// Panics if the message dimension does not match the key.
    pub fn sign(&self, msg: &[G1Projective]) -> OneTimeSignature {
        assert_eq!(msg.len(), self.dimension(), "message dimension mismatch");
        let bases = G1Projective::batch_to_affine(msg);
        let neg_chi: Vec<Fr> = self.chi.iter().map(|c| -*c).collect();
        let neg_gamma: Vec<Fr> = self.gamma.iter().map(|g| -*g).collect();
        OneTimeSignature {
            z: msm(&bases, &neg_chi).to_affine(),
            r: msm(&bases, &neg_gamma).to_affine(),
        }
    }
}

impl OneTimePublicKey {
    /// The message-vector dimension this key verifies.
    pub fn dimension(&self) -> usize {
        self.g_hat.len()
    }

    /// Key homomorphism on the public side: componentwise product.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.dimension(), other.dimension(), "dimension mismatch");
        let pts: Vec<G2Projective> = self
            .g_hat
            .iter()
            .zip(other.g_hat.iter())
            .map(|(a, b)| a.to_projective().add_affine(b))
            .collect();
        OneTimePublicKey {
            g_hat: G2Projective::batch_to_affine(&pts),
        }
    }

    /// Verifies `σ` on `M⃗`: rejects the all-identity vector, then checks
    /// the single pairing-product equation.
    pub fn verify(&self, params: &DpParams, msg: &[G1Projective], sig: &OneTimeSignature) -> bool {
        if msg.len() != self.dimension() {
            return false;
        }
        if msg.iter().all(|m| m.is_identity()) {
            return false;
        }
        let msg_affine = G1Projective::batch_to_affine(msg);
        let mut pairs: Vec<(&G1Affine, &G2Affine)> =
            vec![(&sig.z, &params.g_z), (&sig.r, &params.g_r)];
        for (m, g) in msg_affine.iter().zip(self.g_hat.iter()) {
            pairs.push((m, g));
        }
        multi_pairing(&pairs).is_identity()
    }

    /// [`Self::verify`] with the scheme generators prepared: `(ĝ_z, ĝ_r)`
    /// pair through their cached line coefficients, only the key
    /// coordinates run live `Ĝ` point arithmetic. Same verdict as the
    /// slow path on every input (property-tested in `tests/properties.rs`).
    pub fn verify_prepared(
        &self,
        prepared: &PreparedDpParams,
        msg: &[G1Projective],
        sig: &OneTimeSignature,
    ) -> bool {
        if msg.len() != self.dimension() {
            return false;
        }
        if msg.iter().all(|m| m.is_identity()) {
            return false;
        }
        let msg_affine = G1Projective::batch_to_affine(msg);
        let pairs: Vec<(&G1Affine, &G2Affine)> = msg_affine.iter().zip(self.g_hat.iter()).collect();
        multi_pairing_mixed(&pairs, &[(&sig.z, &prepared.g_z), (&sig.r, &prepared.g_r)])
            .is_identity()
    }

    /// Precomputes the pairing line coefficients of every key coordinate
    /// (one ate Miller point pass per coordinate, amortized over the
    /// key's lifetime).
    pub fn prepare(&self) -> PreparedOneTimePublicKey {
        PreparedOneTimePublicKey {
            g_hat: self.g_hat.iter().map(G2Prepared::new).collect(),
            key: self.clone(),
        }
    }
}

impl Wire for OneTimeSignature {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.z.encode_to(out);
        self.r.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(OneTimeSignature {
            z: G1Affine::decode(input)?,
            r: G1Affine::decode(input)?,
        })
    }
}

impl Wire for OneTimePublicKey {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.g_hat.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(OneTimePublicKey {
            g_hat: Vec::decode(input)?,
        })
    }
}

impl Wire for OneTimeSecretKey {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.chi.encode_to(out);
        self.gamma.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(OneTimeSecretKey {
            chi: Vec::decode(input)?,
            gamma: Vec::decode(input)?,
        })
    }
}

impl PreparedOneTimePublicKey {
    /// The message-vector dimension this key verifies.
    pub fn dimension(&self) -> usize {
        self.g_hat.len()
    }

    /// Fully prepared verification: every `Ĝ`-side element of the
    /// equation (generators *and* key coordinates) pairs through cached
    /// line coefficients — the verification hot path for long-lived keys.
    pub fn verify(
        &self,
        prepared: &PreparedDpParams,
        msg: &[G1Projective],
        sig: &OneTimeSignature,
    ) -> bool {
        if msg.len() != self.dimension() {
            return false;
        }
        if msg.iter().all(|m| m.is_identity()) {
            return false;
        }
        let msg_affine = G1Projective::batch_to_affine(msg);
        let mut pairs: Vec<(&G1Affine, &G2Prepared)> =
            vec![(&sig.z, &prepared.g_z), (&sig.r, &prepared.g_r)];
        for (m, g) in msg_affine.iter().zip(self.g_hat.iter()) {
            pairs.push((m, g));
        }
        multi_pairing_mixed(&[], &pairs).is_identity()
    }
}

/// `SignDerive`: computes the signature on `Π M_i^{ω_i}` from signatures
/// `σ_i` on `M_i` — public linear derivation, no secret key involved.
pub fn sign_derive(weighted: &[(Fr, &OneTimeSignature)]) -> OneTimeSignature {
    let zs: Vec<G1Affine> = weighted.iter().map(|(_, s)| s.z).collect();
    let rs: Vec<G1Affine> = weighted.iter().map(|(_, s)| s.r).collect();
    let ws: Vec<Fr> = weighted.iter().map(|(w, _)| *w).collect();
    OneTimeSignature {
        z: msm(&zs, &ws).to_affine(),
        r: msm(&rs, &ws).to_affine(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x1457)
    }

    fn setup(r: &mut StdRng, n: usize) -> (DpParams, OneTimeSecretKey, OneTimePublicKey) {
        let params = DpParams::random(r);
        let sk = OneTimeSecretKey::random(n, r);
        let pk = sk.public_key(&params);
        (params, sk, pk)
    }

    fn random_msg(r: &mut StdRng, n: usize) -> Vec<G1Projective> {
        (0..n).map(|_| G1Projective::random(r)).collect()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng();
        for n in [1usize, 2, 3] {
            let (params, sk, pk) = setup(&mut r, n);
            let msg = random_msg(&mut r, n);
            let sig = sk.sign(&msg);
            assert!(pk.verify(&params, &msg, &sig), "n={}", n);
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        let other = random_msg(&mut r, 2);
        assert!(!pk.verify(&params, &other, &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        let bad = OneTimeSignature {
            z: G1Projective::random(&mut r).to_affine(),
            r: sig.r,
        };
        assert!(!pk.verify(&params, &msg, &bad));
    }

    #[test]
    fn all_identity_vector_rejected() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let msg = vec![G1Projective::identity(); 2];
        let sig = sk.sign(&msg);
        assert!(!pk.verify(&params, &msg, &sig));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        assert!(!pk.verify(&params, &msg[..1], &sig));
    }

    #[test]
    fn linear_homomorphism() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let m1 = random_msg(&mut r, 2);
        let m2 = random_msg(&mut r, 2);
        let (s1, s2) = (sk.sign(&m1), sk.sign(&m2));
        let (w1, w2) = (Fr::random(&mut r), Fr::random(&mut r));
        // Derived signature must verify on M1^w1 * M2^w2.
        let derived = sign_derive(&[(w1, &s1), (w2, &s2)]);
        let combined: Vec<G1Projective> = m1
            .iter()
            .zip(m2.iter())
            .map(|(a, b)| a.mul(&w1) + b.mul(&w2))
            .collect();
        assert!(pk.verify(&params, &combined, &derived));
    }

    #[test]
    fn key_homomorphism() {
        let mut r = rng();
        let params = DpParams::random(&mut r);
        let sk1 = OneTimeSecretKey::random(2, &mut r);
        let sk2 = OneTimeSecretKey::random(2, &mut r);
        let msg = random_msg(&mut r, 2);
        // Componentwise product of signatures = signature under sk1+sk2.
        let joint_sig = OneTimeSignature {
            z: (sk1.sign(&msg).z.to_projective() + sk2.sign(&msg).z.to_projective()).to_affine(),
            r: (sk1.sign(&msg).r.to_projective() + sk2.sign(&msg).r.to_projective()).to_affine(),
        };
        let sk_sum = sk1.add(&sk2);
        assert_eq!(sk_sum.sign(&msg), joint_sig);
        let pk_sum = sk1.public_key(&params).combine(&sk2.public_key(&params));
        assert!(pk_sum.verify(&params, &msg, &joint_sig));
        assert_eq!(pk_sum, sk_sum.public_key(&params));
    }

    #[test]
    fn prepared_verification_agrees_with_slow_path() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let prepared = params.prepare();
        let pk_prep = pk.prepare();
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        // Accepting case: all three paths agree.
        assert!(pk.verify(&params, &msg, &sig));
        assert!(pk.verify_prepared(&prepared, &msg, &sig));
        assert!(pk_prep.verify(&prepared, &msg, &sig));
        // Rejecting cases must agree too: wrong message, bad dimension,
        // degenerate vector.
        let other = random_msg(&mut r, 2);
        assert!(!pk.verify_prepared(&prepared, &other, &sig));
        assert!(!pk_prep.verify(&prepared, &other, &sig));
        assert!(!pk.verify_prepared(&prepared, &msg[..1], &sig));
        assert!(!pk_prep.verify(&prepared, &msg[..1], &sig));
        let degenerate = vec![G1Projective::identity(); 2];
        let dsig = sk.sign(&degenerate);
        assert!(!pk.verify_prepared(&prepared, &degenerate, &dsig));
        assert!(!pk_prep.verify(&prepared, &degenerate, &dsig));
        assert_eq!(pk_prep.key, pk);
        assert_eq!(pk_prep.dimension(), pk.dimension());
    }

    #[test]
    fn signing_is_deterministic() {
        let mut r = rng();
        let (_, sk, _) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        assert_eq!(sk.sign(&msg), sk.sign(&msg));
    }

    #[test]
    fn signature_serde_roundtrip() {
        let mut r = rng();
        let (_, sk, _) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        let enc = serde_json::to_string(&sig).unwrap();
        let dec: OneTimeSignature = serde_json::from_str(&enc).unwrap();
        assert_eq!(dec, sig);
    }
}
