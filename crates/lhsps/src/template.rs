//! The generic one-time LHSPS template of Appendix C.
//!
//! The paper observes that every one-time linearly homomorphic SPS fits a
//! common shape: `ns` signature elements in `G`, `m` verification
//! equations of the form `Π_µ e(Z_µ, F̂_{j,µ}) · Π_k e(M_k, Ĝ_{j,k}) = 1`.
//! This module captures that template as a trait, implemented by both
//! concrete instantiations of this crate:
//!
//! * [`crate::one_time`] — `ns = 2`, `m = 1` (DP assumption);
//! * [`crate::sdp`] — `ns = 3`, `m = 2` (SDP/DLIN assumption).
//!
//! The threshold constructions in `borndist-core` are written against
//! the concrete types for clarity, but the trait documents the common
//! contract (and Appendix D's generic transformations are stated over
//! exactly this interface).

use borndist_pairing::{Fr, G1Projective};
use rand::RngCore;

/// A one-time linearly homomorphic structure-preserving signature
/// scheme over `(G, Ĝ, G_T)` (Appendix C template, tags omitted as the
/// schemes are one-time).
pub trait OneTimeLhsps {
    /// Shared public parameters (the `F̂` bases).
    type Params;
    /// Secret key (exponent representation of the public key).
    type SecretKey;
    /// Public key (`Ĝ_{j,k}` elements).
    type PublicKey;
    /// Signature (`ns` group elements).
    type Signature;

    /// Number of signature elements `ns`.
    const SIGNATURE_ELEMENTS: usize;
    /// Number of verification equations `m`.
    const VERIFICATION_EQUATIONS: usize;

    /// `Keygen(λ, N)` for dimension-`n` message vectors.
    fn keygen<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Self::SecretKey;

    /// Derives the public key.
    fn public_key(params: &Self::Params, sk: &Self::SecretKey) -> Self::PublicKey;

    /// `Sign(sk, M⃗)` — deterministic.
    fn sign(sk: &Self::SecretKey, msg: &[G1Projective]) -> Self::Signature;

    /// `SignDerive(pk, {(ω_i, σ_i)})` — public linear derivation.
    fn derive(weighted: &[(Fr, &Self::Signature)]) -> Self::Signature;

    /// `Verify(pk, σ, M⃗)`.
    fn verify(
        params: &Self::Params,
        pk: &Self::PublicKey,
        msg: &[G1Projective],
        sig: &Self::Signature,
    ) -> bool;

    /// Key homomorphism: `Sign(sk₁+sk₂, ·) = Sign(sk₁, ·)·Sign(sk₂, ·)`.
    fn add_keys(a: &Self::SecretKey, b: &Self::SecretKey) -> Self::SecretKey;
}

/// The DP-based instantiation of §2.3 viewed through the template.
pub struct DpLhsps;

impl OneTimeLhsps for DpLhsps {
    type Params = crate::params::DpParams;
    type SecretKey = crate::one_time::OneTimeSecretKey;
    type PublicKey = crate::one_time::OneTimePublicKey;
    type Signature = crate::one_time::OneTimeSignature;

    const SIGNATURE_ELEMENTS: usize = 2;
    const VERIFICATION_EQUATIONS: usize = 1;

    fn keygen<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Self::SecretKey {
        crate::one_time::OneTimeSecretKey::random(n, rng)
    }
    fn public_key(params: &Self::Params, sk: &Self::SecretKey) -> Self::PublicKey {
        sk.public_key(params)
    }
    fn sign(sk: &Self::SecretKey, msg: &[G1Projective]) -> Self::Signature {
        sk.sign(msg)
    }
    fn derive(weighted: &[(Fr, &Self::Signature)]) -> Self::Signature {
        crate::one_time::sign_derive(weighted)
    }
    fn verify(
        params: &Self::Params,
        pk: &Self::PublicKey,
        msg: &[G1Projective],
        sig: &Self::Signature,
    ) -> bool {
        pk.verify(params, msg, sig)
    }
    fn add_keys(a: &Self::SecretKey, b: &Self::SecretKey) -> Self::SecretKey {
        a.add(b)
    }
}

/// The SDP-based instantiation (Appendix F primitive) through the
/// template.
pub struct SdpLhsps;

impl OneTimeLhsps for SdpLhsps {
    type Params = crate::params::SdpParams;
    type SecretKey = crate::sdp::SdpSecretKey;
    type PublicKey = crate::sdp::SdpPublicKey;
    type Signature = crate::sdp::SdpSignature;

    const SIGNATURE_ELEMENTS: usize = 3;
    const VERIFICATION_EQUATIONS: usize = 2;

    fn keygen<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Self::SecretKey {
        crate::sdp::SdpSecretKey::random(n, rng)
    }
    fn public_key(params: &Self::Params, sk: &Self::SecretKey) -> Self::PublicKey {
        sk.public_key(params)
    }
    fn sign(sk: &Self::SecretKey, msg: &[G1Projective]) -> Self::Signature {
        sk.sign(msg)
    }
    fn derive(weighted: &[(Fr, &Self::Signature)]) -> Self::Signature {
        crate::sdp::sign_derive(weighted)
    }
    fn verify(
        params: &Self::Params,
        pk: &Self::PublicKey,
        msg: &[G1Projective],
        sig: &Self::Signature,
    ) -> bool {
        pk.verify(params, msg, sig)
    }
    fn add_keys(a: &Self::SecretKey, b: &Self::SecretKey) -> Self::SecretKey {
        a.add(b)
    }
}

/// Generic test battery usable with any template instantiation.
#[cfg(test)]
fn exercise_template<S: OneTimeLhsps>(params: &S::Params, seed: u64)
where
    S::Signature: PartialEq + core::fmt::Debug,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = S::keygen(2, &mut rng);
    let pk = S::public_key(params, &sk);
    let msg: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
    let sig = S::sign(&sk, &msg);
    assert!(S::verify(params, &pk, &msg, &sig));

    // Linear homomorphism through the trait.
    let msg2: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
    let sig2 = S::sign(&sk, &msg2);
    let (w1, w2) = (Fr::random(&mut rng), Fr::random(&mut rng));
    let derived = S::derive(&[(w1, &sig), (w2, &sig2)]);
    let combined: Vec<G1Projective> = msg
        .iter()
        .zip(msg2.iter())
        .map(|(a, b)| a.mul(&w1) + b.mul(&w2))
        .collect();
    assert!(S::verify(params, &pk, &combined, &derived));

    // Key homomorphism through the trait.
    let sk2 = S::keygen(2, &mut rng);
    let sum = S::add_keys(&sk, &sk2);
    let sum_pk = S::public_key(params, &sum);
    let s = S::sign(&sum, &msg);
    assert!(S::verify(params, &sum_pk, &msg, &s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dp_instantiation_satisfies_template() {
        let mut rng = StdRng::seed_from_u64(1);
        let params = crate::params::DpParams::random(&mut rng);
        exercise_template::<DpLhsps>(&params, 2);
        assert_eq!(DpLhsps::SIGNATURE_ELEMENTS, 2);
        assert_eq!(DpLhsps::VERIFICATION_EQUATIONS, 1);
    }

    #[test]
    fn sdp_instantiation_satisfies_template() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = crate::params::SdpParams::random(&mut rng);
        exercise_template::<SdpLhsps>(&params, 4);
        assert_eq!(SdpLhsps::SIGNATURE_ELEMENTS, 3);
        assert_eq!(SdpLhsps::VERIFICATION_EQUATIONS, 2);
    }
}
