//! The SDP-based one-time LHSPS with three-element signatures and two
//! verification equations — the primitive behind the DLIN-based threshold
//! scheme of Appendix F.
//!
//! Keys carry three exponent vectors `(χ_k, γ_k, δ_k)`; the public key is
//! `{ĝ_k = ĝ_z^{χ_k} ĝ_r^{γ_k}, ĥ_k = ĥ_z^{χ_k} ĥ_u^{δ_k}}` and a
//! signature on `M⃗` is `(z, r, u) = (Π M_k^{-χ_k}, Π M_k^{-γ_k},
//! Π M_k^{-δ_k})`, checked by the two simultaneous pairing equations.

use crate::params::SdpParams;
use borndist_pairing::{msm, multi_pairing, Fr, G1Affine, G1Projective, G2Affine, G2Projective};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Secret key `{(χ_k, γ_k, δ_k)}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdpSecretKey {
    /// Exponents `χ_k`.
    pub chi: Vec<Fr>,
    /// Exponents `γ_k`.
    pub gamma: Vec<Fr>,
    /// Exponents `δ_k`.
    pub delta: Vec<Fr>,
}

/// Public key `{(ĝ_k, ĥ_k)}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdpPublicKey {
    /// `ĝ_k = ĝ_z^{χ_k} ĝ_r^{γ_k}`.
    pub g_hat: Vec<G2Affine>,
    /// `ĥ_k = ĥ_z^{χ_k} ĥ_u^{δ_k}`.
    pub h_hat: Vec<G2Affine>,
}

/// Signature `(z, r, u) ∈ G³`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdpSignature {
    /// `z` component.
    pub z: G1Affine,
    /// `r` component.
    pub r: G1Affine,
    /// `u` component.
    pub u: G1Affine,
}

impl SdpSecretKey {
    /// Samples a secret key for dimension-`n` message vectors.
    pub fn random<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Self {
        SdpSecretKey {
            chi: (0..n).map(|_| Fr::random(rng)).collect(),
            gamma: (0..n).map(|_| Fr::random(rng)).collect(),
            delta: (0..n).map(|_| Fr::random(rng)).collect(),
        }
    }

    /// The message dimension.
    pub fn dimension(&self) -> usize {
        self.chi.len()
    }

    /// Derives the matching public key.
    pub fn public_key(&self, params: &SdpParams) -> SdpPublicKey {
        let g_pts: Vec<G2Projective> = self
            .chi
            .iter()
            .zip(self.gamma.iter())
            .map(|(c, g)| msm(&[params.g_z, params.g_r], &[*c, *g]))
            .collect();
        let h_pts: Vec<G2Projective> = self
            .chi
            .iter()
            .zip(self.delta.iter())
            .map(|(c, d)| msm(&[params.h_z, params.h_u], &[*c, *d]))
            .collect();
        SdpPublicKey {
            g_hat: G2Projective::batch_to_affine(&g_pts),
            h_hat: G2Projective::batch_to_affine(&h_pts),
        }
    }

    /// Key homomorphism: componentwise sum.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.dimension(), other.dimension(), "dimension mismatch");
        let sum = |a: &[Fr], b: &[Fr]| a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        SdpSecretKey {
            chi: sum(&self.chi, &other.chi),
            gamma: sum(&self.gamma, &other.gamma),
            delta: sum(&self.delta, &other.delta),
        }
    }

    /// Deterministic signing: `(Π M_k^{-χ_k}, Π M_k^{-γ_k}, Π M_k^{-δ_k})`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sign(&self, msg: &[G1Projective]) -> SdpSignature {
        assert_eq!(msg.len(), self.dimension(), "message dimension mismatch");
        let bases = G1Projective::batch_to_affine(msg);
        let neg = |v: &[Fr]| v.iter().map(|x| -*x).collect::<Vec<_>>();
        SdpSignature {
            z: msm(&bases, &neg(&self.chi)).to_affine(),
            r: msm(&bases, &neg(&self.gamma)).to_affine(),
            u: msm(&bases, &neg(&self.delta)).to_affine(),
        }
    }
}

impl SdpPublicKey {
    /// The message dimension.
    pub fn dimension(&self) -> usize {
        self.g_hat.len()
    }

    /// Key homomorphism on the public side.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.dimension(), other.dimension(), "dimension mismatch");
        let comb = |a: &[G2Affine], b: &[G2Affine]| {
            let pts: Vec<G2Projective> = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| x.to_projective().add_affine(y))
                .collect();
            G2Projective::batch_to_affine(&pts)
        };
        SdpPublicKey {
            g_hat: comb(&self.g_hat, &other.g_hat),
            h_hat: comb(&self.h_hat, &other.h_hat),
        }
    }

    /// Verifies both simultaneous pairing equations.
    pub fn verify(&self, params: &SdpParams, msg: &[G1Projective], sig: &SdpSignature) -> bool {
        if msg.len() != self.dimension() {
            return false;
        }
        if msg.iter().all(|m| m.is_identity()) {
            return false;
        }
        let msg_affine = G1Projective::batch_to_affine(msg);
        let mut eq1: Vec<(&G1Affine, &G2Affine)> =
            vec![(&sig.z, &params.g_z), (&sig.r, &params.g_r)];
        for (m, g) in msg_affine.iter().zip(self.g_hat.iter()) {
            eq1.push((m, g));
        }
        if !multi_pairing(&eq1).is_identity() {
            return false;
        }
        let mut eq2: Vec<(&G1Affine, &G2Affine)> =
            vec![(&sig.z, &params.h_z), (&sig.u, &params.h_u)];
        for (m, h) in msg_affine.iter().zip(self.h_hat.iter()) {
            eq2.push((m, h));
        }
        multi_pairing(&eq2).is_identity()
    }
}

/// Public linear derivation of signatures.
pub fn sign_derive(weighted: &[(Fr, &SdpSignature)]) -> SdpSignature {
    let ws: Vec<Fr> = weighted.iter().map(|(w, _)| *w).collect();
    let zs: Vec<G1Affine> = weighted.iter().map(|(_, s)| s.z).collect();
    let rs: Vec<G1Affine> = weighted.iter().map(|(_, s)| s.r).collect();
    let us: Vec<G1Affine> = weighted.iter().map(|(_, s)| s.u).collect();
    SdpSignature {
        z: msm(&zs, &ws).to_affine(),
        r: msm(&rs, &ws).to_affine(),
        u: msm(&us, &ws).to_affine(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5d9)
    }

    fn setup(r: &mut StdRng, n: usize) -> (SdpParams, SdpSecretKey, SdpPublicKey) {
        let params = SdpParams::random(r);
        let sk = SdpSecretKey::random(n, r);
        let pk = sk.public_key(&params);
        (params, sk, pk)
    }

    fn random_msg(r: &mut StdRng, n: usize) -> Vec<G1Projective> {
        (0..n).map(|_| G1Projective::random(r)).collect()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 3);
        let msg = random_msg(&mut r, 3);
        assert!(pk.verify(&params, &msg, &sk.sign(&msg)));
    }

    #[test]
    fn second_equation_actually_checked() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let msg = random_msg(&mut r, 2);
        let mut sig = sk.sign(&msg);
        // Corrupt only `u`: the first equation still passes, the second
        // must catch it.
        sig.u = G1Projective::random(&mut r).to_affine();
        assert!(!pk.verify(&params, &msg, &sig));
    }

    #[test]
    fn linear_and_key_homomorphism() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let m1 = random_msg(&mut r, 2);
        let m2 = random_msg(&mut r, 2);
        let (w1, w2) = (Fr::random(&mut r), Fr::random(&mut r));
        let derived = sign_derive(&[(w1, &sk.sign(&m1)), (w2, &sk.sign(&m2))]);
        let combined: Vec<G1Projective> = m1
            .iter()
            .zip(m2.iter())
            .map(|(a, b)| a.mul(&w1) + b.mul(&w2))
            .collect();
        assert!(pk.verify(&params, &combined, &derived));

        let sk2 = SdpSecretKey::random(2, &mut r);
        let sum = sk.add(&sk2);
        assert_eq!(
            sum.public_key(&params),
            pk.combine(&sk2.public_key(&params))
        );
        assert!(sum.public_key(&params).verify(&params, &m1, &sum.sign(&m1)));
    }

    #[test]
    fn rejects_identity_vector_and_bad_dims() {
        let mut r = rng();
        let (params, sk, pk) = setup(&mut r, 2);
        let id_msg = vec![G1Projective::identity(); 2];
        assert!(!pk.verify(&params, &id_msg, &sk.sign(&id_msg)));
        let msg = random_msg(&mut r, 2);
        let sig = sk.sign(&msg);
        assert!(!pk.verify(&params, &msg[..1], &sig));
    }
}
