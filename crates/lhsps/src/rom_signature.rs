//! Appendix D.1: any one-time LHSPS plus a random oracle yields a fully
//! secure ordinary signature scheme.
//!
//! Messages `M ∈ {0,1}*` are hashed onto a vector `H(M) ∈ G^{K+1}` and
//! signed with the LHSPS key. For the DP-based instantiation we use
//! `K = 1`, i.e. vectors of dimension 2 — this is exactly the
//! *centralized* version of the paper's §3 threshold scheme, and serves
//! as the single-signer baseline in the benchmarks.

use crate::one_time::{OneTimePublicKey, OneTimeSecretKey, OneTimeSignature};
use crate::params::DpParams;
use borndist_pairing::hash_to_g1_vector;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Domain tag for the message random oracle.
const HASH_DST: &[u8] = b"borndist/rom-signature/H";

/// A centralized signer (Appendix D.1 construction, `K = 1`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RomSigner {
    params: DpParams,
    sk: OneTimeSecretKey,
    pk: OneTimePublicKey,
}

/// The public verification side of [`RomSigner`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RomVerifier {
    params: DpParams,
    pk: OneTimePublicKey,
}

impl RomSigner {
    /// Generates a key pair over the given (or derived) parameters.
    pub fn keygen<R: RngCore + ?Sized>(params: DpParams, rng: &mut R) -> Self {
        let sk = OneTimeSecretKey::random(2, rng);
        let pk = sk.public_key(&params);
        RomSigner { params, sk, pk }
    }

    /// Signs an arbitrary byte-string message.
    pub fn sign(&self, msg: &[u8]) -> OneTimeSignature {
        let h = hash_to_g1_vector(HASH_DST, msg, 2);
        self.sk.sign(&h)
    }

    /// The matching verifier.
    pub fn verifier(&self) -> RomVerifier {
        RomVerifier {
            params: self.params,
            pk: self.pk.clone(),
        }
    }
}

impl RomVerifier {
    /// Verifies a signature on `msg`.
    pub fn verify(&self, msg: &[u8], sig: &OneTimeSignature) -> bool {
        let h = hash_to_g1_vector(HASH_DST, msg, 2);
        self.pk.verify(&self.params, &h, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x20ae)
    }

    #[test]
    fn sign_verify() {
        let mut r = rng();
        let signer = RomSigner::keygen(DpParams::derive(b"test"), &mut r);
        let v = signer.verifier();
        let sig = signer.sign(b"hello world");
        assert!(v.verify(b"hello world", &sig));
        assert!(!v.verify(b"hello worle", &sig));
    }

    #[test]
    fn signatures_do_not_transfer_between_keys() {
        let mut r = rng();
        let params = DpParams::derive(b"test");
        let s1 = RomSigner::keygen(params, &mut r);
        let s2 = RomSigner::keygen(params, &mut r);
        let sig = s1.sign(b"msg");
        assert!(!s2.verifier().verify(b"msg", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let mut r = rng();
        let signer = RomSigner::keygen(DpParams::derive(b"test"), &mut r);
        assert_eq!(signer.sign(b"m"), signer.sign(b"m"));
    }

    #[test]
    fn empty_and_long_messages() {
        let mut r = rng();
        let signer = RomSigner::keygen(DpParams::derive(b"test"), &mut r);
        let v = signer.verifier();
        assert!(v.verify(b"", &signer.sign(b"")));
        let long = vec![0xabu8; 10_000];
        assert!(v.verify(&long, &signer.sign(&long)));
    }
}
