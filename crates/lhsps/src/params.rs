//! Shared public parameters for the LHSPS instantiations.
//!
//! No party may know the discrete logs relating the generators, so the
//! canonical constructors derive them from a random oracle
//! (`hash_to_g2` with fixed domain tags), exactly as the paper suggests
//! ("it can simply be derived from a random oracle", §3.1).

use borndist_pairing::{hash_to_g2, G2Affine, G2Prepared};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Parameters of the Double-Pairing-based scheme: `(ĝ_z, ĝ_r) ∈ Ĝ²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpParams {
    /// First generator `ĝ_z`.
    pub g_z: G2Affine,
    /// Second generator `ĝ_r`.
    pub g_r: G2Affine,
}

/// The generator pair with its optimal-ate Miller line coefficients
/// precomputed ([`G2Prepared`]): `(ĝ_z, ĝ_r)` appear on the `Ĝ` side of
/// *every* verification equation in the workspace, so schemes build this
/// once at setup and every verification skips their `Fp2` point
/// arithmetic entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedDpParams {
    /// Prepared `ĝ_z`.
    pub g_z: G2Prepared,
    /// Prepared `ĝ_r`.
    pub g_r: G2Prepared,
}

impl DpParams {
    /// Precomputes the pairing line coefficients of both generators.
    pub fn prepare(&self) -> PreparedDpParams {
        PreparedDpParams {
            g_z: G2Prepared::new(&self.g_z),
            g_r: G2Prepared::new(&self.g_r),
        }
    }
    /// Derives parameters from a protocol tag via the random oracle.
    pub fn derive(tag: &[u8]) -> Self {
        let mut t1 = tag.to_vec();
        t1.extend_from_slice(b"/g_z");
        let mut t2 = tag.to_vec();
        t2.extend_from_slice(b"/g_r");
        DpParams {
            g_z: hash_to_g2(b"borndist/dp-params", &t1).to_affine(),
            g_r: hash_to_g2(b"borndist/dp-params", &t2).to_affine(),
        }
    }

    /// Samples random parameters (tests and simulations).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        DpParams {
            g_z: borndist_pairing::G2Projective::random(rng).to_affine(),
            g_r: borndist_pairing::G2Projective::random(rng).to_affine(),
        }
    }
}

/// Parameters of the Simultaneous-Double-Pairing-based scheme
/// (Appendix F): `(ĝ_z, ĝ_r, ĥ_z, ĥ_u) ∈ Ĝ⁴`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdpParams {
    /// `ĝ_z`.
    pub g_z: G2Affine,
    /// `ĝ_r`.
    pub g_r: G2Affine,
    /// `ĥ_z`.
    pub h_z: G2Affine,
    /// `ĥ_u`.
    pub h_u: G2Affine,
}

impl SdpParams {
    /// Derives parameters from a protocol tag via the random oracle.
    pub fn derive(tag: &[u8]) -> Self {
        let gen = |suffix: &[u8]| {
            let mut t = tag.to_vec();
            t.extend_from_slice(suffix);
            hash_to_g2(b"borndist/sdp-params", &t).to_affine()
        };
        SdpParams {
            g_z: gen(b"/g_z"),
            g_r: gen(b"/g_r"),
            h_z: gen(b"/h_z"),
            h_u: gen(b"/h_u"),
        }
    }

    /// Samples random parameters (tests and simulations).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        SdpParams {
            g_z: borndist_pairing::G2Projective::random(rng).to_affine(),
            g_r: borndist_pairing::G2Projective::random(rng).to_affine(),
            h_z: borndist_pairing::G2Projective::random(rng).to_affine(),
            h_u: borndist_pairing::G2Projective::random(rng).to_affine(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a = DpParams::derive(b"tag1");
        let b = DpParams::derive(b"tag1");
        let c = DpParams::derive(b"tag2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.g_z, a.g_r);
        assert!(!a.g_z.is_identity());
    }

    #[test]
    fn sdp_generators_pairwise_distinct() {
        let p = SdpParams::derive(b"tag");
        let gens = [p.g_z, p.g_r, p.h_z, p.h_u];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(gens[i], gens[j]);
            }
        }
    }
}
