//! Property-based tests of the LHSPS primitive: the two homomorphisms
//! (over messages and over keys) that the entire paper rests on, checked
//! with random dimensions, weights, and derivation depths.

use borndist_lhsps::{one_time, sdp, DpParams, OneTimeSecretKey, SdpParams, SdpSecretKey};
use borndist_pairing::{Fr, G1Projective};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary linear combinations of signed vectors verify under the
    /// derived signature, for any dimension 1..=4 and 2..=4 terms.
    #[test]
    fn dp_derivation_closed_under_linear_spans(
        seed in any::<u64>(),
        dim in 1usize..5,
        terms in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpParams::random(&mut rng);
        let sk = OneTimeSecretKey::random(dim, &mut rng);
        let pk = sk.public_key(&params);

        let msgs: Vec<Vec<G1Projective>> = (0..terms)
            .map(|_| (0..dim).map(|_| G1Projective::random(&mut rng)).collect())
            .collect();
        let sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
        let weights: Vec<Fr> = (0..terms).map(|_| Fr::random(&mut rng)).collect();

        let weighted: Vec<(Fr, &one_time::OneTimeSignature)> =
            weights.iter().copied().zip(sigs.iter()).collect();
        let derived = one_time::sign_derive(&weighted);

        let mut combined = vec![G1Projective::identity(); dim];
        for (w, m) in weights.iter().zip(msgs.iter()) {
            for (acc, point) in combined.iter_mut().zip(m.iter()) {
                *acc += point.mul(w);
            }
        }
        prop_assert!(pk.verify(&params, &combined, &derived));
    }

    /// Derivation composes: deriving from derived signatures equals
    /// deriving with composed weights.
    #[test]
    fn dp_derivation_composes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpParams::random(&mut rng);
        let sk = OneTimeSecretKey::random(2, &mut rng);
        let pk = sk.public_key(&params);
        let m1: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let m2: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let (s1, s2) = (sk.sign(&m1), sk.sign(&m2));
        let (a, b, c) = (Fr::random(&mut rng), Fr::random(&mut rng), Fr::random(&mut rng));
        // d1 = a·s1 + b·s2; d2 = c·d1 should equal (ca)·s1 + (cb)·s2.
        let d1 = one_time::sign_derive(&[(a, &s1), (b, &s2)]);
        let d2 = one_time::sign_derive(&[(c, &d1)]);
        let direct = one_time::sign_derive(&[(c * a, &s1), (c * b, &s2)]);
        prop_assert_eq!(d2, direct);
        // And it verifies on the composed message.
        let combined: Vec<G1Projective> = m1.iter().zip(m2.iter())
            .map(|(x, y)| x.mul(&(c * a)) + y.mul(&(c * b)))
            .collect();
        prop_assert!(pk.verify(&params, &combined, &d2));
    }

    /// Key homomorphism extends to arbitrary sums of keys — the exact
    /// property that makes DKG-born keys sign correctly.
    #[test]
    fn dp_key_sums_sign_like_joint_keys(seed in any::<u64>(), parties in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpParams::random(&mut rng);
        let keys: Vec<OneTimeSecretKey> =
            (0..parties).map(|_| OneTimeSecretKey::random(2, &mut rng)).collect();
        let msg: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();

        // Product of per-party signatures...
        let mut z = G1Projective::identity();
        let mut r = G1Projective::identity();
        for k in &keys {
            let s = k.sign(&msg);
            z += s.z.to_projective();
            r += s.r.to_projective();
        }
        // ...equals the signature under the summed key.
        let joint = keys.iter().skip(1).fold(keys[0].clone(), |acc, k| acc.add(k));
        let joint_sig = joint.sign(&msg);
        prop_assert_eq!(joint_sig.z.to_projective(), z);
        prop_assert_eq!(joint_sig.r.to_projective(), r);
        // And verifies under the combined public key.
        let joint_pk = joint.public_key(&params);
        prop_assert!(joint_pk.verify(&params, &msg, &joint_sig));
    }

    /// The SDP variant satisfies the same two homomorphisms.
    #[test]
    fn sdp_homomorphisms(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SdpParams::random(&mut rng);
        let sk1 = SdpSecretKey::random(3, &mut rng);
        let sk2 = SdpSecretKey::random(3, &mut rng);
        let msg: Vec<G1Projective> = (0..3).map(|_| G1Projective::random(&mut rng)).collect();
        let (w1, w2) = (Fr::random(&mut rng), Fr::random(&mut rng));

        // Linear homomorphism.
        let m2: Vec<G1Projective> = (0..3).map(|_| G1Projective::random(&mut rng)).collect();
        let derived = sdp::sign_derive(&[(w1, &sk1.sign(&msg)), (w2, &sk1.sign(&m2))]);
        let combined: Vec<G1Projective> = msg.iter().zip(m2.iter())
            .map(|(a, b)| a.mul(&w1) + b.mul(&w2))
            .collect();
        prop_assert!(sk1.public_key(&params).verify(&params, &combined, &derived));

        // Key homomorphism.
        let sum = sk1.add(&sk2);
        prop_assert!(sum.public_key(&params).verify(&params, &msg, &sum.sign(&msg)));
    }

    /// Unforgeability smoke property: signatures never verify on vectors
    /// outside the signed span (tested with an independent random vector).
    #[test]
    fn signatures_bound_to_their_span(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpParams::random(&mut rng);
        let sk = OneTimeSecretKey::random(2, &mut rng);
        let pk = sk.public_key(&params);
        let msg: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        let sig = sk.sign(&msg);
        let other: Vec<G1Projective> = (0..2).map(|_| G1Projective::random(&mut rng)).collect();
        prop_assert!(!pk.verify(&params, &other, &sig));
    }
}
