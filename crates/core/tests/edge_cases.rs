//! Edge-case and boundary tests across the core schemes: degenerate
//! parameters, message extremes, serialization, cross-scheme isolation,
//! and combiner misuse.

use borndist_core::aggregate::AggregateScheme;
use borndist_core::ro::{PartialSignature, ThresholdScheme};
use borndist_core::standard::StandardScheme;
use borndist_core::{CombineError, DlinScheme};
use borndist_shamir::ThresholdParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

#[test]
fn one_of_one_threshold() {
    // t = 0, n = 1: a degenerate but legal instance — a single server
    // whose partial signature is the full signature.
    let params = ThresholdParams::new(0, 1).unwrap();
    let scheme = ThresholdScheme::new(b"edge-1of1");
    let mut rng = StdRng::seed_from_u64(1);
    let km = scheme.dealer_keygen(params, &mut rng);
    let p = scheme.share_sign(&km.shares[&1], b"solo");
    let sig = scheme.combine(&params, &[p]).unwrap();
    assert!(scheme.verify(&km.public_key, b"solo", &sig));
}

#[test]
fn n_of_n_threshold() {
    // t = n-1: every server must participate.
    let params = ThresholdParams::new(3, 4).unwrap();
    let scheme = ThresholdScheme::new(b"edge-nofn");
    let mut rng = StdRng::seed_from_u64(2);
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"all hands";
    let partials: Vec<PartialSignature> = (1..=4u32)
        .map(|i| scheme.share_sign(&km.shares[&i], msg))
        .collect();
    assert!(matches!(
        scheme.combine(&params, &partials[..3]),
        Err(CombineError::NotEnoughShares { .. })
    ));
    let sig = scheme.combine(&params, &partials).unwrap();
    assert!(scheme.verify(&km.public_key, msg, &sig));
}

#[test]
fn message_extremes() {
    let params = ThresholdParams::new(1, 3).unwrap();
    let scheme = ThresholdScheme::new(b"edge-msg");
    let mut rng = StdRng::seed_from_u64(3);
    let km = scheme.dealer_keygen(params, &mut rng);
    for msg in [
        b"".to_vec(),
        vec![0u8],
        vec![0xff; 1],
        vec![0x41; 100_000],
        (0..=255u8).collect::<Vec<u8>>(),
    ] {
        let partials: Vec<PartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], &msg))
            .collect();
        let sig = scheme.combine(&params, &partials).unwrap();
        assert!(
            scheme.verify(&km.public_key, &msg, &sig),
            "len={}",
            msg.len()
        );
    }
}

#[test]
fn near_collision_messages_are_distinguished() {
    let params = ThresholdParams::new(1, 3).unwrap();
    let scheme = ThresholdScheme::new(b"edge-collide");
    let mut rng = StdRng::seed_from_u64(4);
    let km = scheme.dealer_keygen(params, &mut rng);
    let sign = |msg: &[u8]| {
        let partials: Vec<PartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        scheme.combine(&params, &partials).unwrap()
    };
    let sig = sign(b"message");
    assert!(scheme.verify(&km.public_key, b"message", &sig));
    // One-bit and boundary-shift variants must all fail.
    assert!(!scheme.verify(&km.public_key, b"messagf", &sig));
    assert!(!scheme.verify(&km.public_key, b"message ", &sig));
    assert!(!scheme.verify(&km.public_key, b"essage", &sig));
    assert!(!scheme.verify(&km.public_key, b"", &sig));
}

#[test]
fn scheme_contexts_are_domain_separated() {
    // Same dealer polynomials, different protocol tags: signatures do
    // not transfer because the generators and hash domains differ.
    let params = ThresholdParams::new(1, 3).unwrap();
    let s1 = ThresholdScheme::new(b"ctx-one");
    let s2 = ThresholdScheme::new(b"ctx-two");
    let mut rng = StdRng::seed_from_u64(5);
    let km1 = s1.dealer_keygen(params, &mut rng);
    let msg = b"context binding";
    let partials: Vec<PartialSignature> = (1..=2u32)
        .map(|i| s1.share_sign(&km1.shares[&i], msg))
        .collect();
    let sig = s1.combine(&params, &partials).unwrap();
    assert!(s1.verify(&km1.public_key, msg, &sig));
    // Verifying the same bytes under the other context fails.
    assert!(!s2.verify(&km1.public_key, msg, &sig));
}

#[test]
fn partial_signatures_do_not_cross_schemes() {
    // A DLIN partial cannot masquerade as two-thirds of an RO partial
    // etc. — simply by type safety; here we check the weaker runtime
    // property that RO signatures never verify under mismatched keys
    // from an independently generated committee.
    let params = ThresholdParams::new(1, 3).unwrap();
    let scheme = ThresholdScheme::new(b"iso");
    let mut rng = StdRng::seed_from_u64(6);
    let km_a = scheme.dealer_keygen(params, &mut rng);
    let km_b = scheme.dealer_keygen(params, &mut rng);
    let msg = b"which committee?";
    let p = scheme.share_sign(&km_a.shares[&1], msg);
    assert!(scheme.share_verify(&km_a.verification_keys[&1], msg, &p));
    assert!(!scheme.share_verify(&km_b.verification_keys[&1], msg, &p));
}

#[test]
fn dlin_scheme_edge_parameters() {
    let scheme = DlinScheme::new(b"edge-dlin");
    let mut rng = StdRng::seed_from_u64(7);
    // 1-of-1.
    let params = ThresholdParams::new(0, 1).unwrap();
    let km = scheme.dealer_keygen(params, &mut rng);
    let p = scheme.share_sign(&km.shares[&1], b"m");
    let sig = scheme.combine(&params, &[p]).unwrap();
    assert!(scheme.verify(&km.public_key, b"m", &sig));
    // Empty message.
    let p2 = scheme.share_sign(&km.shares[&1], b"");
    let sig2 = scheme.combine(&params, &[p2]).unwrap();
    assert!(scheme.verify(&km.public_key, b"", &sig2));
}

#[test]
fn standard_scheme_distinguishes_digest_prefixes() {
    // The §4 scheme hashes messages to 256 bits before bit-selecting the
    // CRS; two distinct messages use different CRSs and cross-fail.
    let params = ThresholdParams::new(1, 3).unwrap();
    let scheme = StandardScheme::new(b"edge-std");
    let mut rng = StdRng::seed_from_u64(8);
    let km = scheme.dealer_keygen(params, &mut rng);
    let partials: Vec<_> = (1..=2u32)
        .map(|i| scheme.share_sign(&km.shares[&i], b"alpha", &mut rng))
        .collect();
    let sig = scheme
        .combine(&params, b"alpha", &partials, &mut rng)
        .unwrap();
    assert!(scheme.verify(&km.public_key, b"alpha", &sig));
    assert!(!scheme.verify(&km.public_key, b"beta", &sig));
    // Partial signatures are also message-bound.
    assert!(!scheme.share_verify(&km.verification_keys[&1], b"beta", &partials[0]));
}

#[test]
fn aggregate_scheme_rejects_foreign_keys() {
    // A key from a *different* aggregate context fails the sanity check
    // under this context (different (g, h) generators).
    let s1 = AggregateScheme::new(b"agg-ctx-1");
    let s2 = AggregateScheme::new(b"agg-ctx-2");
    let params = ThresholdParams::new(1, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let (pk1, _) = s1.dealer_keygen(params, &mut rng);
    assert!(s1.key_valid(&pk1));
    assert!(!s2.key_valid(&pk1));
}

#[test]
fn serde_roundtrip_of_all_public_artifacts() {
    let params = ThresholdParams::new(1, 3).unwrap();
    let scheme = ThresholdScheme::new(b"serde-all");
    let mut rng = StdRng::seed_from_u64(10);
    let km = scheme.dealer_keygen(params, &mut rng);
    let msg = b"serialize me";
    let p = scheme.share_sign(&km.shares[&1], msg);
    let sig = scheme
        .combine(&params, &[p, scheme.share_sign(&km.shares[&2], msg)])
        .unwrap();

    macro_rules! roundtrip {
        ($v:expr, $t:ty) => {{
            let enc = serde_json::to_string($v).unwrap();
            let dec: $t = serde_json::from_str(&enc).unwrap();
            assert_eq!(&dec, $v);
        }};
    }
    roundtrip!(&km.public_key, borndist_core::PublicKey);
    roundtrip!(&km.shares[&1], borndist_core::KeyShare);
    roundtrip!(&km.verification_keys[&1], borndist_core::VerificationKey);
    roundtrip!(&p, PartialSignature);
    roundtrip!(&sig, borndist_core::Signature);

    // Deserialized artifacts remain functional.
    let enc = serde_json::to_string(&sig).unwrap();
    let dec: borndist_core::Signature = serde_json::from_str(&enc).unwrap();
    assert!(scheme.verify(&km.public_key, msg, &dec));
}

#[test]
fn dkg_behaviors_map_for_unknown_players_is_ignored() {
    // Behaviors keyed by nonexistent ids have no effect.
    let params = ThresholdParams::new(1, 4).unwrap();
    let scheme = ThresholdScheme::new(b"edge-behav");
    let mut behaviors = BTreeMap::new();
    behaviors.insert(
        99u32,
        borndist_dkg::Behavior {
            refuse_answers: true,
            ..Default::default()
        },
    );
    let (km, metrics) = scheme
        .keygen_session(
            params,
            &behaviors,
            11,
            &borndist_net::TransportKind::Lockstep,
        )
        .unwrap();
    assert_eq!(metrics.active_rounds, 1);
    assert_eq!(km.qualified.len(), 4);
}
