//! # borndist-core
//!
//! The paper's contributions, end to end — *Born and Raised
//! Distributively: Fully Distributed Non-Interactive Adaptively-Secure
//! Threshold Signatures with Short Shares* (Libert–Joye–Yung, PODC 2014):
//!
//! * [`ro`] — the main §3 scheme (random-oracle model): Pedersen-DKG-born
//!   keys, 4-scalar shares, 2-element signatures, non-interactive signing,
//!   4-pairing verification;
//! * [`aggregate`] — the Appendix G extension with unrestricted signature
//!   aggregation and self-certifying public keys;
//! * [`dlin`] — the Appendix F variant under the (weaker) DLIN assumption,
//!   with 3-element signatures and two verification equations;
//! * [`standard`] — the §4 standard-model scheme over Groth–Sahai proofs;
//! * [`proactive`] — §3.3 proactive epochs (refresh + share recovery);
//! * [`batch`] — small-exponent randomized batch verification: `k`
//!   signatures (or `k` signature shares during `Combine`) checked with
//!   one shared multi-pairing instead of `4k` pairings (DESIGN.md §2);
//! * [`netsign`] — threshold signing as a network protocol: partial
//!   signatures crossing a real transport as encoded frames, with
//!   retransmission under lossy delivery policies (DESIGN.md §2 "Wire
//!   format & transports");
//! * [`gateway`] — the amortized verification front door: independent
//!   verify requests buffered per epoch and answered with one randomized
//!   multi-pairing, with bisection on poisoned buffers (DESIGN.md §2
//!   "Aggregation gateway & load harness").
//!
//! ## Quickstart
//!
//! ```rust
//! use borndist_core::ro::ThresholdScheme;
//! use borndist_net::TransportKind;
//! use borndist_shamir::ThresholdParams;
//! use std::collections::BTreeMap;
//!
//! // 4 servers, tolerating t = 1 corruption; key born distributed.
//! let scheme = ThresholdScheme::new(b"my-deployment");
//! let (km, _) = scheme
//!     .keygen_session(
//!         ThresholdParams::new(1, 4).unwrap(),
//!         &BTreeMap::new(),
//!         7,
//!         &TransportKind::Lockstep,
//!     )
//!     .unwrap();
//! // Two servers independently produce partial signatures (no talking).
//! let p1 = scheme.share_sign(&km.shares[&1], b"hello");
//! let p3 = scheme.share_sign(&km.shares[&3], b"hello");
//! // Anyone combines and verifies.
//! let sig = scheme.combine(&km.params, &[p1, p3]).unwrap();
//! assert!(scheme.verify(&km.public_key, b"hello", &sig));
//! ```

pub mod aggregate;
pub mod batch;
pub mod dlin;
pub mod gateway;
pub mod netsign;
pub mod proactive;
pub mod ro;
pub mod standard;

pub use aggregate::{AggPublicKey, AggregateError, AggregateScheme, AggregateSignature};
pub use dlin::{
    DlinKeyMaterial, DlinKeyShare, DlinPartialSignature, DlinPublicKey, DlinScheme, DlinSignature,
    DlinVerificationKey,
};
pub use gateway::{AggregationGateway, GatewayConfig, GatewayStats, Verdict, VerifyRequest};
pub use netsign::{
    run_mux_sign, run_threshold_sign, MuxCoordinator, MuxMessage, MuxOutcome, MuxSignerPlayer,
    SignMessage, SigningPlayer,
};
pub use proactive::{ProactiveDeployment, ProactiveError};
pub use ro::{
    CombineError, DistKeygenError, KeyMaterial, KeyShare, PartialSignature, PreparedPublicKey,
    PreparedVerificationKey, PublicKey, Signature, ThresholdScheme, VerificationKey,
};
pub use standard::{
    StandardScheme, StdKeyMaterial, StdKeyShare, StdPartialSignature, StdPublicKey, StdSignature,
    StdVerificationKey,
};
