//! The paper's main construction (§3): a fully distributed,
//! non-interactive, robust, adaptively secure threshold signature in the
//! random-oracle model.
//!
//! The scheme *is* the one-time LHSPS of §2.3 with its key secret-shared:
//!
//! * a player's key share `SK_i = {(A_k(i), B_k(i))}_{k=1,2}` is itself an
//!   LHSPS secret key of dimension 2 ([`borndist_lhsps::OneTimeSecretKey`]);
//! * its verification key `V K_i` is the matching LHSPS *public* key;
//! * the global public key `(ĝ_1, ĝ_2)` is the LHSPS public key of the
//!   (never materialized) joint secret — key homomorphism in action;
//! * `Share-Sign` = LHSPS `Sign` on the hashed message `H(M) ∈ G²`;
//! * `Combine` = LHSPS `SignDerive` with Lagrange weights `Δ_{i,S}(0)`;
//! * both `Share-Verify` and `Verify` are the LHSPS verification equation
//!   (a product of four pairings).
//!
//! Signing is non-interactive: a server needs only its 4-scalar share and
//! the message. Shares are `O(1)` size regardless of `n` (experiment E4).

use borndist_dkg::{dkg_session, Behavior, DkgAbort, DkgConfig, DkgOutput, SharingMode};
use borndist_lhsps::{
    sign_derive, DpParams, OneTimePublicKey, OneTimeSecretKey, OneTimeSignature, PreparedDpParams,
    PreparedOneTimePublicKey,
};
use borndist_net::{Metrics, TransportKind};
use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{hash_to_g1_vector, hash_to_g2, Fr, G1Projective, G2Affine};
use borndist_shamir::{
    LagrangeCache, PedersenBases, PedersenCommitment, Polynomial, ThresholdParams,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The threshold signature scheme context: public parameters
/// `params = ((G, Ĝ, G_T), ĝ_z, ĝ_r, H)` of §3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThresholdScheme {
    params: DpParams,
    /// Prepared forms of `(ĝ_z, ĝ_r)` — every verification equation of
    /// the scheme pairs against them, so their Miller line coefficients
    /// are cached once at scheme construction (ISSUE 3).
    prepared: PreparedDpParams,
    hash_dst: Vec<u8>,
    /// Memoized `Combine` coefficients per qualified signer set — at
    /// committee scale the signer set stabilizes and every signature
    /// reuses the same `O(k²)` coefficient vector (always compares
    /// equal, so the derived `PartialEq` above stays meaningful).
    lagrange: LagrangeCache,
}

/// The public key `PK = (params, (ĝ_1, ĝ_2))`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// `(ĝ_1, ĝ_2)`.
    pub coords: [G2Affine; 2],
}

/// A server's private key share — four scalars, `O(1)` in `n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyShare {
    /// The server index `i`.
    pub index: u32,
    /// `{(A_k(i), B_k(i))}` packed as an LHSPS key
    /// (`chi = (A_1(i), A_2(i))`, `gamma = (B_1(i), B_2(i))`).
    pub sk: OneTimeSecretKey,
}

/// A server's public verification key `V K_i = (V̂_{1,i}, V̂_{2,i})`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationKey {
    /// The server index `i`.
    pub index: u32,
    /// The LHSPS public key matching [`KeyShare::sk`].
    pub pk: OneTimePublicKey,
}

/// A verification key with its pairing line coefficients precomputed —
/// built at keygen/refresh time ([`KeyMaterial::prepared_vks`]) so the
/// `Share-Verify` hot path pairs every `Ĝ`-side element through cached
/// coefficients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedVerificationKey {
    /// The server index `i`.
    pub index: u32,
    /// The prepared LHSPS public key.
    pub pk: PreparedOneTimePublicKey,
}

impl VerificationKey {
    /// Precomputes the pairing line coefficients of both coordinates.
    pub fn prepare(&self) -> PreparedVerificationKey {
        PreparedVerificationKey {
            index: self.index,
            pk: self.pk.prepare(),
        }
    }
}

/// The joint public key with prepared coordinates, for verifiers that
/// check many signatures under one key: all four `Ĝ`-side elements of
/// `Verify` then pair through cached line coefficients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedPublicKey {
    /// The plain public key.
    pub key: PublicKey,
    /// Prepared `(ĝ_1, ĝ_2)` packed as a prepared LHSPS key.
    pub pk: PreparedOneTimePublicKey,
}

impl PublicKey {
    /// Precomputes the pairing line coefficients of `(ĝ_1, ĝ_2)`.
    pub fn prepare(&self) -> PreparedPublicKey {
        let pk = OneTimePublicKey {
            g_hat: self.coords.to_vec(),
        };
        PreparedPublicKey {
            key: self.clone(),
            pk: pk.prepare(),
        }
    }
}

/// A partial signature `σ_i = (z_i, r_i) ∈ G²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSignature {
    /// Producing server index.
    pub index: u32,
    /// The share signature.
    pub sig: OneTimeSignature,
}

/// A combined full signature `σ = (z, r) ∈ G²` (768 bits compressed on
/// BLS12-381; 512 bits on the paper's BN254 instantiation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// The signature pair.
    pub sig: OneTimeSignature,
}

impl Wire for PublicKey {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.coords[0].encode_to(out);
        self.coords[1].encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(PublicKey {
            coords: [G2Affine::decode(input)?, G2Affine::decode(input)?],
        })
    }
}

impl Wire for KeyShare {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.index.encode_to(out);
        self.sk.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(KeyShare {
            index: u32::decode(input)?,
            sk: OneTimeSecretKey::decode(input)?,
        })
    }
}

impl Wire for VerificationKey {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.index.encode_to(out);
        self.pk.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(VerificationKey {
            index: u32::decode(input)?,
            pk: OneTimePublicKey::decode(input)?,
        })
    }
}

impl Wire for PartialSignature {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.index.encode_to(out);
        self.sig.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(PartialSignature {
            index: u32::decode(input)?,
            sig: OneTimeSignature::decode(input)?,
        })
    }
}

impl Wire for Signature {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.sig.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Signature {
            sig: OneTimeSignature::decode(input)?,
        })
    }
}

/// Everything produced by key generation.
#[derive(Clone, Debug)]
pub struct KeyMaterial {
    /// Threshold parameters used.
    pub params: ThresholdParams,
    /// The joint public key.
    pub public_key: PublicKey,
    /// Per-player secret shares (in a real deployment each server holds
    /// only its own entry; the map exists because we simulate all of them
    /// in-process).
    pub shares: BTreeMap<u32, KeyShare>,
    /// Verification keys for all players `1..=n`.
    pub verification_keys: BTreeMap<u32, VerificationKey>,
    /// Prepared forms of the verification keys, index-aligned with
    /// [`Self::verification_keys`] — cached at keygen (and rebuilt on
    /// proactive refresh) for the prepared robust-combine paths
    /// ([`ThresholdScheme::combine_verified_prepared`],
    /// [`ThresholdScheme::combine_batch_verified_prepared`],
    /// [`ThresholdScheme::share_verify_prepared`]), which verify shares
    /// against fully prepared pairing arguments.
    pub prepared_vks: BTreeMap<u32, PreparedVerificationKey>,
    /// Qualified dealer set from the DKG (all players for dealer keygen).
    pub qualified: BTreeSet<u32>,
    /// Combined Pedersen commitments (needed for proactive refresh and
    /// share recovery).
    pub commitments: Vec<PedersenCommitment>,
}

/// Errors from `Combine`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineError {
    /// Fewer than `t+1` partial signatures were supplied.
    NotEnoughShares {
        /// Shares supplied.
        have: usize,
        /// Shares required.
        need: usize,
    },
    /// Share indices contain duplicates or zero.
    BadIndices,
    /// `combine_verified` could not find `t+1` valid partial signatures.
    NotEnoughValidShares {
        /// Valid shares found.
        valid: usize,
        /// Shares required.
        need: usize,
    },
}

impl core::fmt::Display for CombineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CombineError::NotEnoughShares { have, need } => {
                write!(f, "need {} partial signatures, got {}", need, have)
            }
            CombineError::BadIndices => f.write_str("duplicate or zero share indices"),
            CombineError::NotEnoughValidShares { valid, need } => {
                write!(f, "only {} valid partial signatures, need {}", valid, need)
            }
        }
    }
}
impl std::error::Error for CombineError {}

impl ThresholdScheme {
    /// Sets up the scheme context from a protocol tag. Both generators
    /// and the message hash are derived from random oracles, so there is
    /// no trusted parameter generation.
    pub fn new(tag: &[u8]) -> Self {
        let mut t = tag.to_vec();
        t.extend_from_slice(b"/ro-scheme");
        let params = DpParams {
            g_z: hash_to_g2(b"borndist/ro/g_z", &t).to_affine(),
            g_r: hash_to_g2(b"borndist/ro/g_r", &t).to_affine(),
        };
        ThresholdScheme {
            prepared: params.prepare(),
            params,
            hash_dst: t,
            lagrange: LagrangeCache::new(),
        }
    }

    /// Builds a scheme context over existing parameters (used by the
    /// aggregate extension, which shares the generator pair).
    pub(crate) fn with_params(params: DpParams, hash_dst: Vec<u8>) -> Self {
        ThresholdScheme {
            prepared: params.prepare(),
            params,
            hash_dst,
            lagrange: LagrangeCache::new(),
        }
    }

    /// The scheme's `Combine`-coefficient cache (shared across clones).
    pub fn lagrange_cache(&self) -> &LagrangeCache {
        &self.lagrange
    }

    /// The underlying generator pair `(ĝ_z, ĝ_r)`.
    pub fn dp_params(&self) -> &DpParams {
        &self.params
    }

    /// The prepared generator pair (cached Miller line coefficients).
    pub fn prepared_dp(&self) -> &PreparedDpParams {
        &self.prepared
    }

    /// The generators viewed as Pedersen VSS bases (used by the DKG).
    pub fn pedersen_bases(&self) -> PedersenBases {
        PedersenBases {
            g_z: self.params.g_z,
            g_r: self.params.g_r,
        }
    }

    /// The random oracle `H : {0,1}* → G²`.
    pub fn hash_message(&self, msg: &[u8]) -> Vec<G1Projective> {
        hash_to_g1_vector(&self.hash_dst, msg, 2)
    }

    /// `Dist-Keygen` (§3.1): runs Pedersen's DKG over the simulated
    /// network — one active round in the optimistic case — and assembles
    /// the key material. `behaviors` injects Byzantine faults for testing.
    ///
    /// # Errors
    ///
    /// Returns the per-player abort if any *honest-configured* player
    /// failed (which the protocol guarantees not to happen under an
    /// honest majority).
    pub fn keygen_session(
        &self,
        params: ThresholdParams,
        behaviors: &BTreeMap<u32, Behavior>,
        seed: u64,
        transport: &TransportKind,
    ) -> Result<(KeyMaterial, Metrics), DistKeygenError> {
        let cfg = self.dkg_config(params);
        let (outputs, metrics) =
            dkg_session(&cfg, behaviors, seed, transport).map_err(DistKeygenError::Network)?;
        let material = self.assemble(params, &outputs, behaviors)?;
        Ok((material, metrics))
    }

    /// The DKG configuration this scheme's `Dist-Keygen` runs (width-2
    /// fresh sharing over the scheme's Pedersen bases) — what a
    /// distributed deployment hands to [`borndist_dkg::dkg_players`]
    /// when each player drives its own transport.
    pub fn dkg_config(&self, params: ThresholdParams) -> DkgConfig {
        DkgConfig {
            params,
            bases: self.pedersen_bases(),
            width: 2,
            mode: SharingMode::Fresh,
            aggregate: None,
            checks: Default::default(),
        }
    }

    /// Assembles [`KeyMaterial`] from a *single* player's DKG output —
    /// the distributed-deployment path, where no process ever sees
    /// another player's share. The result carries only this player's
    /// [`KeyShare`]; the public parts (public key, verification keys,
    /// qualified set, commitments) are complete, since every honest
    /// player's output agrees on them.
    pub fn key_material_from_output(
        &self,
        params: ThresholdParams,
        id: u32,
        output: &DkgOutput,
    ) -> KeyMaterial {
        let outputs: BTreeMap<u32, Result<DkgOutput, DkgAbort>> =
            [(id, Ok(output.clone()))].into_iter().collect();
        self.assemble(params, &outputs, &BTreeMap::new())
            .expect("a concrete DKG output always assembles")
    }

    /// Maps DKG outputs into scheme key material.
    pub(crate) fn assemble(
        &self,
        params: ThresholdParams,
        outputs: &BTreeMap<u32, Result<DkgOutput, DkgAbort>>,
        behaviors: &BTreeMap<u32, Behavior>,
    ) -> Result<KeyMaterial, DistKeygenError> {
        // Any honest player's output describes the public state.
        let reference = outputs
            .iter()
            .filter(|(id, _)| behaviors.get(id).is_none_or(Behavior::is_honest))
            .find_map(|(_, o)| o.as_ref().ok())
            .ok_or(DistKeygenError::NoHonestOutput)?;
        let coords = reference.public_key_coordinates();
        let public_key = PublicKey {
            coords: [coords[0], coords[1]],
        };
        let mut shares = BTreeMap::new();
        for (id, out) in outputs {
            if let Ok(o) = out {
                shares.insert(
                    *id,
                    KeyShare {
                        index: *id,
                        sk: OneTimeSecretKey {
                            chi: vec![o.share[0].0, o.share[1].0],
                            gamma: vec![o.share[0].1, o.share[1].1],
                        },
                    },
                );
            }
        }
        let verification_keys: BTreeMap<u32, VerificationKey> = (1..=params.n as u32)
            .map(|i| {
                let vk = reference.verification_key(i);
                (
                    i,
                    VerificationKey {
                        index: i,
                        pk: OneTimePublicKey {
                            g_hat: vec![vk[0], vk[1]],
                        },
                    },
                )
            })
            .collect();
        let prepared_vks = prepare_verification_keys(&verification_keys);
        Ok(KeyMaterial {
            params,
            public_key,
            shares,
            verification_keys,
            prepared_vks,
            qualified: reference.qualified.clone(),
            commitments: reference.combined_commitments.clone(),
        })
    }

    /// Trusted-dealer key generation — not part of the paper's model
    /// (the key should be *born* distributed) but useful to isolate
    /// signing-path benchmarks and tests from the DKG.
    pub fn dealer_keygen<R: RngCore + ?Sized>(
        &self,
        params: ThresholdParams,
        rng: &mut R,
    ) -> KeyMaterial {
        // Master LHSPS key and its public key.
        let master = OneTimeSecretKey::random(2, rng);
        let public_key = PublicKey {
            coords: {
                let pk = master.public_key(&self.params);
                [pk.g_hat[0], pk.g_hat[1]]
            },
        };
        // Share each of the four scalars with a degree-t polynomial.
        let polys: Vec<Polynomial> = [
            master.chi[0],
            master.chi[1],
            master.gamma[0],
            master.gamma[1],
        ]
        .iter()
        .map(|s| Polynomial::random_with_constant(*s, params.t, rng))
        .collect();
        let bases = self.pedersen_bases();
        // Commitments for refresh/recovery compatibility: per k,
        // commit (A_k, B_k) coefficient-wise.
        let commitments: Vec<PedersenCommitment> = (0..2)
            .map(|k| {
                let sharing = borndist_shamir::PedersenSharing::from_polynomials(
                    &bases,
                    polys[k].clone(),
                    polys[k + 2].clone(),
                );
                sharing.commitment
            })
            .collect();
        let mut shares = BTreeMap::new();
        let mut verification_keys = BTreeMap::new();
        for i in 1..=params.n as u32 {
            let sk = OneTimeSecretKey {
                chi: vec![polys[0].evaluate_at_index(i), polys[1].evaluate_at_index(i)],
                gamma: vec![polys[2].evaluate_at_index(i), polys[3].evaluate_at_index(i)],
            };
            verification_keys.insert(
                i,
                VerificationKey {
                    index: i,
                    pk: sk.public_key(&self.params),
                },
            );
            shares.insert(i, KeyShare { index: i, sk });
        }
        let prepared_vks = prepare_verification_keys(&verification_keys);
        KeyMaterial {
            params,
            public_key,
            shares,
            verification_keys,
            prepared_vks,
            qualified: (1..=params.n as u32).collect(),
            commitments,
        }
    }

    /// `Share-Sign`: one non-interactive partial signature — two
    /// 2-base multi-exponentiations plus two hash-on-curve operations
    /// (the §3.1 cost claim, experiment E2).
    pub fn share_sign(&self, share: &KeyShare, msg: &[u8]) -> PartialSignature {
        let h = self.hash_message(msg);
        PartialSignature {
            index: share.index,
            sig: share.sk.sign(&h),
        }
    }

    /// `Share-Verify`: checks `σ_i` against `V K_i` — a product of four
    /// pairings, two of them against the scheme's prepared generators.
    pub fn share_verify(&self, vk: &VerificationKey, msg: &[u8], psig: &PartialSignature) -> bool {
        if vk.index != psig.index {
            return false;
        }
        let h = self.hash_message(msg);
        vk.pk.verify_prepared(&self.prepared, &h, &psig.sig)
    }

    /// [`Self::share_verify`] against a prepared verification key
    /// ([`KeyMaterial::prepared_vks`]): all four `Ĝ`-side pairing
    /// arguments replay cached line coefficients.
    pub fn share_verify_prepared(
        &self,
        vk: &PreparedVerificationKey,
        msg: &[u8],
        psig: &PartialSignature,
    ) -> bool {
        if vk.index != psig.index {
            return false;
        }
        let h = self.hash_message(msg);
        vk.pk.verify(&self.prepared, &h, &psig.sig)
    }

    /// `Combine`: Lagrange interpolation in the exponent over any
    /// `≥ t+1` partial signatures (assumed valid; see
    /// [`Self::combine_verified`] for the robust variant).
    ///
    /// # Errors
    ///
    /// Fails on insufficient shares or bad index sets. Invalid partial
    /// signatures are *not* detected here.
    pub fn combine(
        &self,
        params: &ThresholdParams,
        partials: &[PartialSignature],
    ) -> Result<Signature, CombineError> {
        if partials.len() < params.reconstruction_size() {
            return Err(CombineError::NotEnoughShares {
                have: partials.len(),
                need: params.reconstruction_size(),
            });
        }
        let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
        let coeffs = self
            .lagrange
            .at_zero(&indices)
            .map_err(|_| CombineError::BadIndices)?;
        let weighted: Vec<(Fr, &OneTimeSignature)> = coeffs
            .iter()
            .copied()
            .zip(partials.iter().map(|p| &p.sig))
            .collect();
        Ok(Signature {
            sig: sign_derive(&weighted),
        })
    }

    /// [`Self::combine`] with the interpolation MSM split into shards of
    /// `shard_size` partials, derived in parallel and summed exactly in
    /// the group — bit-identical output to [`Self::combine`] (group
    /// addition is associative), but at `n = 1024` the combiner can fan
    /// the work across cores instead of one serial Pippenger call.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::combine`].
    pub fn combine_sharded(
        &self,
        params: &ThresholdParams,
        partials: &[PartialSignature],
        shard_size: usize,
    ) -> Result<Signature, CombineError> {
        if shard_size == 0 || partials.len() <= shard_size {
            return self.combine(params, partials);
        }
        if partials.len() < params.reconstruction_size() {
            return Err(CombineError::NotEnoughShares {
                have: partials.len(),
                need: params.reconstruction_size(),
            });
        }
        let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
        let coeffs = self
            .lagrange
            .at_zero(&indices)
            .map_err(|_| CombineError::BadIndices)?;
        let shards: Vec<(usize, usize)> = (0..partials.len())
            .step_by(shard_size)
            .map(|start| (start, (start + shard_size).min(partials.len())))
            .collect();
        let parts = borndist_parallel::par_map(&shards, |&(lo, hi)| {
            let weighted: Vec<(Fr, &OneTimeSignature)> = coeffs[lo..hi]
                .iter()
                .copied()
                .zip(partials[lo..hi].iter().map(|p| &p.sig))
                .collect();
            sign_derive(&weighted)
        });
        let mut z = G1Projective::identity();
        let mut r = G1Projective::identity();
        for part in &parts {
            z = z.add_affine(&part.z);
            r = r.add_affine(&part.r);
        }
        Ok(Signature {
            sig: OneTimeSignature {
                z: z.to_affine(),
                r: r.to_affine(),
            },
        })
    }

    /// Robust combine: filters partial signatures through `Share-Verify`
    /// first, then combines the first `t+1` valid ones. This is the whole
    /// robustness story of the scheme — no restart, no extra round, no
    /// state at the combiner (experiment E3).
    pub fn combine_verified(
        &self,
        params: &ThresholdParams,
        vks: &BTreeMap<u32, VerificationKey>,
        msg: &[u8],
        partials: &[PartialSignature],
    ) -> Result<Signature, CombineError> {
        let valid: Vec<PartialSignature> = partials
            .iter()
            .filter(|p| {
                vks.get(&p.index)
                    .map(|vk| self.share_verify(vk, msg, p))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        let need = params.reconstruction_size();
        if valid.len() < need {
            return Err(CombineError::NotEnoughValidShares {
                valid: valid.len(),
                need,
            });
        }
        self.combine(params, &valid[..need])
    }

    /// [`Self::combine_verified`] against the prepared verification keys
    /// cached in [`KeyMaterial::prepared_vks`]: the per-share filter runs
    /// [`Self::share_verify_prepared`], so every `Ĝ`-side pairing
    /// argument replays cached line coefficients.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::combine_verified`].
    pub fn combine_verified_prepared(
        &self,
        params: &ThresholdParams,
        vks: &BTreeMap<u32, PreparedVerificationKey>,
        msg: &[u8],
        partials: &[PartialSignature],
    ) -> Result<Signature, CombineError> {
        let valid: Vec<PartialSignature> = partials
            .iter()
            .filter(|p| {
                vks.get(&p.index)
                    .map(|vk| self.share_verify_prepared(vk, msg, p))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        let need = params.reconstruction_size();
        if valid.len() < need {
            return Err(CombineError::NotEnoughValidShares {
                valid: valid.len(),
                need,
            });
        }
        self.combine(params, &valid[..need])
    }

    /// `Verify`: the four-pairing check
    /// `e(z, ĝ_z)·e(r, ĝ_r)·e(H_1, ĝ_1)·e(H_2, ĝ_2) = 1` (the generator
    /// slots pair through the scheme's prepared coefficients).
    pub fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let h = self.hash_message(msg);
        let lhsps_pk = OneTimePublicKey {
            g_hat: pk.coords.to_vec(),
        };
        lhsps_pk.verify_prepared(&self.prepared, &h, &sig.sig)
    }

    /// [`Self::verify`] against a prepared public key
    /// ([`PublicKey::prepare`]): all four `Ĝ`-side elements replay cached
    /// line coefficients — the hot path for verifiers that check many
    /// signatures under one long-lived key.
    pub fn verify_prepared(&self, pk: &PreparedPublicKey, msg: &[u8], sig: &Signature) -> bool {
        let h = self.hash_message(msg);
        pk.pk.verify(&self.prepared, &h, &sig.sig)
    }
}

/// Prepares every verification key in a map (used at keygen and refresh).
pub(crate) fn prepare_verification_keys(
    vks: &BTreeMap<u32, VerificationKey>,
) -> BTreeMap<u32, PreparedVerificationKey> {
    vks.iter().map(|(i, vk)| (*i, vk.prepare())).collect()
}

/// Errors from distributed key generation.
#[derive(Debug)]
pub enum DistKeygenError {
    /// The network run failed (any transport, any layer — see
    /// [`borndist_net::Error`]).
    Network(borndist_net::Error),
    /// No honest player produced an output.
    NoHonestOutput,
}

impl core::fmt::Display for DistKeygenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistKeygenError::Network(e) => write!(f, "network failure: {}", e),
            DistKeygenError::NoHonestOutput => f.write_str("no honest player finished the DKG"),
        }
    }
}
impl std::error::Error for DistKeygenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistKeygenError::Network(e) => Some(e),
            DistKeygenError::NoHonestOutput => None,
        }
    }
}

impl From<borndist_net::Error> for DistKeygenError {
    fn from(e: borndist_net::Error) -> Self {
        DistKeygenError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x105)
    }

    fn dealer_setup(t: usize, n: usize) -> (ThresholdScheme, KeyMaterial) {
        let scheme = ThresholdScheme::new(b"ro-tests");
        let mut r = rng();
        let km = scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut r);
        (scheme, km)
    }

    #[test]
    fn dealer_keygen_sign_combine_verify() {
        let (scheme, km) = dealer_setup(2, 5);
        let msg = b"attack at dawn";
        let partials: Vec<PartialSignature> = (1..=3u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        assert!(!scheme.verify(&km.public_key, b"attack at dusk", &sig));
    }

    #[test]
    fn any_quorum_gives_same_signature() {
        // Determinism + uniqueness: every t+1 subset combines to the SAME
        // signature (the scheme is signature-unique under DP).
        let (scheme, km) = dealer_setup(2, 7);
        let msg = b"deterministic";
        let partials: BTreeMap<u32, PartialSignature> = (1..=7u32)
            .map(|i| (i, scheme.share_sign(&km.shares[&i], msg)))
            .collect();
        let quorums: [[u32; 3]; 3] = [[1, 2, 3], [4, 5, 6], [2, 5, 7]];
        let sigs: Vec<Signature> = quorums
            .iter()
            .map(|q| {
                let ps: Vec<_> = q.iter().map(|i| partials[i]).collect();
                scheme.combine(&km.params, &ps).unwrap()
            })
            .collect();
        assert_eq!(sigs[0], sigs[1]);
        assert_eq!(sigs[1], sigs[2]);
        assert!(scheme.verify(&km.public_key, msg, &sigs[0]));
    }

    #[test]
    fn share_verify_accepts_honest_rejects_corrupt() {
        let (scheme, km) = dealer_setup(2, 5);
        let msg = b"m";
        for i in 1..=5u32 {
            let p = scheme.share_sign(&km.shares[&i], msg);
            assert!(scheme.share_verify(&km.verification_keys[&i], msg, &p));
            // Wrong index.
            assert!(!scheme.share_verify(&km.verification_keys[&(i % 5 + 1)], msg, &p));
        }
        let mut bad = scheme.share_sign(&km.shares[&1], msg);
        bad.sig.z = bad.sig.r;
        assert!(!scheme.share_verify(&km.verification_keys[&1], msg, &bad));
    }

    #[test]
    fn t_shares_are_insufficient() {
        let (scheme, km) = dealer_setup(2, 5);
        let msg = b"below threshold";
        let partials: Vec<PartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        assert_eq!(
            scheme.combine(&km.params, &partials),
            Err(CombineError::NotEnoughShares { have: 2, need: 3 })
        );
    }

    #[test]
    fn more_than_quorum_also_works() {
        let (scheme, km) = dealer_setup(1, 4);
        let msg = b"overfull";
        let partials: Vec<PartialSignature> = (1..=4u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn combine_verified_filters_garbage() {
        let (scheme, km) = dealer_setup(2, 5);
        let msg = b"robust";
        let mut partials: Vec<PartialSignature> = (1..=5u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        // Corrupt two of the five partials.
        partials[0].sig.z = partials[1].sig.z;
        partials[3].sig.r = partials[1].sig.r;
        let sig = scheme
            .combine_verified(&km.params, &km.verification_keys, msg, &partials)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        // With three corrupted, only 2 valid remain -> failure.
        partials[2].sig.z = partials[1].sig.z;
        assert_eq!(
            scheme.combine_verified(&km.params, &km.verification_keys, msg, &partials),
            Err(CombineError::NotEnoughValidShares { valid: 2, need: 3 })
        );
    }

    #[test]
    fn dist_keygen_end_to_end() {
        let scheme = ThresholdScheme::new(b"ro-dkg-e2e");
        let (km, metrics) = scheme
            .keygen_session(
                ThresholdParams::new(1, 4).unwrap(),
                &BTreeMap::new(),
                5,
                &borndist_net::TransportKind::Lockstep,
            )
            .unwrap();
        assert_eq!(metrics.active_rounds, 1);
        let msg = b"born distributed";
        let partials: Vec<PartialSignature> = [1u32, 3]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg))
            .collect();
        for p in &partials {
            assert!(scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        }
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn dist_keygen_with_byzantine_dealer() {
        let scheme = ThresholdScheme::new(b"ro-dkg-byz");
        let mut behaviors = BTreeMap::new();
        behaviors.insert(
            2u32,
            Behavior {
                corrupt_shares_to: [3u32].into_iter().collect(),
                refuse_answers: true,
                ..Default::default()
            },
        );
        let (km, _) = scheme
            .keygen_session(
                ThresholdParams::new(1, 4).unwrap(),
                &behaviors,
                6,
                &borndist_net::TransportKind::Lockstep,
            )
            .unwrap();
        // Dealer 2 disqualified; signing still works with any 2 players.
        assert!(!km.qualified.contains(&2));
        let msg = b"still works";
        let partials: Vec<PartialSignature> = [1u32, 4]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn prepared_paths_agree_with_plain_verification() {
        let (scheme, km) = dealer_setup(2, 5);
        let msg = b"prepared";
        // Keygen populated the prepared keys, index-aligned.
        assert_eq!(km.prepared_vks.len(), km.verification_keys.len());
        for (i, vk) in &km.verification_keys {
            assert_eq!(km.prepared_vks[i].pk.key, vk.pk);
        }
        let partials: Vec<PartialSignature> = (1..=5u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        for p in &partials {
            let plain = scheme.share_verify(&km.verification_keys[&p.index], msg, p);
            let fast = scheme.share_verify_prepared(&km.prepared_vks[&p.index], msg, p);
            assert!(plain && fast);
            // Index mismatch rejected by both.
            let other = &km.prepared_vks[&(p.index % 5 + 1)];
            assert!(!scheme.share_verify_prepared(other, msg, p));
        }
        // Corrupt partial rejected by both paths.
        let mut bad = partials[0];
        bad.sig.z = bad.sig.r;
        assert!(!scheme.share_verify(&km.verification_keys[&1], msg, &bad));
        assert!(!scheme.share_verify_prepared(&km.prepared_vks[&1], msg, &bad));
        // Full verification through the prepared public key.
        let sig = scheme.combine(&km.params, &partials[..3]).unwrap();
        let pk_prep = km.public_key.prepare();
        assert_eq!(pk_prep.key, km.public_key);
        assert!(scheme.verify(&km.public_key, msg, &sig));
        assert!(scheme.verify_prepared(&pk_prep, msg, &sig));
        assert!(!scheme.verify_prepared(&pk_prep, b"other message", &sig));
    }

    #[test]
    fn signature_sizes() {
        // E1: signatures are 2 G1 elements = 96 bytes compressed.
        let (scheme, km) = dealer_setup(1, 3);
        let p = scheme.share_sign(&km.shares[&1], b"m");
        let bytes = p.sig.z.to_compressed().len() + p.sig.r.to_compressed().len();
        assert_eq!(bytes, 96);
    }

    #[test]
    fn serde_roundtrips() {
        let (scheme, km) = dealer_setup(1, 3);
        let msg = b"serde";
        let p = scheme.share_sign(&km.shares[&1], msg);
        let enc = serde_json::to_string(&p).unwrap();
        let dec: PartialSignature = serde_json::from_str(&enc).unwrap();
        assert_eq!(dec, p);
        let enc_pk = serde_json::to_string(&km.public_key).unwrap();
        let dec_pk: PublicKey = serde_json::from_str(&enc_pk).unwrap();
        assert_eq!(dec_pk, km.public_key);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ThresholdScheme, KeyMaterial, StdRng) {
        let scheme = ThresholdScheme::new(b"batch-tests");
        let mut r = StdRng::seed_from_u64(0xba7c);
        let km = scheme.dealer_keygen(ThresholdParams::new(2, 6).unwrap(), &mut r);
        (scheme, km, r)
    }

    #[test]
    fn batch_accepts_all_valid() {
        let (scheme, km, mut r) = setup();
        let msg = b"batch me";
        let partials: Vec<PartialSignature> = (1..=6u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        assert!(scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r));
        // Empty batch is vacuously true.
        assert!(scheme.batch_share_verify(&km.verification_keys, msg, &[], &mut r));
    }

    #[test]
    fn batch_rejects_any_single_corruption() {
        let (scheme, km, mut r) = setup();
        let msg = b"batch me";
        for victim in 0..3usize {
            let mut partials: Vec<PartialSignature> = (1..=6u32)
                .map(|i| scheme.share_sign(&km.shares[&i], msg))
                .collect();
            partials[victim].sig.z = partials[(victim + 1) % 6].sig.z;
            assert!(
                !scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r),
                "corruption at {} slipped through",
                victim
            );
        }
    }

    #[test]
    fn batch_rejects_cancellation_attempts() {
        // Two partials corrupted in "opposite" directions must not cancel
        // (the random weights prevent it).
        let (scheme, km, mut r) = setup();
        let msg = b"no cancelling";
        let mut partials: Vec<PartialSignature> = (1..=6u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        let delta = G1Projective::generator();
        partials[0].sig.z = (partials[0].sig.z.to_projective() + delta).to_affine();
        partials[1].sig.z = (partials[1].sig.z.to_projective() - delta).to_affine();
        assert!(!scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r));
    }

    #[test]
    fn batch_rejects_unknown_or_mismatched_index() {
        let (scheme, km, mut r) = setup();
        let msg = b"who are you";
        let mut p = scheme.share_sign(&km.shares[&1], msg);
        p.index = 99;
        assert!(!scheme.batch_share_verify(&km.verification_keys, msg, &[p], &mut r));
    }

    #[test]
    fn batch_agrees_with_individual_verification() {
        let (scheme, km, mut r) = setup();
        let msg = b"consistency";
        let partials: Vec<PartialSignature> = (1..=4u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        let individual_ok = partials
            .iter()
            .all(|p| scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        let batch_ok = scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r);
        assert_eq!(individual_ok, batch_ok);
    }
}
