//! The aggregation/verification gateway — sustained-throughput front
//! door for [`AggregateScheme`] traffic (DESIGN.md §2 "Aggregation
//! gateway & load harness").
//!
//! Clients submit independent `(public key, message, signature)` triples
//! ([`VerifyRequest`]); the gateway buffers them *per epoch* and answers
//! a whole buffer with **one amortized randomized multi-pairing**: the
//! `k` signature equations draw fresh random weights `ρᵢ`, the
//! Appendix G key-validity equations of the not-yet-validated keys draw
//! weights `σ_d`, and everything folds into a single product of
//! `2d + 2` pairings (`d` = distinct keys in the buffer — same-key
//! pairing slots collapse, exactly as in
//! [`AggregateScheme::aggregate_verify_batched`]):
//!
//! ```text
//! e(Σρᵢzᵢ + Σσ_d Z_d, ĝ_z)·e(Σρᵢrᵢ + Σσ_d R_d, ĝ_r)
//!   ·Π_d e(Σ_{i∈d} ρᵢH₁ᵢ + σ_d g, ĝ₁_d)·e(Σ_{i∈d} ρᵢH₂ᵢ + σ_d h, ĝ₂_d) = 1
//! ```
//!
//! Every `Ĝ`-side element is *prepared*: the generator columns at scheme
//! construction, the key coordinates through a bounded
//! [`G2Prepared`] cache keyed by [`AggPublicKey::fingerprint`] — so a
//! steady-state flush runs zero on-the-fly Miller line computations.
//! Key validity itself is cached: once a key's equation passed (inside a
//! batch or individually), later buffers skip its `σ_d` terms.
//!
//! **Flush policy**: a buffer is answered when it reaches
//! [`GatewayConfig::max_batch`] requests (size trigger), when its oldest
//! request has waited [`GatewayConfig::max_delay`] (deadline trigger,
//! driven by [`AggregationGateway::poll`]), when a request for a *new*
//! epoch arrives (epoch boundary — buffers never fold across epochs),
//! or on an explicit [`AggregationGateway::flush_all`].
//!
//! **Poisoned batches**: when the folded product rejects, the gateway
//! bisects — re-checking each half with its own fresh-weight folded
//! product, down to per-item [`AggregateScheme::verify`] at the leaves —
//! so every honest request in a poisoned buffer is still accepted and
//! every forgery is pinpointed, at `O(f·log k)` extra products for `f`
//! forgeries. Verdicts are bit-identical at every thread count: the
//! weight draws depend only on submission order, never on the
//! parallel schedule (`tests/gateway.rs` enforces this).
//!
//! The hashing fan-out, MSM window accumulation, and the closing Miller
//! loop all shard across [`borndist_parallel`] threads.

use crate::aggregate::{AggPublicKey, AggregateScheme};
use crate::ro::Signature;
use borndist_pairing::{msm, multi_pairing_prepared, Fr, G1Affine, G1Projective, G2Prepared};
use borndist_parallel::par_map;
use rand::RngCore;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Flush policy and cache sizing for the gateway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Size trigger: flush an epoch's buffer when it holds this many
    /// requests.
    pub max_batch: usize,
    /// Deadline trigger: flush a buffer once its oldest request has
    /// waited this long (checked by [`AggregationGateway::poll`]).
    pub max_delay: Duration,
    /// Bound on the prepared-key cache (entries are evicted in insertion
    /// order once the bound is reached; an evicted key is re-prepared
    /// and re-validated on next sight).
    pub max_cached_keys: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            max_cached_keys: 1024,
        }
    }
}

/// One verification request submitted to the gateway.
#[derive(Clone, Debug)]
pub struct VerifyRequest {
    /// Client-chosen request id, echoed in the [`Verdict`].
    pub id: u64,
    /// Proactive epoch this signature belongs to. Buffers never fold
    /// across epochs.
    pub epoch: u64,
    /// The (self-certifying) public key.
    pub pk: AggPublicKey,
    /// The signed message.
    pub msg: Vec<u8>,
    /// The signature to verify.
    pub sig: Signature,
}

/// The gateway's answer to one [`VerifyRequest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// The request id this answers.
    pub id: u64,
    /// The request's epoch.
    pub epoch: u64,
    /// `true` iff the signature verifies under its (valid) key.
    pub valid: bool,
}

/// Counters describing the gateway's amortization behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests answered `valid`.
    pub accepted: u64,
    /// Requests answered invalid.
    pub rejected: u64,
    /// Buffer flushes by trigger.
    pub size_flushes: u64,
    /// Deadline-triggered flushes.
    pub deadline_flushes: u64,
    /// Epoch-boundary flushes.
    pub epoch_flushes: u64,
    /// Explicit [`AggregationGateway::flush_all`] flushes.
    pub forced_flushes: u64,
    /// Folded multi-pairing products evaluated (the amortization
    /// witness: in the all-honest steady state this grows once per
    /// flush, not once per request).
    pub multi_pairings: u64,
    /// Bisection splits performed on rejecting batches.
    pub bisections: u64,
    /// Per-item leaf checks reached during bisection.
    pub leaf_checks: u64,
    /// Prepared-key cache hits.
    pub prepared_hits: u64,
    /// Prepared-key cache misses (Miller line computations paid).
    pub prepared_misses: u64,
}

/// Cached per-key state: prepared coordinates plus the key-validity
/// memo.
struct CachedKey {
    prepared: [G2Prepared; 2],
    validated: bool,
}

struct EpochBuffer {
    items: Vec<VerifyRequest>,
    oldest: Instant,
}

/// The verification gateway. See the [module docs](self) for the
/// batching equation and flush policy.
pub struct AggregationGateway<R: RngCore> {
    scheme: AggregateScheme,
    config: GatewayConfig,
    rng: R,
    buffers: BTreeMap<u64, EpochBuffer>,
    keys: BTreeMap<Vec<u8>, CachedKey>,
    key_order: VecDeque<Vec<u8>>,
    stats: GatewayStats,
}

impl<R: RngCore> AggregationGateway<R> {
    /// Builds a gateway over `scheme` with the given flush policy. The
    /// RNG drives the batching weights; verdicts for a fixed submission
    /// sequence are deterministic in it.
    pub fn new(scheme: AggregateScheme, config: GatewayConfig, rng: R) -> Self {
        assert!(config.max_batch >= 1, "batch bound must be positive");
        assert!(config.max_cached_keys >= 1, "key cache must be positive");
        AggregationGateway {
            scheme,
            config,
            rng,
            buffers: BTreeMap::new(),
            keys: BTreeMap::new(),
            key_order: VecDeque::new(),
            stats: GatewayStats::default(),
        }
    }

    /// The gateway's amortization counters.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// The underlying scheme context.
    pub fn scheme(&self) -> &AggregateScheme {
        &self.scheme
    }

    /// Number of requests currently buffered (all epochs).
    pub fn buffered(&self) -> usize {
        self.buffers.values().map(|b| b.items.len()).sum()
    }

    /// The earliest deadline among the open buffers, if any — what a
    /// serving thread should sleep until before calling [`Self::poll`].
    pub fn next_deadline(&self) -> Option<Instant> {
        self.buffers
            .values()
            .map(|b| b.oldest + self.config.max_delay)
            .min()
    }

    /// Submits a request, stamping its arrival now. Returns the verdicts
    /// of any buffer this submission flushed (size or epoch-boundary
    /// trigger) — usually empty.
    pub fn submit(&mut self, req: VerifyRequest) -> Vec<Verdict> {
        self.submit_at(req, Instant::now())
    }

    /// [`Self::submit`] with an explicit arrival stamp (deterministic
    /// tests drive the clock themselves).
    pub fn submit_at(&mut self, req: VerifyRequest, now: Instant) -> Vec<Verdict> {
        self.stats.submitted += 1;
        let mut verdicts = Vec::new();
        // Epoch boundary: the first request of an unseen epoch flushes
        // every other epoch's buffer — buffers never fold across epochs,
        // and a superseded epoch's stragglers are answered immediately
        // instead of lingering until their deadline.
        if !self.buffers.contains_key(&req.epoch) && !self.buffers.is_empty() {
            let others: Vec<u64> = self.buffers.keys().copied().collect();
            for epoch in others {
                self.stats.epoch_flushes += 1;
                verdicts.extend(self.flush_epoch(epoch));
            }
        }
        let epoch = req.epoch;
        let buf = self.buffers.entry(epoch).or_insert(EpochBuffer {
            items: Vec::new(),
            oldest: now,
        });
        if buf.items.is_empty() {
            buf.oldest = now;
        }
        buf.items.push(req);
        if buf.items.len() >= self.config.max_batch {
            self.stats.size_flushes += 1;
            verdicts.extend(self.flush_epoch(epoch));
        }
        verdicts
    }

    /// Deadline sweep: flushes every buffer whose oldest request has
    /// waited at least [`GatewayConfig::max_delay`]. A serving loop
    /// calls this between submissions (see
    /// [`Self::next_deadline`]).
    pub fn poll(&mut self) -> Vec<Verdict> {
        self.poll_at(Instant::now())
    }

    /// [`Self::poll`] against an explicit clock.
    pub fn poll_at(&mut self, now: Instant) -> Vec<Verdict> {
        let due: Vec<u64> = self
            .buffers
            .iter()
            .filter(|(_, b)| now.duration_since(b.oldest) >= self.config.max_delay)
            .map(|(e, _)| *e)
            .collect();
        let mut verdicts = Vec::new();
        for epoch in due {
            self.stats.deadline_flushes += 1;
            verdicts.extend(self.flush_epoch(epoch));
        }
        verdicts
    }

    /// Flushes everything still buffered (shutdown path).
    pub fn flush_all(&mut self) -> Vec<Verdict> {
        let epochs: Vec<u64> = self.buffers.keys().copied().collect();
        let mut verdicts = Vec::new();
        for epoch in epochs {
            self.stats.forced_flushes += 1;
            verdicts.extend(self.flush_epoch(epoch));
        }
        verdicts
    }

    /// Answers one epoch's buffer: hash fan-out, one folded product,
    /// bisection only on rejection.
    fn flush_epoch(&mut self, epoch: u64) -> Vec<Verdict> {
        let Some(buf) = self.buffers.remove(&epoch) else {
            return Vec::new();
        };
        let items = buf.items;
        if items.is_empty() {
            return Vec::new();
        }
        // Hash-to-curve dominates per-request cost — fan it out across
        // threads once; bisection reuses the same hash points.
        let scheme = &self.scheme;
        let hashes: Vec<[G1Projective; 2]> = par_map(&items, |it| {
            let h = scheme.hash_message(&it.pk, &it.msg);
            [h[0], h[1]]
        });
        let idxs: Vec<usize> = (0..items.len()).collect();
        let mut verdict_of: BTreeMap<usize, bool> = BTreeMap::new();
        self.resolve(&items, &hashes, &idxs, &mut verdict_of);
        items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let valid = verdict_of[&i];
                if valid {
                    self.stats.accepted += 1;
                } else {
                    self.stats.rejected += 1;
                }
                Verdict {
                    id: it.id,
                    epoch,
                    valid,
                }
            })
            .collect()
    }

    /// Optimistic check + bisection: accept the whole range on one
    /// product, otherwise split; singletons fall back to the per-item
    /// slow path (which re-checks key validity by itself).
    fn resolve(
        &mut self,
        items: &[VerifyRequest],
        hashes: &[[G1Projective; 2]],
        idxs: &[usize],
        out: &mut BTreeMap<usize, bool>,
    ) {
        if idxs.is_empty() {
            return;
        }
        if idxs.len() == 1 {
            let it = &items[idxs[0]];
            self.stats.leaf_checks += 1;
            let valid = self.scheme.verify(&it.pk, &it.msg, &it.sig);
            if valid {
                self.mark_validated(&it.pk);
            }
            out.insert(idxs[0], valid);
            return;
        }
        if self.batch_holds(items, hashes, idxs) {
            for &i in idxs {
                self.mark_validated(&items[i].pk);
                out.insert(i, true);
            }
            return;
        }
        self.stats.bisections += 1;
        let (lo, hi) = idxs.split_at(idxs.len() / 2);
        self.resolve(items, hashes, lo, out);
        self.resolve(items, hashes, hi, out);
    }

    /// Evaluates the folded product over `idxs` with fresh weights.
    fn batch_holds(
        &mut self,
        items: &[VerifyRequest],
        hashes: &[[G1Projective; 2]],
        idxs: &[usize],
    ) -> bool {
        self.stats.multi_pairings += 1;
        // Dense-index the distinct keys in range order; remember which
        // still need their validity equation folded in.
        let mut group_of: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        let mut distinct: Vec<&AggPublicKey> = Vec::new();
        let mut needs_validity: Vec<bool> = Vec::new();
        let mut item_group: Vec<usize> = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let pk = &items[i].pk;
            let fp = pk.fingerprint();
            let next = distinct.len();
            let d = *group_of.entry(fp.clone()).or_insert_with(|| {
                distinct.push(pk);
                needs_validity.push(!self.ensure_cached(pk, fp));
                next
            });
            item_group.push(d);
        }
        // Weights: ρᵢ per signature equation, σ_d per un-validated key
        // equation. Drawn in submission order — independent of thread
        // count.
        let rho: Vec<Fr> = idxs
            .iter()
            .map(|_| Fr::random_nonzero(&mut self.rng))
            .collect();
        let sigma: Vec<Option<Fr>> = needs_validity
            .iter()
            .map(|need| need.then(|| Fr::random_nonzero(&mut self.rng)))
            .collect();
        // Generator columns: one MSM each over the weighted signature
        // halves plus the weighted witnesses of the new keys.
        let mut z_bases: Vec<G1Affine> = Vec::with_capacity(idxs.len() + distinct.len());
        let mut r_bases: Vec<G1Affine> = Vec::with_capacity(idxs.len() + distinct.len());
        let mut col_weights: Vec<Fr> = Vec::with_capacity(idxs.len() + distinct.len());
        for (&i, w) in idxs.iter().zip(rho.iter()) {
            z_bases.push(items[i].sig.sig.z);
            r_bases.push(items[i].sig.sig.r);
            col_weights.push(*w);
        }
        for (pk, s) in distinct.iter().zip(sigma.iter()) {
            if let Some(s) = s {
                z_bases.push(pk.z);
                r_bases.push(pk.r);
                col_weights.push(*s);
            }
        }
        // Per-key slots: Σ ρᵢ·Hᵢ collapsed over the key's requests, plus
        // σ_d·g / σ_d·h from the fixed-base tables when the key's
        // validity rides along.
        let (g_table, h_table) = self.scheme.base_tables();
        let mut slots: Vec<[G1Projective; 2]> = sigma
            .iter()
            .map(|s| match s {
                Some(s) => [g_table.mul(s), h_table.mul(s)],
                None => [G1Projective::identity(), G1Projective::identity()],
            })
            .collect();
        for ((&i, d), w) in idxs.iter().zip(item_group.iter()).zip(rho.iter()) {
            let h = &hashes[i];
            slots[*d][0] += h[0].mul(w);
            slots[*d][1] += h[1].mul(w);
        }
        let mut points: Vec<G1Projective> = Vec::with_capacity(2 + 2 * distinct.len());
        points.push(msm(&z_bases, &col_weights));
        points.push(msm(&r_bases, &col_weights));
        for pair in slots {
            points.extend(pair);
        }
        let points = G1Projective::batch_to_affine(&points);
        // Every Ĝ-side element is prepared: generators at scheme build,
        // key coordinates through the cache.
        let prep = self.scheme.prepared_dp();
        let mut pairs: Vec<(&G1Affine, &G2Prepared)> = Vec::with_capacity(2 + 2 * distinct.len());
        pairs.push((&points[0], &prep.g_z));
        pairs.push((&points[1], &prep.g_r));
        for (pk, slot) in distinct.iter().zip(points[2..].chunks(2)) {
            let cached = &self.keys[&pk.fingerprint()];
            pairs.push((&slot[0], &cached.prepared[0]));
            pairs.push((&slot[1], &cached.prepared[1]));
        }
        multi_pairing_prepared(&pairs).is_identity()
    }

    /// Ensures `pk` has a prepared-cache entry; returns whether its
    /// validity is already known (memoized from an earlier accepting
    /// batch or leaf check).
    fn ensure_cached(&mut self, pk: &AggPublicKey, fp: Vec<u8>) -> bool {
        if let Some(entry) = self.keys.get(&fp) {
            self.stats.prepared_hits += 1;
            return entry.validated;
        }
        self.stats.prepared_misses += 1;
        while self.keys.len() >= self.config.max_cached_keys {
            let Some(oldest) = self.key_order.pop_front() else {
                break;
            };
            self.keys.remove(&oldest);
        }
        self.keys.insert(
            fp.clone(),
            CachedKey {
                prepared: [
                    G2Prepared::new(&pk.coords[0]),
                    G2Prepared::new(&pk.coords[1]),
                ],
                validated: false,
            },
        );
        self.key_order.push_back(fp);
        false
    }

    /// Memoizes a successful validity check.
    fn mark_validated(&mut self, pk: &AggPublicKey) {
        if let Some(entry) = self.keys.get_mut(&pk.fingerprint()) {
            entry.validated = true;
        }
    }
}
