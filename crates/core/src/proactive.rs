//! Proactive security for the §3 scheme (§3.3): periodic share refresh
//! against *mobile* adversaries, plus recovery of lost shares.
//!
//! Each epoch the players re-share zero (over the simulated network, with
//! the same complaint machinery as the DKG) and add the result to their
//! shares. The public key never changes; every verification key does.
//! An adversary that corrupts up to `t` players *per epoch* — even all
//! players across different epochs — learns nothing useful, because
//! shares from different epochs do not interpolate to the secret.

use crate::ro::{KeyMaterial, KeyShare, ThresholdScheme, VerificationKey};
use borndist_dkg::{recovery, refresh, Behavior, DkgConfig, SharingMode};
use borndist_lhsps::{OneTimePublicKey, OneTimeSecretKey};
use borndist_net::Metrics;
use borndist_pairing::Fr;
use std::collections::BTreeMap;

/// A proactivized deployment of the threshold scheme: key material that
/// can be advanced through epochs.
#[derive(Clone, Debug)]
pub struct ProactiveDeployment {
    scheme: ThresholdScheme,
    material: KeyMaterial,
    epoch: u64,
}

/// Errors of the proactive layer.
#[derive(Debug)]
pub enum ProactiveError {
    /// The refresh protocol failed at the network level (any transport,
    /// any layer — see [`borndist_net::Error`]).
    Network(borndist_net::Error),
    /// No honest refresh output was produced.
    NoHonestOutput,
    /// Share recovery failed.
    Recovery(recovery::RecoveryError),
}

impl core::fmt::Display for ProactiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProactiveError::Network(e) => write!(f, "refresh network failure: {}", e),
            ProactiveError::NoHonestOutput => f.write_str("no honest refresh output"),
            ProactiveError::Recovery(e) => write!(f, "share recovery failed: {}", e),
        }
    }
}
impl std::error::Error for ProactiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProactiveError::Network(e) => Some(e),
            ProactiveError::Recovery(e) => Some(e),
            ProactiveError::NoHonestOutput => None,
        }
    }
}

impl From<borndist_net::Error> for ProactiveError {
    fn from(e: borndist_net::Error) -> Self {
        ProactiveError::Network(e)
    }
}

impl ProactiveDeployment {
    /// Wraps freshly generated key material.
    pub fn new(scheme: ThresholdScheme, material: KeyMaterial) -> Self {
        ProactiveDeployment {
            scheme,
            material,
            epoch: 0,
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Scheme context.
    pub fn scheme(&self) -> &ThresholdScheme {
        &self.scheme
    }

    /// Current key material.
    pub fn material(&self) -> &KeyMaterial {
        &self.material
    }

    /// Runs one refresh epoch: all players re-share zero, shares are
    /// updated in place, verification keys recomputed. The public key is
    /// untouched.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures and the (impossible under honest
    /// majority) absence of honest outputs.
    pub fn refresh_epoch(
        &mut self,
        behaviors: &BTreeMap<u32, Behavior>,
        seed: u64,
        transport: &borndist_net::TransportKind,
    ) -> Result<Metrics, ProactiveError> {
        let cfg = DkgConfig {
            params: self.material.params,
            bases: self.scheme.pedersen_bases(),
            width: 2,
            mode: SharingMode::Refresh,
            aggregate: None,
            checks: Default::default(),
        };
        let (outputs, metrics) = refresh::refresh_session(&cfg, behaviors, seed, transport)
            .map_err(ProactiveError::Network)?;
        let reference = outputs
            .iter()
            .filter(|(id, _)| behaviors.get(id).is_none_or(Behavior::is_honest))
            .find_map(|(_, o)| o.as_ref().ok())
            .ok_or(ProactiveError::NoHonestOutput)?;

        // Update combined commitments and verification keys.
        self.material.commitments =
            refresh::apply_refresh_commitments(&self.material.commitments, reference);
        for i in 1..=self.material.params.n as u32 {
            let vk: Vec<_> = self
                .material
                .commitments
                .iter()
                .map(|c| c.evaluate_at_index(i).to_affine())
                .collect();
            self.material.verification_keys.insert(
                i,
                VerificationKey {
                    index: i,
                    pk: OneTimePublicKey { g_hat: vk },
                },
            );
        }
        // The refreshed keys get fresh pairing line coefficients — the
        // "refresh time" half of the keygen/refresh preparation contract.
        self.material.prepared_vks =
            crate::ro::prepare_verification_keys(&self.material.verification_keys);

        // Update each player's share with its own refresh output.
        let mut new_shares = BTreeMap::new();
        for (id, share) in &self.material.shares {
            if let Some(Ok(r)) = outputs.get(id) {
                let old = [
                    (share.sk.chi[0], share.sk.gamma[0]),
                    (share.sk.chi[1], share.sk.gamma[1]),
                ];
                let updated = refresh::apply_refresh(&old, r);
                new_shares.insert(
                    *id,
                    KeyShare {
                        index: *id,
                        sk: OneTimeSecretKey {
                            chi: vec![updated[0].0, updated[1].0],
                            gamma: vec![updated[0].1, updated[1].1],
                        },
                    },
                );
            }
        }
        self.material.shares = new_shares;
        self.epoch += 1;
        Ok(metrics)
    }

    /// Restores player `target`'s share from `t+1` helpers (Herzberg
    /// recovery per sharing coordinate), e.g. after a crash or detected
    /// corruption.
    ///
    /// # Errors
    ///
    /// Fails if helpers are insufficient or inconsistent.
    pub fn recover_share<R: rand::RngCore + ?Sized>(
        &self,
        helper_ids: &[u32],
        target: u32,
        rng: &mut R,
    ) -> Result<KeyShare, ProactiveError> {
        let bases = self.scheme.pedersen_bases();
        let t = self.material.params.t;
        let mut per_k: Vec<(Fr, Fr)> = Vec::new();
        for k in 0..2 {
            let helpers: Vec<recovery::Helper> = helper_ids
                .iter()
                .map(|id| recovery::Helper {
                    id: *id,
                    share: (
                        self.material.shares[id].sk.chi[k],
                        self.material.shares[id].sk.gamma[k],
                    ),
                })
                .collect();
            let recovered = recovery::recover_share(
                &bases,
                &self.material.commitments[k],
                t,
                &helpers,
                target,
                rng,
            )
            .map_err(ProactiveError::Recovery)?;
            per_k.push(recovered);
        }
        Ok(KeyShare {
            index: target,
            sk: OneTimeSecretKey {
                chi: vec![per_k[0].0, per_k[1].0],
                gamma: vec![per_k[0].1, per_k[1].1],
            },
        })
    }

    /// Detects whether a player's share matches the public commitments —
    /// how a player notices (after a crash or intrusion) that its share
    /// needs recovery.
    pub fn share_consistent(&self, share: &KeyShare) -> bool {
        (0..2).all(|k| {
            let s = borndist_shamir::PedersenShare {
                index: share.index,
                a: share.sk.chi[k],
                b: share.sk.gamma[k],
            };
            self.material.commitments[k].verify_share(&self.scheme.pedersen_bases(), &s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ro::PartialSignature;
    use borndist_shamir::ThresholdParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment() -> ProactiveDeployment {
        let scheme = ThresholdScheme::new(b"proactive-tests");
        let mut r = StdRng::seed_from_u64(0xabc);
        let km = scheme.dealer_keygen(ThresholdParams::new(2, 5).unwrap(), &mut r);
        ProactiveDeployment::new(scheme, km)
    }

    #[test]
    fn epoch_preserves_public_key_and_signing() {
        let mut dep = deployment();
        let pk_before = dep.material().public_key.clone();
        let msg = b"signed before refresh";
        let sig_before = {
            let partials: Vec<PartialSignature> = (1..=3u32)
                .map(|i| dep.scheme().share_sign(&dep.material().shares[&i], msg))
                .collect();
            dep.scheme()
                .combine(&dep.material().params, &partials)
                .unwrap()
        };

        dep.refresh_epoch(
            &BTreeMap::new(),
            1001,
            &borndist_net::TransportKind::Lockstep,
        )
        .unwrap();
        assert_eq!(dep.epoch(), 1);
        assert_eq!(dep.material().public_key, pk_before);

        // The prepared verification keys were rebuilt for the refreshed
        // keys and stay index-aligned with the plain ones.
        for (i, vk) in &dep.material().verification_keys {
            assert_eq!(dep.material().prepared_vks[i].pk.key, vk.pk);
            assert_eq!(dep.material().prepared_vks[i].index, *i);
        }

        // New shares sign; the signature still verifies under the same PK
        // and (determinism) equals the pre-refresh signature.
        let partials: Vec<PartialSignature> = (2..=4u32)
            .map(|i| dep.scheme().share_sign(&dep.material().shares[&i], msg))
            .collect();
        let sig_after = dep
            .scheme()
            .combine(&dep.material().params, &partials)
            .unwrap();
        assert!(dep
            .scheme()
            .verify(&dep.material().public_key, msg, &sig_after));
        assert_eq!(sig_before, sig_after);
    }

    #[test]
    fn stale_shares_fail_against_new_vks() {
        let mut dep = deployment();
        let old_share = dep.material().shares[&1].clone();
        dep.refresh_epoch(
            &BTreeMap::new(),
            1002,
            &borndist_net::TransportKind::Lockstep,
        )
        .unwrap();
        // The stale share no longer matches the refreshed commitments.
        assert!(!dep.share_consistent(&old_share));
        assert!(dep.share_consistent(&dep.material().shares[&1]));
        // Partial signatures from the stale share fail Share-Verify.
        let msg = b"epoch 1 message";
        let stale_partial = dep.scheme().share_sign(&old_share, msg);
        assert!(!dep.scheme().share_verify(
            &dep.material().verification_keys[&1],
            msg,
            &stale_partial
        ));
    }

    #[test]
    fn mobile_adversary_cross_epoch_shares_useless() {
        // Corrupt t players in epoch 0 and t different ones in epoch 1:
        // the union (2t > t) of stale+fresh shares must not combine into
        // anything valid under the current VKs.
        let mut dep = deployment();
        let epoch0_shares: Vec<_> = (1..=2u32)
            .map(|i| dep.material().shares[&i].clone())
            .collect();
        dep.refresh_epoch(
            &BTreeMap::new(),
            1003,
            &borndist_net::TransportKind::Lockstep,
        )
        .unwrap();
        let msg = b"mobile adversary";
        // Epoch-0 partials are rejected now.
        for s in &epoch0_shares {
            let p = dep.scheme().share_sign(s, msg);
            assert!(!dep.scheme().share_verify(
                &dep.material().verification_keys[&s.index],
                msg,
                &p
            ));
        }
    }

    #[test]
    fn recovery_after_refresh() {
        let mut dep = deployment();
        dep.refresh_epoch(
            &BTreeMap::new(),
            1004,
            &borndist_net::TransportKind::Lockstep,
        )
        .unwrap();
        let mut r = StdRng::seed_from_u64(7);
        let recovered = dep.recover_share(&[1, 2, 4], 3, &mut r).unwrap();
        assert_eq!(recovered, dep.material().shares[&3]);
    }

    #[test]
    fn multiple_epochs() {
        let mut dep = deployment();
        let pk = dep.material().public_key.clone();
        for e in 0..3u64 {
            dep.refresh_epoch(
                &BTreeMap::new(),
                2000 + e,
                &borndist_net::TransportKind::Lockstep,
            )
            .unwrap();
        }
        assert_eq!(dep.epoch(), 3);
        assert_eq!(dep.material().public_key, pk);
        let msg = b"three epochs later";
        let partials: Vec<PartialSignature> = (1..=3u32)
            .map(|i| dep.scheme().share_sign(&dep.material().shares[&i], msg))
            .collect();
        let sig = dep
            .scheme()
            .combine(&dep.material().params, &partials)
            .unwrap();
        assert!(dep.scheme().verify(&dep.material().public_key, msg, &sig));
    }
}
