//! Appendix G: threshold signatures with *unrestricted aggregation*.
//!
//! The scheme of §3 extended so that signatures under distinct
//! (distributively generated) public keys compress into one 2-element
//! signature. Each public key carries a built-in validity proof
//! `(Z, R)` — a one-time LHSPS on the public vector `(g, h)` — produced
//! during the DKG; aggregate verification first sanity-checks every key
//! (`e(Z,ĝ_z)·e(R,ĝ_r)·e(g,ĝ_1)·e(h,ĝ_2) = 1`) and then checks the single
//! product equation over all message hashes. Signing binds the public key
//! by hashing `PK ‖ M`.
//!
//! In the paper's motivating deployment this enables *de-centralized
//! certification authorities with compressed certification chains*
//! (experiment E7).

use crate::ro::{CombineError, KeyMaterial, PartialSignature, Signature};
use borndist_dkg::{dkg_session, AggregateBases, Behavior, DkgConfig, SharingMode};
use borndist_lhsps::{sign_derive, DpParams, OneTimeSecretKey, OneTimeSignature, PreparedDpParams};
use borndist_net::{CodecError, Metrics, Wire};
use borndist_pairing::{
    hash_to_g1, hash_to_g1_vector, hash_to_g2, msm, multi_pairing_mixed, Fr, G1Affine,
    G1Projective, G1Table, G2Affine,
};
use borndist_shamir::{
    lagrange_coefficients_at_zero, LagrangeCache, PedersenBases, ThresholdParams,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An aggregate-capable public key: the §3 key plus its validity witness.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggPublicKey {
    /// `(ĝ_1, ĝ_2)`.
    pub coords: [G2Affine; 2],
    /// Witness `Z = Π Z_{i0}`.
    pub z: G1Affine,
    /// Witness `R = Π R_{i0}`.
    pub r: G1Affine,
}

impl AggPublicKey {
    /// Canonical byte fingerprint (compressed coordinates plus witness):
    /// the equality/grouping key used by the batched verifiers to
    /// collapse repeated keys and by the gateway's prepared-pairing
    /// cache.
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 * 96);
        out.extend_from_slice(&self.coords[0].to_compressed());
        out.extend_from_slice(&self.coords[1].to_compressed());
        out.extend_from_slice(&self.z.to_compressed());
        out.extend_from_slice(&self.r.to_compressed());
        out
    }
}

impl Wire for AggPublicKey {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.coords[0].encode_to(out);
        self.coords[1].encode_to(out);
        self.z.encode_to(out);
        self.r.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(AggPublicKey {
            coords: [G2Affine::decode(input)?, G2Affine::decode(input)?],
            z: G1Affine::decode(input)?,
            r: G1Affine::decode(input)?,
        })
    }
}

/// An aggregate of `ℓ` signatures: still just `(z, r) ∈ G²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateSignature {
    /// Combined `z`.
    pub z: G1Affine,
    /// Combined `r`.
    pub r: G1Affine,
}

/// Errors from aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// One of the input signatures fails individual verification.
    InvalidInput {
        /// Position in the input slice.
        position: usize,
    },
    /// Empty input.
    Empty,
}

impl core::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AggregateError::InvalidInput { position } => {
                write!(f, "signature at position {} is invalid", position)
            }
            AggregateError::Empty => f.write_str("nothing to aggregate"),
        }
    }
}
impl std::error::Error for AggregateError {}

/// The aggregate threshold scheme context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateScheme {
    params: DpParams,
    /// Prepared `(ĝ_z, ĝ_r)` — cached at construction; every key-check
    /// and aggregate equation pairs against them.
    prepared: PreparedDpParams,
    /// Extra generators `(g, h) ∈ G²` for the key-validity witness.
    pub bases: AggregateBases,
    /// Fixed-base window tables for `(g, h)`: every batched key check
    /// multiplies these two scheme constants by fresh random weights, so
    /// the table build (once per scheme) converts those to ~64 mixed
    /// additions each.
    g_table: G1Table,
    h_table: G1Table,
    hash_dst: Vec<u8>,
    /// Memoized `Combine` coefficients per signer set (always compares
    /// equal; shared across clones).
    lagrange: LagrangeCache,
}

impl AggregateScheme {
    /// Derives the scheme context from a protocol tag.
    pub fn new(tag: &[u8]) -> Self {
        let mut t = tag.to_vec();
        t.extend_from_slice(b"/aggregate-scheme");
        let params = DpParams {
            g_z: hash_to_g2(b"borndist/agg/g_z", &t).to_affine(),
            g_r: hash_to_g2(b"borndist/agg/g_r", &t).to_affine(),
        };
        let bases = AggregateBases {
            g: hash_to_g1(b"borndist/agg/g", &t).to_affine(),
            h: hash_to_g1(b"borndist/agg/h", &t).to_affine(),
        };
        AggregateScheme {
            prepared: params.prepare(),
            params,
            g_table: G1Table::new(&bases.g.to_projective()),
            h_table: G1Table::new(&bases.h.to_projective()),
            bases,
            hash_dst: t,
            lagrange: LagrangeCache::new(),
        }
    }

    /// The prepared generator pair (cached Miller line coefficients).
    pub(crate) fn prepared_dp(&self) -> &PreparedDpParams {
        &self.prepared
    }

    /// The fixed-base tables for `(g, h)` (batched key checks).
    pub(crate) fn base_tables(&self) -> (&G1Table, &G1Table) {
        (&self.g_table, &self.h_table)
    }

    /// The generator pair `(ĝ_z, ĝ_r)`.
    pub fn dp_params(&self) -> &DpParams {
        &self.params
    }

    /// Hashes `PK ‖ M` to `G²` (the scheme binds the key into the hash).
    pub fn hash_message(&self, pk: &AggPublicKey, msg: &[u8]) -> Vec<G1Projective> {
        let mut input = Vec::new();
        input.extend_from_slice(&pk.coords[0].to_compressed());
        input.extend_from_slice(&pk.coords[1].to_compressed());
        input.extend_from_slice(&pk.z.to_compressed());
        input.extend_from_slice(&pk.r.to_compressed());
        input.extend_from_slice(msg);
        hash_to_g1_vector(&self.hash_dst, &input, 2)
    }

    /// The paper's public-key sanity check (generator slots prepared).
    pub fn key_valid(&self, pk: &AggPublicKey) -> bool {
        multi_pairing_mixed(
            &[
                (&self.bases.g, &pk.coords[0]),
                (&self.bases.h, &pk.coords[1]),
            ],
            &[(&pk.z, &self.prepared.g_z), (&pk.r, &self.prepared.g_r)],
        )
        .is_identity()
    }

    /// `Dist-Keygen` with the Appendix G witness broadcast.
    pub fn dist_keygen(
        &self,
        params: ThresholdParams,
        behaviors: &BTreeMap<u32, Behavior>,
        seed: u64,
    ) -> Result<(AggPublicKey, KeyMaterial, Metrics), crate::ro::DistKeygenError> {
        let cfg = DkgConfig {
            params,
            bases: PedersenBases {
                g_z: self.params.g_z,
                g_r: self.params.g_r,
            },
            width: 2,
            mode: SharingMode::Fresh,
            aggregate: Some(self.bases),
            checks: Default::default(),
        };
        let (outputs, metrics) = dkg_session(
            &cfg,
            behaviors,
            seed,
            &borndist_net::TransportKind::Lockstep,
        )
        .map_err(crate::ro::DistKeygenError::Network)?;
        // Reuse the §3 assembly for shares/VKs, then attach the witness.
        let scheme = crate::ro::ThresholdScheme::with_params(self.params, self.hash_dst.clone());
        let material = scheme.assemble(params, &outputs, behaviors)?;
        let witness = outputs
            .values()
            .find_map(|o| o.as_ref().ok())
            .and_then(|o| o.aggregate_witness)
            .expect("aggregate DKG produces a witness");
        let pk = AggPublicKey {
            coords: material.public_key.coords,
            z: witness.z0,
            r: witness.r0,
        };
        Ok((pk, material, metrics))
    }

    /// Trusted-dealer keygen (testing/bench isolation).
    pub fn dealer_keygen<R: RngCore + ?Sized>(
        &self,
        params: ThresholdParams,
        rng: &mut R,
    ) -> (AggPublicKey, KeyMaterial) {
        let scheme = crate::ro::ThresholdScheme::with_params(self.params, self.hash_dst.clone());
        let material = scheme.dealer_keygen(params, rng);
        // Recompute the witness from the joint secret: the dealer knows
        // the master key, so it can sign (g, h) directly. Reconstruct the
        // master from t+1 shares (dealer-side only).
        let indices: Vec<u32> = material.shares.keys().copied().take(params.t + 1).collect();
        let coeffs = lagrange_coefficients_at_zero(&indices).expect("valid indices");
        let mut chi = vec![Fr::zero(); 2];
        let mut gamma = vec![Fr::zero(); 2];
        for (idx, c) in indices.iter().zip(coeffs.iter()) {
            let sk = &material.shares[idx].sk;
            for k in 0..2 {
                chi[k] += sk.chi[k] * *c;
                gamma[k] += sk.gamma[k] * *c;
            }
        }
        let master = OneTimeSecretKey { chi, gamma };
        let w = master.sign(&[self.bases.g.to_projective(), self.bases.h.to_projective()]);
        let pk = AggPublicKey {
            coords: material.public_key.coords,
            z: w.z,
            r: w.r,
        };
        (pk, material)
    }

    /// `Share-Sign` on `PK ‖ M`.
    pub fn share_sign(
        &self,
        pk: &AggPublicKey,
        share: &crate::ro::KeyShare,
        msg: &[u8],
    ) -> PartialSignature {
        let h = self.hash_message(pk, msg);
        PartialSignature {
            index: share.index,
            sig: share.sk.sign(&h),
        }
    }

    /// `Share-Verify` against `V K_i`.
    pub fn share_verify(
        &self,
        pk: &AggPublicKey,
        vk: &crate::ro::VerificationKey,
        msg: &[u8],
        psig: &PartialSignature,
    ) -> bool {
        if vk.index != psig.index {
            return false;
        }
        let h = self.hash_message(pk, msg);
        vk.pk.verify_prepared(&self.prepared, &h, &psig.sig)
    }

    /// `Combine` by Lagrange interpolation in the exponent.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ro::ThresholdScheme::combine`].
    pub fn combine(
        &self,
        params: &ThresholdParams,
        partials: &[PartialSignature],
    ) -> Result<Signature, CombineError> {
        if partials.len() < params.reconstruction_size() {
            return Err(CombineError::NotEnoughShares {
                have: partials.len(),
                need: params.reconstruction_size(),
            });
        }
        let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
        let coeffs = self
            .lagrange
            .at_zero(&indices)
            .map_err(|_| CombineError::BadIndices)?;
        let weighted: Vec<(Fr, &OneTimeSignature)> = coeffs
            .iter()
            .copied()
            .zip(partials.iter().map(|p| &p.sig))
            .collect();
        Ok(Signature {
            sig: sign_derive(&weighted),
        })
    }

    /// Verifies a single full signature (the `ℓ = 1` special case of
    /// aggregate verification).
    pub fn verify(&self, pk: &AggPublicKey, msg: &[u8], sig: &Signature) -> bool {
        self.aggregate_verify(
            &[(pk.clone(), msg.to_vec())],
            &AggregateSignature {
                z: sig.sig.z,
                r: sig.sig.r,
            },
        )
    }

    /// `Aggregate`: verifies each input and multiplies componentwise.
    ///
    /// # Errors
    ///
    /// Rejects empty input and any individually invalid signature
    /// (matching the paper's `Aggregate`, which returns `⊥` in that case).
    pub fn aggregate(
        &self,
        inputs: &[(AggPublicKey, Vec<u8>, Signature)],
    ) -> Result<AggregateSignature, AggregateError> {
        if inputs.is_empty() {
            return Err(AggregateError::Empty);
        }
        for (pos, (pk, msg, sig)) in inputs.iter().enumerate() {
            if !self.verify(pk, msg, sig) {
                return Err(AggregateError::InvalidInput { position: pos });
            }
        }
        let zs: Vec<G1Affine> = inputs.iter().map(|(_, _, s)| s.sig.z).collect();
        let rs: Vec<G1Affine> = inputs.iter().map(|(_, _, s)| s.sig.r).collect();
        let ones = vec![Fr::one(); inputs.len()];
        Ok(AggregateSignature {
            z: msm(&zs, &ones).to_affine(),
            r: msm(&rs, &ones).to_affine(),
        })
    }

    /// `Aggregate-Verify`: per-key sanity checks plus one `(2ℓ+2)`-pairing
    /// product equation.
    pub fn aggregate_verify(
        &self,
        statements: &[(AggPublicKey, Vec<u8>)],
        agg: &AggregateSignature,
    ) -> bool {
        if statements.is_empty() {
            return false;
        }
        for (pk, _) in statements {
            if !self.key_valid(pk) {
                return false;
            }
        }
        let hashes: Vec<Vec<G1Affine>> = statements
            .iter()
            .map(|(pk, msg)| G1Projective::batch_to_affine(&self.hash_message(pk, msg)))
            .collect();
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::with_capacity(2 * statements.len());
        for ((pk, _), h) in statements.iter().zip(hashes.iter()) {
            pairs.push((&h[0], &pk.coords[0]));
            pairs.push((&h[1], &pk.coords[1]));
        }
        multi_pairing_mixed(
            &pairs,
            &[(&agg.z, &self.prepared.g_z), (&agg.r, &self.prepared.g_r)],
        )
        .is_identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup_authority(
        scheme: &AggregateScheme,
        t: usize,
        n: usize,
        seed: u64,
    ) -> (AggPublicKey, KeyMaterial) {
        let mut r = StdRng::seed_from_u64(seed);
        scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut r)
    }

    fn threshold_sign(
        scheme: &AggregateScheme,
        pk: &AggPublicKey,
        km: &KeyMaterial,
        msg: &[u8],
    ) -> Signature {
        let partials: Vec<PartialSignature> = km
            .shares
            .values()
            .take(km.params.t + 1)
            .map(|s| scheme.share_sign(pk, s, msg))
            .collect();
        scheme.combine(&km.params, &partials).unwrap()
    }

    #[test]
    fn dealer_key_passes_sanity_check() {
        let scheme = AggregateScheme::new(b"agg-test");
        let (pk, _) = setup_authority(&scheme, 1, 4, 1);
        assert!(scheme.key_valid(&pk));
        let mut bad = pk.clone();
        bad.z = bad.r;
        assert!(!scheme.key_valid(&bad));
    }

    #[test]
    fn single_signature_verifies() {
        let scheme = AggregateScheme::new(b"agg-test");
        let (pk, km) = setup_authority(&scheme, 1, 4, 2);
        let sig = threshold_sign(&scheme, &pk, &km, b"cert-0");
        assert!(scheme.verify(&pk, b"cert-0", &sig));
        assert!(!scheme.verify(&pk, b"cert-1", &sig));
    }

    #[test]
    fn aggregation_of_three_authorities() {
        let scheme = AggregateScheme::new(b"agg-test");
        let auths: Vec<(AggPublicKey, KeyMaterial)> = (0..3)
            .map(|i| setup_authority(&scheme, 1, 4, 10 + i))
            .collect();
        let inputs: Vec<(AggPublicKey, Vec<u8>, Signature)> = auths
            .iter()
            .enumerate()
            .map(|(i, (pk, km))| {
                let msg = format!("certificate-{}", i).into_bytes();
                let sig = threshold_sign(&scheme, pk, km, &msg);
                (pk.clone(), msg, sig)
            })
            .collect();
        let agg = scheme.aggregate(&inputs).unwrap();
        let statements: Vec<(AggPublicKey, Vec<u8>)> = inputs
            .iter()
            .map(|(pk, m, _)| (pk.clone(), m.clone()))
            .collect();
        assert!(scheme.aggregate_verify(&statements, &agg));

        // Any statement mismatch breaks it.
        let mut tampered = statements.clone();
        tampered[1].1 = b"certificate-X".to_vec();
        assert!(!scheme.aggregate_verify(&tampered, &agg));
    }

    #[test]
    fn aggregate_rejects_invalid_member() {
        let scheme = AggregateScheme::new(b"agg-test");
        let (pk, km) = setup_authority(&scheme, 1, 4, 20);
        let good = threshold_sign(&scheme, &pk, &km, b"ok");
        let bad = Signature {
            sig: borndist_lhsps::OneTimeSignature {
                z: good.sig.r,
                r: good.sig.z,
            },
        };
        let err = scheme
            .aggregate(&[
                (pk.clone(), b"ok".to_vec(), good),
                (pk.clone(), b"bad".to_vec(), bad),
            ])
            .unwrap_err();
        assert_eq!(err, AggregateError::InvalidInput { position: 1 });
    }

    #[test]
    fn same_signer_multiple_messages() {
        // Bellare-Namprempre-Neven style: unrestricted aggregation allows
        // repeats of the same key.
        let scheme = AggregateScheme::new(b"agg-test");
        let (pk, km) = setup_authority(&scheme, 1, 4, 30);
        let inputs: Vec<(AggPublicKey, Vec<u8>, Signature)> = (0..3)
            .map(|i| {
                let msg = format!("m{}", i).into_bytes();
                let sig = threshold_sign(&scheme, &pk, &km, &msg);
                (pk.clone(), msg, sig)
            })
            .collect();
        let agg = scheme.aggregate(&inputs).unwrap();
        let statements: Vec<_> = inputs
            .iter()
            .map(|(p, m, _)| (p.clone(), m.clone()))
            .collect();
        assert!(scheme.aggregate_verify(&statements, &agg));
    }

    #[test]
    fn dkg_born_aggregate_key() {
        let scheme = AggregateScheme::new(b"agg-dkg");
        let (pk, km, metrics) = scheme
            .dist_keygen(ThresholdParams::new(1, 4).unwrap(), &BTreeMap::new(), 77)
            .unwrap();
        assert_eq!(metrics.active_rounds, 1);
        assert!(scheme.key_valid(&pk));
        let sig = threshold_sign(&scheme, &pk, &km, b"distributed cert");
        assert!(scheme.verify(&pk, b"distributed cert", &sig));
    }
}
