//! The standard-model construction (§4): a round-optimal, adaptively
//! secure, non-interactive threshold signature **without random oracles**.
//!
//! A signature is a Groth–Sahai NIWI proof of knowledge of a one-time
//! LHSPS signature `(z, r)` on the fixed one-dimensional vector `g`:
//! commitments `(C_z, C_r) ∈ G⁴` plus proof `(π̂₁, π̂₂) ∈ Ĝ²` under the
//! per-message CRS `f_M = (f, f₀·Π f_i^{M[i]})` (Malkin et al. style
//! bit-selected CRS).
//!
//! Threshold structure:
//! * key shares are single pairs `(A(i), B(i))` (width-1 Pedersen DKG);
//! * `Share-Sign` commits to `(z_i, r_i) = (g^{-A(i)}, g^{-B(i)})` and
//!   proves `e(z_i, ĝ_z)·e(r_i, ĝ_r)·e(g, V̂_i) = 1`;
//! * `Combine` Lagrange-combines commitments *and* proofs in the
//!   exponent (linear pairing-product equations compose linearly), then
//!   re-randomizes so the output is distributed like a fresh signature;
//! * `Verify` checks the same equation against `ĝ₁` — two 5-pairing
//!   products.
//!
//! Messages are fixed-length bit strings (`L = 256`); arbitrary byte
//! strings are first hashed with SHA-256, the standard collision-
//! resistance composition (the hash is *not* modeled as a random oracle
//! in the proof; only collision resistance is used).

use borndist_dkg::{dkg_session, Behavior, DkgConfig, SharingMode};
use borndist_grothsahai as gs;
use borndist_lhsps::{DpParams, PreparedDpParams};
use borndist_net::Metrics;
use borndist_pairing::{
    hash_to_g1, hash_to_g2, msm, sha256, Fr, G1Affine, G1Table, G2Affine, G2Projective,
};
use borndist_shamir::{
    LagrangeCache, PedersenBases, PedersenCommitment, Polynomial, ThresholdParams,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use crate::ro::CombineError;
use crate::ro::DistKeygenError;

/// Message bit-length of the §4 scheme.
pub const MESSAGE_BITS: usize = 256;

/// Public parameters: `(g, ĝ_z, ĝ_r, f, {f_i})`, all derived from a
/// protocol tag by random sampling of the *parameter generator* (they are
/// uniformly random and reusable across many public keys; the paper
/// requires exactly this common uniform string).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandardParams {
    /// Signing base `g ∈ G`.
    pub g: G1Affine,
    /// LHSPS generators `(ĝ_z, ĝ_r)`.
    pub dp: DpParams,
    /// CRS first vector `f = (f, h)`.
    pub f: (G1Affine, G1Affine),
    /// CRS message vectors `f₀ … f_L`.
    pub f_bits: Vec<(G1Affine, G1Affine)>,
}

/// The standard-model scheme context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandardScheme {
    params: StandardParams,
    /// Fixed-base window table for the long-lived signing base `g`
    /// ([`StandardParams::g`]): `Share-Sign` multiplies `g` by two fresh
    /// scalars per call, so the one-time table cost amortizes across the
    /// scheme's lifetime (DESIGN.md §2).
    g_table: G1Table,
    /// Prepared `(ĝ_z, ĝ_r)` — the Groth–Sahai equation constants of
    /// every verification, cached once at scheme construction.
    dp_prepared: PreparedDpParams,
    /// Memoized `Combine` coefficients per signer set (always compares
    /// equal; shared across clones).
    lagrange: LagrangeCache,
}

/// Public key `PK = ĝ₁ = ĝ_z^{a} ĝ_r^{b}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdPublicKey {
    /// `ĝ₁`.
    pub g1: G2Affine,
}

/// A server's share: two scalars `(A(i), B(i))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdKeyShare {
    /// Server index.
    pub index: u32,
    /// `A(i)`.
    pub a: Fr,
    /// `B(i)`.
    pub b: Fr,
}

/// A server's verification key `V̂_i = ĝ_z^{A(i)} ĝ_r^{B(i)}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdVerificationKey {
    /// Server index.
    pub index: u32,
    /// `V̂_i`.
    pub v: G2Affine,
}

/// A partial signature: `(C_z, C_r, π̂₁, π̂₂) ∈ G⁴ × Ĝ²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdPartialSignature {
    /// Producing server.
    pub index: u32,
    /// Commitment to `z_i`.
    pub c_z: gs::Commitment,
    /// Commitment to `r_i`.
    pub c_r: gs::Commitment,
    /// The NIWI proof.
    pub proof: gs::Proof,
}

/// A full signature, same shape as a partial one (2048 bits on BN254,
/// 3072 on BLS12-381).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdSignature {
    /// Commitment to `z`.
    pub c_z: gs::Commitment,
    /// Commitment to `r`.
    pub c_r: gs::Commitment,
    /// The NIWI proof.
    pub proof: gs::Proof,
}

/// Key material bundle.
#[derive(Clone, Debug)]
pub struct StdKeyMaterial {
    /// Threshold parameters.
    pub params: ThresholdParams,
    /// Joint public key.
    pub public_key: StdPublicKey,
    /// Per-player shares (simulation only).
    pub shares: BTreeMap<u32, StdKeyShare>,
    /// Verification keys.
    pub verification_keys: BTreeMap<u32, StdVerificationKey>,
    /// Combined Pedersen commitment (refresh/recovery support).
    pub commitment: PedersenCommitment,
}

impl StandardScheme {
    /// Derives all public parameters from a protocol tag.
    pub fn new(tag: &[u8]) -> Self {
        let mut t = tag.to_vec();
        t.extend_from_slice(b"/std-scheme");
        let g1 = |suffix: &str| {
            let mut s = t.clone();
            s.extend_from_slice(suffix.as_bytes());
            hash_to_g1(b"borndist/std", &s).to_affine()
        };
        let g2 = |suffix: &str| {
            let mut s = t.clone();
            s.extend_from_slice(suffix.as_bytes());
            hash_to_g2(b"borndist/std", &s).to_affine()
        };
        let f_bits = (0..=MESSAGE_BITS)
            .map(|i| (g1(&format!("/f{}/1", i)), g1(&format!("/f{}/2", i))))
            .collect();
        let g = g1("/g");
        let dp = DpParams {
            g_z: g2("/g_z"),
            g_r: g2("/g_r"),
        };
        StandardScheme {
            dp_prepared: dp.prepare(),
            params: StandardParams {
                g,
                dp,
                f: (g1("/f/1"), g1("/f/2")),
                f_bits,
            },
            g_table: G1Table::new(&g.to_projective()),
            lagrange: LagrangeCache::new(),
        }
    }

    /// The prepared generator pair (cached Miller line coefficients).
    pub(crate) fn dp_prepared(&self) -> &PreparedDpParams {
        &self.dp_prepared
    }

    /// The public parameters.
    pub fn params(&self) -> &StandardParams {
        &self.params
    }

    /// Digests an arbitrary message into the fixed `L`-bit message space.
    pub fn message_digest(&self, msg: &[u8]) -> [u8; 32] {
        sha256(msg)
    }

    /// Assembles the per-message Groth–Sahai CRS `(f, f_M)`.
    pub fn message_crs(&self, digest: &[u8; 32]) -> gs::Crs {
        let mut fm1 = self.params.f_bits[0].0.to_projective();
        let mut fm2 = self.params.f_bits[0].1.to_projective();
        for bit in 0..MESSAGE_BITS {
            if (digest[bit / 8] >> (7 - bit % 8)) & 1 == 1 {
                fm1 = fm1.add_affine(&self.params.f_bits[bit + 1].0);
                fm2 = fm2.add_affine(&self.params.f_bits[bit + 1].1);
            }
        }
        gs::Crs::from_vectors(self.params.f, (fm1.to_affine(), fm2.to_affine()))
    }

    /// `Dist-Keygen`: the width-1 instance of the Pedersen DKG.
    pub fn dist_keygen(
        &self,
        params: ThresholdParams,
        behaviors: &BTreeMap<u32, Behavior>,
        seed: u64,
    ) -> Result<(StdKeyMaterial, Metrics), DistKeygenError> {
        let cfg = DkgConfig {
            params,
            bases: PedersenBases {
                g_z: self.params.dp.g_z,
                g_r: self.params.dp.g_r,
            },
            width: 1,
            mode: SharingMode::Fresh,
            aggregate: None,
            checks: Default::default(),
        };
        let (outputs, metrics) = dkg_session(
            &cfg,
            behaviors,
            seed,
            &borndist_net::TransportKind::Lockstep,
        )
        .map_err(DistKeygenError::Network)?;
        let reference = outputs
            .iter()
            .filter(|(id, _)| behaviors.get(id).is_none_or(Behavior::is_honest))
            .find_map(|(_, o)| o.as_ref().ok())
            .ok_or(DistKeygenError::NoHonestOutput)?;
        let public_key = StdPublicKey {
            g1: reference.public_key_coordinates()[0],
        };
        let mut shares = BTreeMap::new();
        for (id, out) in &outputs {
            if let Ok(o) = out {
                shares.insert(
                    *id,
                    StdKeyShare {
                        index: *id,
                        a: o.share[0].0,
                        b: o.share[0].1,
                    },
                );
            }
        }
        let verification_keys = (1..=params.n as u32)
            .map(|i| {
                (
                    i,
                    StdVerificationKey {
                        index: i,
                        v: reference.verification_key(i)[0],
                    },
                )
            })
            .collect();
        Ok((
            StdKeyMaterial {
                params,
                public_key,
                shares,
                verification_keys,
                commitment: reference.combined_commitments[0].clone(),
            },
            metrics,
        ))
    }

    /// Trusted-dealer keygen (tests and benches).
    pub fn dealer_keygen<R: RngCore + ?Sized>(
        &self,
        params: ThresholdParams,
        rng: &mut R,
    ) -> StdKeyMaterial {
        let a0 = Fr::random(rng);
        let b0 = Fr::random(rng);
        let poly_a = Polynomial::random_with_constant(a0, params.t, rng);
        let poly_b = Polynomial::random_with_constant(b0, params.t, rng);
        let bases = PedersenBases {
            g_z: self.params.dp.g_z,
            g_r: self.params.dp.g_r,
        };
        let sharing = borndist_shamir::PedersenSharing::from_polynomials(
            &bases,
            poly_a.clone(),
            poly_b.clone(),
        );
        let public_key = StdPublicKey {
            g1: sharing.commitment.constant_commitment(),
        };
        let mut shares = BTreeMap::new();
        let mut verification_keys = BTreeMap::new();
        for i in 1..=params.n as u32 {
            let (a, b) = (poly_a.evaluate_at_index(i), poly_b.evaluate_at_index(i));
            shares.insert(i, StdKeyShare { index: i, a, b });
            verification_keys.insert(
                i,
                StdVerificationKey {
                    index: i,
                    v: sharing.commitment.evaluate_at_index(i).to_affine(),
                },
            );
        }
        StdKeyMaterial {
            params,
            public_key,
            shares,
            verification_keys,
            commitment: sharing.commitment,
        }
    }

    /// `Share-Sign`: commit to `(z_i, r_i) = (g^{-A(i)}, g^{-B(i)})` under
    /// the per-message CRS and prove the verification equation.
    pub fn share_sign<R: RngCore + ?Sized>(
        &self,
        share: &StdKeyShare,
        msg: &[u8],
        rng: &mut R,
    ) -> StdPartialSignature {
        let digest = self.message_digest(msg);
        let crs = self.message_crs(&digest);
        let z = self.g_table.mul(&(-share.a));
        let r = self.g_table.mul(&(-share.b));
        let (c_z, rand_z) = crs.commit(&z, rng);
        let (c_r, rand_r) = crs.commit(&r, rng);
        let proof = gs::prove(&[self.params.dp.g_z, self.params.dp.g_r], &[rand_z, rand_r]);
        StdPartialSignature {
            index: share.index,
            c_z,
            c_r,
            proof,
        }
    }

    /// `Share-Verify`: the two-coordinate Groth–Sahai verification with
    /// target `E((1, g), V̂_i)^{-1}`.
    pub fn share_verify(
        &self,
        vk: &StdVerificationKey,
        msg: &[u8],
        psig: &StdPartialSignature,
    ) -> bool {
        if vk.index != psig.index {
            return false;
        }
        self.verify_against(msg, &psig.c_z, &psig.c_r, &psig.proof, &vk.v)
    }

    fn verify_against(
        &self,
        msg: &[u8],
        c_z: &gs::Commitment,
        c_r: &gs::Commitment,
        proof: &gs::Proof,
        target_key: &G2Affine,
    ) -> bool {
        let digest = self.message_digest(msg);
        let crs = self.message_crs(&digest);
        let extra = ((G1Affine::identity(), self.params.g), *target_key);
        gs::verify_prepared(
            &crs,
            &[&self.dp_prepared.g_z, &self.dp_prepared.g_r],
            &[*c_z, *c_r],
            &[extra],
            proof,
        )
    }

    /// `Combine`: Lagrange combination of commitments and proofs followed
    /// by re-randomization (so the full signature is distributed like a
    /// fresh one, independent of the contributing quorum).
    ///
    /// # Errors
    ///
    /// Standard combine errors; partial signatures are assumed valid
    /// (pre-filter with [`Self::share_verify`]).
    pub fn combine<R: RngCore + ?Sized>(
        &self,
        params: &ThresholdParams,
        msg: &[u8],
        partials: &[StdPartialSignature],
        rng: &mut R,
    ) -> Result<StdSignature, CombineError> {
        if partials.len() < params.reconstruction_size() {
            return Err(CombineError::NotEnoughShares {
                have: partials.len(),
                need: params.reconstruction_size(),
            });
        }
        let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
        let weights = self
            .lagrange
            .at_zero(&indices)
            .map_err(|_| CombineError::BadIndices)?;
        let tuples: Vec<(Vec<gs::Commitment>, &gs::Proof)> = partials
            .iter()
            .map(|p| (vec![p.c_z, p.c_r], &p.proof))
            .collect();
        let tuple_refs: Vec<(&[gs::Commitment], &gs::Proof)> =
            tuples.iter().map(|(cs, p)| (cs.as_slice(), *p)).collect();
        let (combined, proof) = gs::combine_weighted(&tuple_refs, &weights);
        // Re-randomize on the message CRS.
        let digest = self.message_digest(msg);
        let crs = self.message_crs(&digest);
        let (rerandomized, proof) = gs::randomize(
            &crs,
            &[self.params.dp.g_z, self.params.dp.g_r],
            &combined,
            &proof,
            rng,
        );
        Ok(StdSignature {
            c_z: rerandomized[0],
            c_r: rerandomized[1],
            proof,
        })
    }

    /// `Verify` against the public key `ĝ₁`.
    pub fn verify(&self, pk: &StdPublicKey, msg: &[u8], sig: &StdSignature) -> bool {
        self.verify_against(msg, &sig.c_z, &sig.c_r, &sig.proof, &pk.g1)
    }

    /// Centralized signing with the joint key (reduction/testing helper;
    /// also demonstrates key homomorphism: it equals a 1-of-1 threshold).
    pub fn sign_centralized<R: RngCore + ?Sized>(
        &self,
        a: Fr,
        b: Fr,
        msg: &[u8],
        rng: &mut R,
    ) -> StdSignature {
        let share = StdKeyShare { index: 1, a, b };
        let p = self.share_sign(&share, msg, rng);
        StdSignature {
            c_z: p.c_z,
            c_r: p.c_r,
            proof: p.proof,
        }
    }

    /// The verification key a share *should* have (public recomputation).
    pub fn expected_vk(&self, share: &StdKeyShare) -> StdVerificationKey {
        StdVerificationKey {
            index: share.index,
            v: msm(
                &[self.params.dp.g_z, self.params.dp.g_r],
                &[share.a, share.b],
            )
            .to_affine(),
        }
    }
}

/// Silences an unused-import lint kept for doc links.
#[allow(dead_code)]
fn _doc_refs(_: G2Projective) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> (StandardScheme, StdKeyMaterial, StdRng) {
        let scheme = StandardScheme::new(b"std-tests");
        let mut r = StdRng::seed_from_u64(0x57d);
        let km = scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut r);
        (scheme, km, r)
    }

    #[test]
    fn sign_combine_verify() {
        let (scheme, km, mut r) = setup(1, 4);
        let msg = b"standard model message";
        let partials: Vec<StdPartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg, &mut r))
            .collect();
        for p in &partials {
            assert!(scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        }
        let sig = scheme.combine(&km.params, msg, &partials, &mut r).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        assert!(!scheme.verify(&km.public_key, b"different", &sig));
    }

    #[test]
    fn different_quorums_verify_same_key() {
        let (scheme, km, mut r) = setup(1, 5);
        let msg = b"quorum independence";
        let all: Vec<StdPartialSignature> = (1..=5u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg, &mut r))
            .collect();
        let s1 = scheme.combine(&km.params, msg, &all[0..2], &mut r).unwrap();
        let s2 = scheme.combine(&km.params, msg, &all[3..5], &mut r).unwrap();
        // Signatures are randomized so not equal, but both verify.
        assert_ne!(s1, s2);
        assert!(scheme.verify(&km.public_key, msg, &s1));
        assert!(scheme.verify(&km.public_key, msg, &s2));
    }

    #[test]
    fn rerandomized_signature_unlinkable_but_valid() {
        let (scheme, km, mut r) = setup(1, 3);
        let msg = b"rerandomize";
        let partials: Vec<StdPartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg, &mut r))
            .collect();
        let s1 = scheme.combine(&km.params, msg, &partials, &mut r).unwrap();
        let s2 = scheme.combine(&km.params, msg, &partials, &mut r).unwrap();
        assert_ne!(s1, s2, "combine must re-randomize");
        assert!(scheme.verify(&km.public_key, msg, &s1));
        assert!(scheme.verify(&km.public_key, msg, &s2));
    }

    #[test]
    fn bad_partial_rejected() {
        let (scheme, km, mut r) = setup(1, 3);
        let msg = b"m";
        let mut p = scheme.share_sign(&km.shares[&1], msg, &mut r);
        p.c_z = p.c_r;
        assert!(!scheme.share_verify(&km.verification_keys[&1], msg, &p));
        // Signature under the wrong VK index fails too.
        let p2 = scheme.share_sign(&km.shares[&1], msg, &mut r);
        assert!(!scheme.share_verify(&km.verification_keys[&2], msg, &p2));
    }

    #[test]
    fn centralized_equals_threshold_functionality() {
        // Reconstruct the joint key from shares and sign centrally.
        let (scheme, km, mut r) = setup(1, 3);
        let indices = vec![1u32, 2];
        let coeffs = borndist_shamir::lagrange_coefficients_at_zero(&indices).unwrap();
        let a = km.shares[&1].a * coeffs[0] + km.shares[&2].a * coeffs[1];
        let b = km.shares[&1].b * coeffs[0] + km.shares[&2].b * coeffs[1];
        let msg = b"central";
        let sig = scheme.sign_centralized(a, b, msg, &mut r);
        // The centralized signature verifies iff ĝ1 = ĝ_z^a ĝ_r^b.
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn dist_keygen_width_one() {
        let scheme = StandardScheme::new(b"std-dkg");
        let (km, metrics) = scheme
            .dist_keygen(ThresholdParams::new(1, 4).unwrap(), &BTreeMap::new(), 3)
            .unwrap();
        assert_eq!(metrics.active_rounds, 1);
        let mut r = StdRng::seed_from_u64(4);
        let msg = b"fully distributed, no oracles";
        let partials: Vec<StdPartialSignature> = [2u32, 4]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg, &mut r))
            .collect();
        let sig = scheme.combine(&km.params, msg, &partials, &mut r).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn vk_recomputation_matches() {
        let (scheme, km, _) = setup(1, 3);
        for (i, s) in &km.shares {
            assert_eq!(scheme.expected_vk(s).v, km.verification_keys[i].v);
        }
    }

    #[test]
    fn signature_size_matches_paper_shape() {
        // 4 G1 + 2 G2 compressed = 4*48 + 2*96 = 384 bytes = 3072 bits
        // (2048 bits on the paper's BN254).
        let (scheme, km, mut r) = setup(1, 3);
        let p = scheme.share_sign(&km.shares[&1], b"m", &mut r);
        let size = p.c_z.c1.to_compressed().len()
            + p.c_z.c2.to_compressed().len()
            + p.c_r.c1.to_compressed().len()
            + p.c_r.c2.to_compressed().len()
            + p.proof.pi1.to_compressed().len()
            + p.proof.pi2.to_compressed().len();
        assert_eq!(size, 384);
    }
}
