//! Appendix F: the DLIN-based variant of the threshold scheme.
//!
//! Structurally identical to §3 but built on the SDP/DLIN primitive:
//! three polynomials per sharing, signatures `(z, r, u) ∈ G³`, messages
//! hashed to `G³`, and *two* simultaneous verification equations. Its
//! value is robustness of assumption — it stays secure even if an
//! efficient isomorphism `Ĝ → G` exists (DLIN holds in symmetric
//! pairings; SXDH does not).
//!
//! Key generation is provided in two forms:
//! * [`DlinScheme::dealer_keygen`] — trusted dealer;
//! * [`DlinScheme::honest_dist_keygen`] — every player deals a verified
//!   [`borndist_shamir::TripleSharing`] and shares are summed. The
//!   complaint/disqualification machinery is identical to the §3 DKG (see
//!   `borndist-dkg`) and is not duplicated here; this entry point models
//!   the optimistic path on which the paper's one-round claim rests.

use borndist_lhsps::{SdpParams, SdpPublicKey, SdpSecretKey, SdpSignature};
use borndist_pairing::{hash_to_g1_vector, hash_to_g2, Fr, G1Projective};
use borndist_shamir::{
    LagrangeCache, ThresholdParams, TripleBases, TripleCommitment, TripleSharing,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use crate::ro::CombineError;

/// The DLIN-variant scheme context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlinScheme {
    params: SdpParams,
    hash_dst: Vec<u8>,
    /// Memoized `Combine` coefficients per signer set (always compares
    /// equal; shared across clones).
    lagrange: LagrangeCache,
}

/// Public key `{(ĝ_k, ĥ_k)}_{k=1,2,3}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlinPublicKey {
    /// The six coordinates as an SDP-LHSPS public key.
    pub pk: SdpPublicKey,
}

/// A server's share: nine scalars `{(A_k(i), B_k(i), C_k(i))}_{k=1,2,3}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlinKeyShare {
    /// Server index.
    pub index: u32,
    /// Packed as an SDP secret key (`chi = A`, `gamma = B`, `delta = C`).
    pub sk: SdpSecretKey,
}

/// A server's verification key `({Û_{k,i}}, {Ẑ_{k,i}})`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlinVerificationKey {
    /// Server index.
    pub index: u32,
    /// The matching SDP public key.
    pub pk: SdpPublicKey,
}

/// Partial signature `(z_i, r_i, u_i) ∈ G³`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlinPartialSignature {
    /// Producing server.
    pub index: u32,
    /// The triple.
    pub sig: SdpSignature,
}

/// Full signature `(z, r, u) ∈ G³`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlinSignature {
    /// The triple.
    pub sig: SdpSignature,
}

/// Key material bundle (mirrors [`crate::ro::KeyMaterial`]).
#[derive(Clone, Debug)]
pub struct DlinKeyMaterial {
    /// Threshold parameters.
    pub params: ThresholdParams,
    /// Joint public key.
    pub public_key: DlinPublicKey,
    /// Per-player shares (simulation only).
    pub shares: BTreeMap<u32, DlinKeyShare>,
    /// Verification keys for all players.
    pub verification_keys: BTreeMap<u32, DlinVerificationKey>,
    /// Combined triple commitments, one per parallel sharing `k`.
    pub commitments: Vec<TripleCommitment>,
}

impl DlinScheme {
    /// Derives the scheme context from a protocol tag.
    pub fn new(tag: &[u8]) -> Self {
        let mut t = tag.to_vec();
        t.extend_from_slice(b"/dlin-scheme");
        let gen = |suffix: &[u8]| {
            let mut s = t.clone();
            s.extend_from_slice(suffix);
            hash_to_g2(b"borndist/dlin", &s).to_affine()
        };
        DlinScheme {
            params: SdpParams {
                g_z: gen(b"/g_z"),
                g_r: gen(b"/g_r"),
                h_z: gen(b"/h_z"),
                h_u: gen(b"/h_u"),
            },
            hash_dst: t,
            lagrange: LagrangeCache::new(),
        }
    }

    /// The four generators.
    pub fn sdp_params(&self) -> &SdpParams {
        &self.params
    }

    fn triple_bases(&self) -> TripleBases {
        TripleBases {
            g_z: self.params.g_z,
            g_r: self.params.g_r,
            h_z: self.params.h_z,
            h_u: self.params.h_u,
        }
    }

    /// The random oracle `H : {0,1}* → G³`.
    pub fn hash_message(&self, msg: &[u8]) -> Vec<G1Projective> {
        hash_to_g1_vector(&self.hash_dst, msg, 3)
    }

    /// Trusted-dealer key generation.
    pub fn dealer_keygen<R: RngCore + ?Sized>(
        &self,
        params: ThresholdParams,
        rng: &mut R,
    ) -> DlinKeyMaterial {
        // One triple sharing per coordinate k = 1,2,3.
        let bases = self.triple_bases();
        let sharings: Vec<TripleSharing> = (0..3)
            .map(|_| TripleSharing::deal_random(&bases, params.t, rng))
            .collect();
        self.assemble_from_sharings(params, &[sharings])
    }

    /// Optimistic-path distributed keygen: each of the `n` players deals
    /// three verified triple sharings; all shares are validated against
    /// the broadcast commitments and summed. One broadcast round, exactly
    /// as in §3 (complaint handling would add the same two optional
    /// rounds as the `borndist-dkg` implementation).
    pub fn honest_dist_keygen<R: RngCore + ?Sized>(
        &self,
        params: ThresholdParams,
        rng: &mut R,
    ) -> DlinKeyMaterial {
        let bases = self.triple_bases();
        let deals: Vec<Vec<TripleSharing>> = (0..params.n)
            .map(|_| {
                (0..3)
                    .map(|_| TripleSharing::deal_random(&bases, params.t, rng))
                    .collect()
            })
            .collect();
        // Every player verifies every received share (equation (12)).
        for dealer in &deals {
            for sharing in dealer {
                for i in 1..=params.n as u32 {
                    assert!(
                        sharing
                            .commitment
                            .verify_share(&bases, &sharing.share_for(i)),
                        "honest dealer share must verify"
                    );
                }
            }
        }
        self.assemble_from_sharings(params, &deals)
    }

    fn assemble_from_sharings(
        &self,
        params: ThresholdParams,
        deals: &[Vec<TripleSharing>],
    ) -> DlinKeyMaterial {
        // Combined commitments per coordinate.
        let commitments: Vec<TripleCommitment> = (0..3)
            .map(|k| {
                deals
                    .iter()
                    .map(|d| d[k].commitment.clone())
                    .reduce(|a, b| a.combine(&b))
                    .expect("at least one dealer")
            })
            .collect();
        // Public key: constant commitments.
        let mut g_hat = Vec::new();
        let mut h_hat = Vec::new();
        for c in &commitments {
            let (v0, w0) = c.constant_commitment();
            g_hat.push(v0);
            h_hat.push(w0);
        }
        let public_key = DlinPublicKey {
            pk: SdpPublicKey { g_hat, h_hat },
        };
        // Shares and verification keys.
        let mut shares = BTreeMap::new();
        let mut verification_keys = BTreeMap::new();
        for i in 1..=params.n as u32 {
            let mut chi = vec![Fr::zero(); 3];
            let mut gamma = vec![Fr::zero(); 3];
            let mut delta = vec![Fr::zero(); 3];
            for dealer in deals {
                for (k, sharing) in dealer.iter().enumerate() {
                    let s = sharing.share_for(i);
                    chi[k] += s.a;
                    gamma[k] += s.b;
                    delta[k] += s.c;
                }
            }
            let sk = SdpSecretKey { chi, gamma, delta };
            verification_keys.insert(
                i,
                DlinVerificationKey {
                    index: i,
                    pk: sk.public_key(&self.params),
                },
            );
            shares.insert(i, DlinKeyShare { index: i, sk });
        }
        DlinKeyMaterial {
            params,
            public_key,
            shares,
            verification_keys,
            commitments,
        }
    }

    /// `Share-Sign`: three 3-base multi-exponentiations.
    pub fn share_sign(&self, share: &DlinKeyShare, msg: &[u8]) -> DlinPartialSignature {
        let h = self.hash_message(msg);
        DlinPartialSignature {
            index: share.index,
            sig: share.sk.sign(&h),
        }
    }

    /// `Share-Verify`: the two simultaneous pairing-product equations.
    pub fn share_verify(
        &self,
        vk: &DlinVerificationKey,
        msg: &[u8],
        psig: &DlinPartialSignature,
    ) -> bool {
        if vk.index != psig.index {
            return false;
        }
        let h = self.hash_message(msg);
        vk.pk.verify(&self.params, &h, &psig.sig)
    }

    /// `Combine`: componentwise Lagrange interpolation in the exponent.
    ///
    /// # Errors
    ///
    /// Same contract as the §3 scheme.
    pub fn combine(
        &self,
        params: &ThresholdParams,
        partials: &[DlinPartialSignature],
    ) -> Result<DlinSignature, CombineError> {
        if partials.len() < params.reconstruction_size() {
            return Err(CombineError::NotEnoughShares {
                have: partials.len(),
                need: params.reconstruction_size(),
            });
        }
        let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
        let coeffs = self
            .lagrange
            .at_zero(&indices)
            .map_err(|_| CombineError::BadIndices)?;
        let weighted: Vec<(Fr, &SdpSignature)> = coeffs
            .iter()
            .copied()
            .zip(partials.iter().map(|p| &p.sig))
            .collect();
        Ok(DlinSignature {
            sig: borndist_lhsps::sdp::sign_derive(&weighted),
        })
    }

    /// `Verify`: both product equations over `(z, r, u)` and `H(M) ∈ G³`.
    pub fn verify(&self, pk: &DlinPublicKey, msg: &[u8], sig: &DlinSignature) -> bool {
        let h = self.hash_message(msg);
        pk.pk.verify(&self.params, &h, &sig.sig)
    }

    /// Compressed signature size in bytes (3 `G1` elements).
    pub fn signature_bytes() -> usize {
        3 * 48
    }

    /// Share size in bytes (9 scalars).
    pub fn share_bytes() -> usize {
        9 * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> (DlinScheme, DlinKeyMaterial) {
        let scheme = DlinScheme::new(b"dlin-tests");
        let mut r = StdRng::seed_from_u64(0xd11);
        let km = scheme.dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut r);
        (scheme, km)
    }

    #[test]
    fn sign_combine_verify() {
        let (scheme, km) = setup(2, 5);
        let msg = b"dlin message";
        let partials: Vec<DlinPartialSignature> = (1..=3u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        for p in &partials {
            assert!(scheme.share_verify(&km.verification_keys[&p.index], msg, p));
        }
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        assert!(!scheme.verify(&km.public_key, b"other", &sig));
    }

    #[test]
    fn distributed_keygen_works() {
        let scheme = DlinScheme::new(b"dlin-dkg");
        let mut r = StdRng::seed_from_u64(0xd12);
        let km = scheme.honest_dist_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        let msg = b"born distributed, dlin flavored";
        let partials: Vec<DlinPartialSignature> = [2u32, 4]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], msg))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn quorum_independence() {
        let (scheme, km) = setup(1, 5);
        let msg = b"unique";
        let partials: BTreeMap<u32, DlinPartialSignature> = (1..=5u32)
            .map(|i| (i, scheme.share_sign(&km.shares[&i], msg)))
            .collect();
        let s1 = scheme
            .combine(&km.params, &[partials[&1], partials[&2]])
            .unwrap();
        let s2 = scheme
            .combine(&km.params, &[partials[&4], partials[&5]])
            .unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn bad_partial_caught_by_share_verify() {
        let (scheme, km) = setup(1, 4);
        let msg = b"m";
        let mut p = scheme.share_sign(&km.shares[&2], msg);
        p.sig.u = p.sig.z;
        assert!(!scheme.share_verify(&km.verification_keys[&2], msg, &p));
    }

    #[test]
    fn below_threshold_fails() {
        let (scheme, km) = setup(2, 5);
        let partials: Vec<DlinPartialSignature> = (1..=2u32)
            .map(|i| scheme.share_sign(&km.shares[&i], b"x"))
            .collect();
        assert!(matches!(
            scheme.combine(&km.params, &partials),
            Err(CombineError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn shares_open_combined_commitments() {
        let scheme = DlinScheme::new(b"dlin-commit");
        let mut r = StdRng::seed_from_u64(9);
        let km = scheme.honest_dist_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        let bases = scheme.triple_bases();
        for (i, share) in &km.shares {
            for k in 0..3 {
                let ts = borndist_shamir::TripleShare {
                    index: *i,
                    a: share.sk.chi[k],
                    b: share.sk.gamma[k],
                    c: share.sk.delta[k],
                };
                assert!(km.commitments[k].verify_share(&bases, &ts));
            }
        }
    }
}
