//! Small-exponent randomized batch verification — the hot-path batching
//! layer of DESIGN.md §2.
//!
//! Every verification equation in this workspace is a pairing-product
//! equality `Π e(P_j, Q̂_j) = 1`. Such equations batch: raise the `i`-th
//! equation to a fresh random exponent `ρ_i` and multiply them together,
//! moving the exponent onto the (cheap) `G` side of each pairing. One
//! *shared* Miller loop plus a single final exponentiation then replaces
//! `k` separate four-pairing products; whenever two pairings share their
//! `Ĝ`-side element (the generators `ĝ_z`, `ĝ_r`, or a common public
//! key), their `G`-side points collapse into a multi-scalar
//! multiplication and the pairing count drops too.
//!
//! Soundness is statistical: a batch containing an invalid equation
//! passes with probability `1/(r-1) ≈ 2^-255` over the verifier's random
//! weights (the classical small-exponent argument of Bellare, Garay and
//! Rabin — our weights are full-size scalars, so the bound is maximal).
//! On a batch failure the caller falls back to per-item verification to
//! locate offenders; [`ThresholdScheme::combine_batch_verified`] wires
//! exactly that optimistic/pessimistic split into `Combine`.
//!
//! Concretely:
//!
//! * [`ThresholdScheme::batch_verify`] — `k` §3 signatures under one key:
//!   **4 pairings total** instead of `4k`;
//! * [`ThresholdScheme::batch_verify_multi`] — `k` signatures under `k`
//!   distinct keys: `2k + 2` pairings but one Miller loop / final
//!   exponentiation instead of `k`;
//! * [`ThresholdScheme::batch_share_verify`] — `k` partial signatures on
//!   one message: 4 pairings total (used by `Combine`);
//! * [`StandardScheme::batch_verify`] / [`StandardScheme::batch_share_verify`]
//!   — the §4 Groth–Sahai equations, `3k + 2` pairings and one final
//!   exponentiation instead of `2k` five-pairing products;
//! * [`AggregateScheme::batch_key_valid`] /
//!   [`AggregateScheme::aggregate_verify_batched`] — Appendix G key
//!   sanity checks folded into the aggregate equation: `2d + 2` pairings
//!   (`d` = distinct keys — same-key pairing slots collapse) and one
//!   final exponentiation for the whole statement list, with the
//!   signature equation normalized to weight 1 so the message hashes
//!   enter the Miller loop without any generic scalar multiplication.
//!
//! Every batched equation here is also **multi-core**: per-item hashing
//! and weighting fan out over [`borndist_parallel::par_map`], the MSMs
//! parallelize their window accumulation, and the closing
//! [`multi_pairing_mixed`] shards its Miller loop — all governed by
//! [`borndist_parallel::Parallelism`] (`BORNDIST_THREADS=1` forces the
//! sequential reference behavior) with bit-identical verdicts at every
//! thread count, which `tests/parallel_invariance.rs` enforces.
//!
//! Equivalence with the per-item slow paths is enforced by the
//! `tests/adversarial.rs` batch suite (a single forgery hidden among 63
//! valid signatures must be rejected) and the agreement property tests.

use crate::aggregate::{AggPublicKey, AggregateScheme, AggregateSignature};
use crate::ro::{
    CombineError, PartialSignature, PublicKey, Signature, ThresholdScheme, VerificationKey,
};
use crate::standard::{
    StandardScheme, StdPartialSignature, StdPublicKey, StdSignature, StdVerificationKey,
};
use borndist_grothsahai as gs;
use borndist_pairing::{msm, multi_pairing_mixed, Fr, G1Affine, G1Projective, G2Affine};
use borndist_parallel::{par_map, par_map_indexed};
use borndist_shamir::ThresholdParams;
use rand::RngCore;
use std::collections::BTreeMap;

/// Fresh non-zero batching weights (zero weights would let the weighted
/// equation ignore an item entirely).
fn random_weights<R: RngCore + ?Sized>(k: usize, rng: &mut R) -> Vec<Fr> {
    (0..k).map(|_| Fr::random_nonzero(rng)).collect()
}

/// Grouping key for collapsing repeated aggregate public keys.
fn agg_key_bytes(pk: &AggPublicKey) -> Vec<u8> {
    pk.fingerprint()
}

/// The LHSPS slow path ([`borndist_lhsps::OneTimePublicKey::verify`])
/// rejects messages whose hash vector is all-identity — for such a
/// degenerate vector `z = r = 1` would verify universally. The batched
/// equations must re-establish the same guard or their verdict would
/// diverge from the per-item path.
fn degenerate_hash(h: &[G1Projective]) -> bool {
    h.iter().all(G1Projective::is_identity)
}

impl ThresholdScheme {
    /// Batch-verifies `k` full signatures on `k` messages under the
    /// *same* public key with one four-pairing product:
    ///
    /// ```text
    /// e(Σρᵢzᵢ, ĝ_z)·e(Σρᵢrᵢ, ĝ_r)·e(ΣρᵢH₁(Mᵢ), ĝ₁)·e(ΣρᵢH₂(Mᵢ), ĝ₂) = 1
    /// ```
    ///
    /// Returns `true` only if every signature verifies (up to the
    /// `≈ 2^-255` batching soundness error); on `false`, fall back to
    /// [`Self::verify`] per item to locate the offenders. The empty batch
    /// is vacuously valid.
    pub fn batch_verify<R: RngCore + ?Sized>(
        &self,
        pk: &PublicKey,
        items: &[(&[u8], &Signature)],
        rng: &mut R,
    ) -> bool {
        if items.is_empty() {
            return true;
        }
        let rho = random_weights(items.len(), rng);
        // H(Mᵢ) ∈ G², hashed across threads (hash-to-curve dominates
        // this path's cost) and batch-normalized in one go.
        let per_item = par_map(items, |(msg, _)| self.hash_message(msg));
        let mut hashes: Vec<G1Projective> = Vec::with_capacity(2 * items.len());
        for h in per_item {
            if degenerate_hash(&h) {
                return false;
            }
            hashes.extend(h);
        }
        let hashes = G1Projective::batch_to_affine(&hashes);
        let h1: Vec<G1Affine> = hashes.iter().step_by(2).copied().collect();
        let h2: Vec<G1Affine> = hashes.iter().skip(1).step_by(2).copied().collect();
        let zs: Vec<G1Affine> = items.iter().map(|(_, s)| s.sig.z).collect();
        let rs: Vec<G1Affine> = items.iter().map(|(_, s)| s.sig.r).collect();
        let combined = [
            msm(&zs, &rho),
            msm(&rs, &rho),
            msm(&h1, &rho),
            msm(&h2, &rho),
        ];
        let combined = G1Projective::batch_to_affine(&combined);
        let prep = self.prepared_dp();
        multi_pairing_mixed(
            &[(&combined[2], &pk.coords[0]), (&combined[3], &pk.coords[1])],
            &[(&combined[0], &prep.g_z), (&combined[1], &prep.g_r)],
        )
        .is_identity()
    }

    /// Batch-verifies signatures under *distinct* public keys. The
    /// generator columns still collapse, so the product costs `2k + 2`
    /// pairings — but crucially one shared Miller loop and one final
    /// exponentiation, instead of `k` of each.
    pub fn batch_verify_multi<R: RngCore + ?Sized>(
        &self,
        items: &[(&PublicKey, &[u8], &Signature)],
        rng: &mut R,
    ) -> bool {
        if items.is_empty() {
            return true;
        }
        let rho = random_weights(items.len(), rng);
        let zs: Vec<G1Affine> = items.iter().map(|(_, _, s)| s.sig.z).collect();
        let rs: Vec<G1Affine> = items.iter().map(|(_, _, s)| s.sig.r).collect();
        // ρᵢ·H(Mᵢ): the per-key hash points keep their own pairing slot.
        // Hashing and weighting are per-item pure work — fanned out
        // across threads.
        let per_item: Vec<Option<[G1Projective; 2]>> = par_map_indexed(items, |i, (_, msg, _)| {
            let h = self.hash_message(msg);
            if degenerate_hash(&h) {
                return None;
            }
            Some([h[0].mul(&rho[i]), h[1].mul(&rho[i])])
        });
        let mut weighted_hashes: Vec<G1Projective> = Vec::with_capacity(2 * items.len());
        for pair in per_item {
            let Some(pair) = pair else {
                return false;
            };
            weighted_hashes.extend(pair);
        }
        let weighted_hashes = G1Projective::batch_to_affine(&weighted_hashes);
        let combined = G1Projective::batch_to_affine(&[msm(&zs, &rho), msm(&rs, &rho)]);
        let prep = self.prepared_dp();
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::with_capacity(2 * items.len());
        for ((pk, _, _), h) in items.iter().zip(weighted_hashes.chunks(2)) {
            pairs.push((&h[0], &pk.coords[0]));
            pairs.push((&h[1], &pk.coords[1]));
        }
        multi_pairing_mixed(
            &pairs,
            &[(&combined[0], &prep.g_z), (&combined[1], &prep.g_r)],
        )
        .is_identity()
    }

    /// Batch-verifies many partial signatures on the *same* message with
    /// small-exponent batching: one four-pairing product plus four MSMs
    /// replaces `k` separate four-pairing products.
    ///
    /// Returns `true` only if **every** partial verifies; on `false`,
    /// fall back to [`Self::share_verify`] per item to locate offenders
    /// (or use [`Self::combine_batch_verified`], which does both).
    pub fn batch_share_verify<R: RngCore + ?Sized>(
        &self,
        vks: &BTreeMap<u32, VerificationKey>,
        msg: &[u8],
        partials: &[PartialSignature],
        rng: &mut R,
    ) -> bool {
        if partials.is_empty() {
            return true;
        }
        let Some(vk_list) = partials
            .iter()
            .map(|p| {
                vks.get(&p.index)
                    .filter(|vk| vk.index == p.index)
                    .map(|vk| &vk.pk)
            })
            .collect::<Option<Vec<_>>>()
        else {
            return false;
        };
        self.batch_share_verify_keys(&vk_list, msg, partials, rng)
    }

    /// The batched equation over already-resolved LHSPS keys (shared by
    /// the plain and prepared robust-combine entry points).
    fn batch_share_verify_keys<R: RngCore + ?Sized>(
        &self,
        vk_list: &[&borndist_lhsps::OneTimePublicKey],
        msg: &[u8],
        partials: &[PartialSignature],
        rng: &mut R,
    ) -> bool {
        let h = self.hash_message(msg);
        if degenerate_hash(&h) {
            return false;
        }
        let h_affine = G1Projective::batch_to_affine(&h);
        // Random weights ρ_i; the batched equation is
        //   e(Π z_i^ρi, ĝ_z)·e(Π r_i^ρi, ĝ_r)
        //     ·e(H_1, Π V̂_{1,i}^ρi)·e(H_2, Π V̂_{2,i}^ρi) = 1.
        let rho = random_weights(partials.len(), rng);
        let zs: Vec<_> = partials.iter().map(|p| p.sig.z).collect();
        let rs: Vec<_> = partials.iter().map(|p| p.sig.r).collect();
        let v1: Vec<_> = vk_list.iter().map(|vk| vk.g_hat[0]).collect();
        let v2: Vec<_> = vk_list.iter().map(|vk| vk.g_hat[1]).collect();
        let z_comb = msm(&zs, &rho).to_affine();
        let r_comb = msm(&rs, &rho).to_affine();
        let v1_comb = msm(&v1, &rho).to_affine();
        let v2_comb = msm(&v2, &rho).to_affine();
        let prep = self.prepared_dp();
        multi_pairing_mixed(
            &[(&h_affine[0], &v1_comb), (&h_affine[1], &v2_comb)],
            &[(&z_comb, &prep.g_z), (&r_comb, &prep.g_r)],
        )
        .is_identity()
    }

    /// Robust `Combine` with batched share verification: optimistically
    /// checks all `k` partials with **one** multi-pairing
    /// ([`Self::batch_share_verify`]) and combines on success; only when
    /// the batch rejects does it fall back to the per-share filter of
    /// [`Self::combine_verified`]. In the common all-honest case this
    /// turns the `k` four-pairing `Share-Verify` products of `Combine`
    /// into a single one.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::combine_verified`].
    pub fn combine_batch_verified<R: RngCore + ?Sized>(
        &self,
        params: &ThresholdParams,
        vks: &BTreeMap<u32, VerificationKey>,
        msg: &[u8],
        partials: &[PartialSignature],
        rng: &mut R,
    ) -> Result<Signature, CombineError> {
        if partials.len() >= params.reconstruction_size()
            && self.batch_share_verify(vks, msg, partials, rng)
        {
            return self.combine(params, partials);
        }
        self.combine_verified(params, vks, msg, partials)
    }

    /// [`Self::combine_batch_verified`] over the prepared verification
    /// keys of [`crate::ro::KeyMaterial::prepared_vks`]: the optimistic
    /// batch is unchanged (its `Ĝ` columns are MSM combinations, where
    /// only the generators — already prepared — are fixed), while the
    /// pessimistic per-share fallback filters through
    /// [`ThresholdScheme::share_verify_prepared`] with zero `Ĝ`-side
    /// point arithmetic.
    ///
    /// # Errors
    ///
    /// Same contract as [`ThresholdScheme::combine_verified`].
    pub fn combine_batch_verified_prepared<R: RngCore + ?Sized>(
        &self,
        params: &ThresholdParams,
        vks: &BTreeMap<u32, crate::ro::PreparedVerificationKey>,
        msg: &[u8],
        partials: &[PartialSignature],
        rng: &mut R,
    ) -> Result<Signature, CombineError> {
        if partials.len() >= params.reconstruction_size() && !partials.is_empty() {
            let vk_list = partials
                .iter()
                .map(|p| {
                    vks.get(&p.index)
                        .filter(|vk| vk.index == p.index)
                        .map(|vk| &vk.pk.key)
                })
                .collect::<Option<Vec<_>>>();
            if let Some(vk_list) = vk_list {
                if self.batch_share_verify_keys(&vk_list, msg, partials, rng) {
                    return self.combine(params, partials);
                }
            }
        }
        self.combine_verified_prepared(params, vks, msg, partials)
    }
}

/// One Groth–Sahai verification statement prepared for batching: the
/// per-message CRS, the committed signature, and the `Ĝ`-side target key
/// (`ĝ₁` for full signatures, `V̂_i` for partials).
struct GsStatement<'a> {
    crs: gs::Crs,
    c_z: &'a gs::Commitment,
    c_r: &'a gs::Commitment,
    proof: &'a gs::Proof,
    target: &'a G2Affine,
}

impl StandardScheme {
    /// Folds `k` Groth–Sahai verification statements (two pairing-product
    /// equations each, one per commitment coordinate) into a single
    /// multi-pairing of `3k + 2` pairs:
    ///
    /// * the `ĝ_z` and `ĝ_r` columns collapse into two MSMs over all
    ///   `2k` weighted commitment coordinates;
    /// * each statement keeps three slots: its two proof components
    ///   `(π̂₁, π̂₂)` against the weighted CRS vectors, and the weighted
    ///   signing base `ρ·g` against its target key.
    fn gs_batch_verify<R: RngCore + ?Sized>(
        &self,
        statements: &[GsStatement<'_>],
        rng: &mut R,
    ) -> bool {
        if statements.is_empty() {
            return true;
        }
        let params = self.params();
        // Two weights per statement: one per commitment coordinate.
        let rho = random_weights(2 * statements.len(), rng);
        let mut cz_points = Vec::with_capacity(2 * statements.len());
        let mut cr_points = Vec::with_capacity(2 * statements.len());
        for s in statements {
            cz_points.extend([s.c_z.c1, s.c_z.c2]);
            cr_points.extend([s.c_r.c1, s.c_r.c2]);
        }
        // Per-statement G1 combinations: the weighted CRS vectors paired
        // with the proof, and ρ₂·g paired with the target key (the §4
        // "extra pair" has the identity in its first coordinate, so only
        // the second equation contributes g). Each statement's three
        // combinations are independent — computed across threads.
        let per_stmt: Vec<[G1Projective; 3]> = par_map_indexed(statements, |i, s| {
            let w = &rho[2 * i..2 * i + 2];
            [
                msm(&[s.crs.u1.0, s.crs.u1.1], w),
                msm(&[s.crs.u2.0, s.crs.u2.1], w),
                params.g.mul(&w[1]),
            ]
        });
        let mut per_statement: Vec<G1Projective> = Vec::with_capacity(3 * statements.len() + 2);
        for triple in per_stmt {
            per_statement.extend(triple);
        }
        per_statement.extend([msm(&cz_points, &rho), msm(&cr_points, &rho)]);
        let flat = G1Projective::batch_to_affine(&per_statement);
        let (per_statement, columns) = flat.split_at(3 * statements.len());
        let prep = self.dp_prepared();
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::with_capacity(3 * statements.len());
        for (s, g1s) in statements.iter().zip(per_statement.chunks(3)) {
            pairs.push((&g1s[0], &s.proof.pi1));
            pairs.push((&g1s[1], &s.proof.pi2));
            pairs.push((&g1s[2], s.target));
        }
        multi_pairing_mixed(
            &pairs,
            &[(&columns[0], &prep.g_z), (&columns[1], &prep.g_r)],
        )
        .is_identity()
    }

    /// Batch-verifies `k` standard-model signatures on `k` messages under
    /// one public key: one shared multi-pairing (and final
    /// exponentiation) instead of `2k` five-pairing products.
    ///
    /// Returns `true` only if every signature verifies (up to `≈ 2^-255`
    /// batching soundness error); on `false`, fall back to
    /// [`Self::verify`] per item.
    pub fn batch_verify<R: RngCore + ?Sized>(
        &self,
        pk: &StdPublicKey,
        items: &[(&[u8], &StdSignature)],
        rng: &mut R,
    ) -> bool {
        let statements: Vec<GsStatement> = items
            .iter()
            .map(|(msg, sig)| GsStatement {
                crs: self.message_crs(&self.message_digest(msg)),
                c_z: &sig.c_z,
                c_r: &sig.c_r,
                proof: &sig.proof,
                target: &pk.g1,
            })
            .collect();
        self.gs_batch_verify(&statements, rng)
    }

    /// Batch-verifies `k` partial standard-model signatures on the *same*
    /// message (the `Combine` pre-filter): the per-message CRS is
    /// computed once and all `2k` Groth–Sahai equations fold into one
    /// multi-pairing.
    pub fn batch_share_verify<R: RngCore + ?Sized>(
        &self,
        vks: &BTreeMap<u32, StdVerificationKey>,
        msg: &[u8],
        partials: &[StdPartialSignature],
        rng: &mut R,
    ) -> bool {
        let Some(vk_list) = partials
            .iter()
            .map(|p| vks.get(&p.index).filter(|vk| vk.index == p.index))
            .collect::<Option<Vec<&StdVerificationKey>>>()
        else {
            return false;
        };
        let crs = self.message_crs(&self.message_digest(msg));
        let statements: Vec<GsStatement> = partials
            .iter()
            .zip(vk_list.iter())
            .map(|(p, vk)| GsStatement {
                crs,
                c_z: &p.c_z,
                c_r: &p.c_r,
                proof: &p.proof,
                target: &vk.v,
            })
            .collect();
        self.gs_batch_verify(&statements, rng)
    }

    /// Robust §4 `Combine` with batched share verification: one
    /// multi-pairing over all partials in the optimistic case, falling
    /// back to per-share [`Self::share_verify`] filtering when the batch
    /// rejects.
    ///
    /// # Errors
    ///
    /// [`CombineError::NotEnoughValidShares`] when fewer than `t + 1`
    /// partials survive the filter, plus the plain
    /// [`Self::combine`] errors.
    pub fn combine_batch_verified<R: RngCore + ?Sized>(
        &self,
        params: &ThresholdParams,
        vks: &BTreeMap<u32, StdVerificationKey>,
        msg: &[u8],
        partials: &[StdPartialSignature],
        rng: &mut R,
    ) -> Result<StdSignature, CombineError> {
        if partials.len() >= params.reconstruction_size()
            && self.batch_share_verify(vks, msg, partials, rng)
        {
            return self.combine(params, msg, partials, rng);
        }
        let valid: Vec<StdPartialSignature> = partials
            .iter()
            .filter(|p| {
                vks.get(&p.index)
                    .map(|vk| self.share_verify(vk, msg, p))
                    .unwrap_or(false)
            })
            .copied()
            .collect();
        let need = params.reconstruction_size();
        if valid.len() < need {
            return Err(CombineError::NotEnoughValidShares {
                valid: valid.len(),
                need,
            });
        }
        self.combine(params, msg, &valid[..need], rng)
    }
}

impl AggregateScheme {
    /// Batch-checks the Appendix G key-validity witnesses of `ℓ` public
    /// keys with one `(2d+2)`-pairing product over the `d ≤ ℓ` *distinct*
    /// keys (`e(ΣρᵢZᵢ, ĝ_z)·e(ΣρᵢRᵢ, ĝ_r)·Π e(ρᵢg, ĝ₁ᵢ)·e(ρᵢh, ĝ₂ᵢ)`)
    /// instead of `ℓ` separate four-pairing checks with `ℓ` final
    /// exponentiations. Duplicate keys are deduplicated before weighting
    /// (one valid witness is valid however often the key recurs), and the
    /// `2d` weighted bases `ρᵢg`, `ρᵢh` come from the scheme's fixed-base
    /// window tables (the bases are scheme constants), not generic scalar
    /// multiplications.
    pub fn batch_key_valid<R: RngCore + ?Sized>(
        &self,
        keys: &[&AggPublicKey],
        rng: &mut R,
    ) -> bool {
        if keys.is_empty() {
            return true;
        }
        let mut seen = std::collections::BTreeSet::new();
        let distinct: Vec<&AggPublicKey> = keys
            .iter()
            .filter(|k| seen.insert(agg_key_bytes(k)))
            .copied()
            .collect();
        let rho = random_weights(distinct.len(), rng);
        let zs: Vec<G1Affine> = distinct.iter().map(|k| k.z).collect();
        let rs: Vec<G1Affine> = distinct.iter().map(|k| k.r).collect();
        let mut points = vec![msm(&zs, &rho), msm(&rs, &rho)];
        // Per-key weighted bases, fanned out across threads.
        let (g_table, h_table) = self.base_tables();
        for pair in par_map(&rho, |w| [g_table.mul(w), h_table.mul(w)]) {
            points.extend(pair);
        }
        let points = G1Projective::batch_to_affine(&points);
        let prep = self.prepared_dp();
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::with_capacity(2 * distinct.len());
        for (key, gh) in distinct.iter().zip(points[2..].chunks(2)) {
            pairs.push((&gh[0], &key.coords[0]));
            pairs.push((&gh[1], &key.coords[1]));
        }
        multi_pairing_mixed(&pairs, &[(&points[0], &prep.g_z), (&points[1], &prep.g_r)])
            .is_identity()
    }

    /// `Aggregate-Verify` with the per-key sanity checks *folded into*
    /// the product equation, sharing one multi-pairing pass. Two
    /// structural reductions make it cheap:
    ///
    /// * **weight-1 normalization** — the single aggregate-signature
    ///   equation carries weight 1 (divide the classically-weighted
    ///   product by its unit weight `ρ₀`), so the message hashes enter
    ///   the Miller loop without any generic scalar multiplication; only
    ///   the `d ≤ ℓ` *distinct-key* validity equations draw fresh random
    ///   weights `ρ_d`;
    /// * **same-key slot collapse** — pairs sharing their `Ĝ`-side key
    ///   merge (`e(A, Q̂)·e(B, Q̂) = e(A+B, Q̂)`), so the whole statement
    ///   list costs `2d + 2` pairings:
    ///
    /// ```text
    /// e(z + Σ_d ρ_d Z_d, ĝ_z)·e(r + Σ_d ρ_d R_d, ĝ_r)
    ///   ·Π_d e(Σ_{i∈d} H₁ᵢ + ρ_d g, ĝ₁_d)·e(Σ_{i∈d} H₂ᵢ + ρ_d h, ĝ₂_d) = 1
    /// ```
    ///
    /// — versus `ℓ` four-pairing key checks plus the `(2ℓ+2)`-pairing
    /// aggregate equation for [`Self::aggregate_verify`], each with its
    /// own final exponentiation. In the paper's compressed
    /// certification-chain deployment `d` (the number of certifying
    /// authorities) is far smaller than `ℓ` (the chain length), so the
    /// pairing count collapses with it. The normalization keeps the
    /// classical soundness bound: if any *key* equation fails, the fresh
    /// `ρ_d` weights make the product non-identity except with
    /// probability `1/(r-1)`; if only the *signature* equation fails, the
    /// product equals its non-identity value deterministically. The
    /// `ρ_d·g`, `ρ_d·h` terms use the scheme's fixed-base tables.
    /// Agreement between the two paths is property-tested in
    /// `tests/adversarial.rs`.
    pub fn aggregate_verify_batched<R: RngCore + ?Sized>(
        &self,
        statements: &[(AggPublicKey, Vec<u8>)],
        agg: &AggregateSignature,
        rng: &mut R,
    ) -> bool {
        if statements.is_empty() {
            return false;
        }
        // Dense-index the distinct keys in first-appearance order (the
        // order fixes which ρ_d each key draws — deterministic for a
        // deterministic RNG, whatever the thread count).
        let mut group_of: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
        let mut distinct: Vec<&AggPublicKey> = Vec::new();
        let mut stmt_group: Vec<usize> = Vec::with_capacity(statements.len());
        for (pk, _) in statements {
            let next = distinct.len();
            let d = *group_of.entry(agg_key_bytes(pk)).or_insert_with(|| {
                distinct.push(pk);
                next
            });
            stmt_group.push(d);
        }
        let rho = random_weights(distinct.len(), rng);
        let zs: Vec<G1Affine> = distinct.iter().map(|pk| pk.z).collect();
        let rs: Vec<G1Affine> = distinct.iter().map(|pk| pk.r).collect();
        let mut points = vec![
            msm(&zs, &rho) + agg.z.to_projective(),
            msm(&rs, &rho) + agg.r.to_projective(),
        ];
        // Per-statement hashing fans out across threads (hash-to-curve
        // dominates); the per-key slot sums are cheap mixed additions.
        let hashes = par_map(statements, |(pk, msg)| self.hash_message(pk, msg));
        let (g_table, h_table) = self.base_tables();
        let mut slots: Vec<[G1Projective; 2]> = rho
            .iter()
            .map(|w| [g_table.mul(w), h_table.mul(w)])
            .collect();
        for (d, h) in stmt_group.iter().zip(hashes) {
            slots[*d][0] += h[0];
            slots[*d][1] += h[1];
        }
        for pair in slots {
            points.extend(pair);
        }
        let points = G1Projective::batch_to_affine(&points);
        let prep = self.prepared_dp();
        let mut pairs: Vec<(&G1Affine, &G2Affine)> = Vec::with_capacity(2 * distinct.len());
        for (pk, h) in distinct.iter().zip(points[2..].chunks(2)) {
            pairs.push((&h[0], &pk.coords[0]));
            pairs.push((&h[1], &pk.coords[1]));
        }
        multi_pairing_mixed(&pairs, &[(&points[0], &prep.g_z), (&points[1], &prep.g_r)])
            .is_identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ro::KeyMaterial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ThresholdScheme, KeyMaterial, StdRng) {
        let scheme = ThresholdScheme::new(b"core-batch-tests");
        let mut r = StdRng::seed_from_u64(0xbadc);
        let km = scheme.dealer_keygen(ThresholdParams::new(2, 6).unwrap(), &mut r);
        (scheme, km, r)
    }

    fn sign_many(scheme: &ThresholdScheme, km: &KeyMaterial, msgs: &[Vec<u8>]) -> Vec<Signature> {
        msgs.iter()
            .map(|m| {
                let partials: Vec<PartialSignature> = (1..=3u32)
                    .map(|i| scheme.share_sign(&km.shares[&i], m))
                    .collect();
                scheme.combine(&km.params, &partials).unwrap()
            })
            .collect()
    }

    #[test]
    fn degenerate_hash_guard_matches_slow_path() {
        // The slow path rejects all-identity message vectors; the batch
        // guard must classify them the same way.
        use borndist_pairing::G1Projective;
        assert!(degenerate_hash(&[
            G1Projective::identity(),
            G1Projective::identity()
        ]));
        assert!(!degenerate_hash(&[
            G1Projective::generator(),
            G1Projective::identity()
        ]));
        assert!(degenerate_hash(&[]));
    }

    #[test]
    fn batch_verify_accepts_valid_and_rejects_forgery() {
        let (scheme, km, mut r) = setup();
        let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("msg-{}", i).into_bytes()).collect();
        let sigs = sign_many(&scheme, &km, &msgs);
        let items: Vec<(&[u8], &Signature)> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert!(scheme.batch_verify(&km.public_key, &items, &mut r));
        assert!(scheme.batch_verify(&km.public_key, &[], &mut r));
        // Swap one signature onto the wrong message: batch must reject.
        let mut bad_items = items.clone();
        bad_items[3].1 = items[4].1;
        assert!(!scheme.batch_verify(&km.public_key, &bad_items, &mut r));
    }

    #[test]
    fn batch_verify_multi_mixed_keys() {
        let scheme = ThresholdScheme::new(b"core-batch-multi");
        let mut r = StdRng::seed_from_u64(7);
        let kms: Vec<KeyMaterial> = (0..3)
            .map(|_| scheme.dealer_keygen(ThresholdParams::new(1, 3).unwrap(), &mut r))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..3).map(|i| format!("m{}", i).into_bytes()).collect();
        let sigs: Vec<Signature> = kms
            .iter()
            .zip(msgs.iter())
            .map(|(km, m)| {
                let partials: Vec<PartialSignature> = (1..=2u32)
                    .map(|i| scheme.share_sign(&km.shares[&i], m))
                    .collect();
                scheme.combine(&km.params, &partials).unwrap()
            })
            .collect();
        let items: Vec<(&PublicKey, &[u8], &Signature)> = kms
            .iter()
            .zip(msgs.iter())
            .zip(sigs.iter())
            .map(|((km, m), s)| (&km.public_key, m.as_slice(), s))
            .collect();
        assert!(scheme.batch_verify_multi(&items, &mut r));
        // Cross-wire a signature to the wrong key.
        let mut bad = items.clone();
        bad[0].2 = items[1].2;
        assert!(!scheme.batch_verify_multi(&bad, &mut r));
    }

    #[test]
    fn combine_batch_verified_happy_and_byzantine() {
        let (scheme, km, mut r) = setup();
        let msg = b"combine batched";
        let mut partials: Vec<PartialSignature> = (1..=6u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        let sig = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        // Corrupt two shares: the batch rejects, the fallback filters.
        partials[0].sig.z = partials[1].sig.z;
        partials[5].sig.r = partials[1].sig.r;
        let sig = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        // Too few shares at all.
        assert!(matches!(
            scheme.combine_batch_verified(
                &km.params,
                &km.verification_keys,
                msg,
                &partials[..2],
                &mut r
            ),
            Err(CombineError::NotEnoughValidShares { .. })
        ));
    }

    #[test]
    fn prepared_combine_agrees_with_plain() {
        let (scheme, km, mut r) = setup();
        let msg = b"combine prepared";
        let mut partials: Vec<PartialSignature> = (1..=6u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg))
            .collect();
        // Happy path: prepared and plain robust combine produce the same
        // (unique) signature.
        let plain = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap();
        let fast = scheme
            .combine_batch_verified_prepared(&km.params, &km.prepared_vks, msg, &partials, &mut r)
            .unwrap();
        assert_eq!(plain, fast);
        assert!(scheme.verify(&km.public_key, msg, &fast));
        // Byzantine path: two corrupted shares force the prepared
        // per-share fallback filter.
        partials[0].sig.z = partials[1].sig.z;
        partials[5].sig.r = partials[1].sig.r;
        let fast = scheme
            .combine_batch_verified_prepared(&km.params, &km.prepared_vks, msg, &partials, &mut r)
            .unwrap();
        assert_eq!(plain, fast);
        let direct = scheme
            .combine_verified_prepared(&km.params, &km.prepared_vks, msg, &partials)
            .unwrap();
        assert_eq!(plain, direct);
        // Too few valid shares.
        assert_eq!(
            scheme.combine_verified_prepared(&km.params, &km.prepared_vks, msg, &partials[..2]),
            Err(CombineError::NotEnoughValidShares { valid: 1, need: 3 })
        );
        // Unknown index falls through to the filter (and fails there).
        let mut alien = partials[1];
        alien.index = 99;
        assert!(scheme
            .combine_batch_verified_prepared(
                &km.params,
                &km.prepared_vks,
                msg,
                &[alien, partials[1], partials[2]],
                &mut r
            )
            .is_err());
    }

    #[test]
    fn standard_batch_verify_and_shares() {
        let scheme = StandardScheme::new(b"std-batch");
        let mut r = StdRng::seed_from_u64(0x57d2);
        let km = scheme.dealer_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("std-{}", i).into_bytes()).collect();
        let sigs: Vec<StdSignature> = msgs
            .iter()
            .map(|m| {
                let partials: Vec<StdPartialSignature> = (1..=2u32)
                    .map(|i| scheme.share_sign(&km.shares[&i], m, &mut r))
                    .collect();
                scheme.combine(&km.params, m, &partials, &mut r).unwrap()
            })
            .collect();
        let items: Vec<(&[u8], &StdSignature)> = msgs
            .iter()
            .zip(sigs.iter())
            .map(|(m, s)| (m.as_slice(), s))
            .collect();
        assert!(scheme.batch_verify(&km.public_key, &items, &mut r));
        let mut bad = items.clone();
        bad[1].1 = items[2].1;
        assert!(!scheme.batch_verify(&km.public_key, &bad, &mut r));

        // Shares on one message.
        let msg = b"std shares";
        let mut partials: Vec<StdPartialSignature> = (1..=4u32)
            .map(|i| scheme.share_sign(&km.shares[&i], msg, &mut r))
            .collect();
        assert!(scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r));
        let sig = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
        partials[2].c_z = partials[3].c_z;
        assert!(!scheme.batch_share_verify(&km.verification_keys, msg, &partials, &mut r));
        let sig = scheme
            .combine_batch_verified(&km.params, &km.verification_keys, msg, &partials, &mut r)
            .unwrap();
        assert!(scheme.verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn aggregate_batched_paths_agree_with_plain() {
        let scheme = AggregateScheme::new(b"agg-batch");
        let mut r = StdRng::seed_from_u64(0xa66);
        let params = ThresholdParams::new(1, 4).unwrap();
        let inputs: Vec<(AggPublicKey, Vec<u8>, Signature)> = (0..3)
            .map(|i| {
                let (pk, km) = scheme.dealer_keygen(params, &mut r);
                let msg = format!("cert-{}", i).into_bytes();
                let partials: Vec<PartialSignature> = (1..=2u32)
                    .map(|j| scheme.share_sign(&pk, &km.shares[&j], &msg))
                    .collect();
                let sig = scheme.combine(&params, &partials).unwrap();
                (pk, msg, sig)
            })
            .collect();
        let keys: Vec<&AggPublicKey> = inputs.iter().map(|(pk, _, _)| pk).collect();
        assert!(scheme.batch_key_valid(&keys, &mut r));
        assert!(scheme.batch_key_valid(&[], &mut r));
        let agg = scheme.aggregate(&inputs).unwrap();
        let statements: Vec<(AggPublicKey, Vec<u8>)> = inputs
            .iter()
            .map(|(pk, m, _)| (pk.clone(), m.clone()))
            .collect();
        assert!(scheme.aggregate_verify_batched(&statements, &agg, &mut r));
        assert!(scheme.aggregate_verify(&statements, &agg));
        // Tampered statement rejected by both paths.
        let mut bad = statements.clone();
        bad[0].1 = b"cert-X".to_vec();
        assert!(!scheme.aggregate_verify_batched(&bad, &agg, &mut r));
        assert!(!scheme.aggregate_verify(&bad, &agg));
        // A key with a corrupted witness fails the batched check too.
        let mut bad_key = inputs[0].0.clone();
        bad_key.z = bad_key.r;
        assert!(!scheme.batch_key_valid(&[&bad_key, &inputs[1].0], &mut r));
        let mut bad_stmts = statements.clone();
        bad_stmts[0].0 = bad_key;
        assert!(!scheme.aggregate_verify_batched(&bad_stmts, &agg, &mut r));
        assert!(!scheme.aggregate_verify_batched(&[], &agg, &mut r));
    }
}
