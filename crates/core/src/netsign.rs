//! Threshold signing as a network protocol: partial signatures crossing
//! a real [`Transport`](borndist_net::TransportKind) as encoded frames.
//!
//! The §3 scheme's signing is non-interactive — a signer needs only its
//! share and the message — so the network shape is minimal: each signer
//! sends its [`PartialSignature`] over the private channel to a
//! designated combiner, which verifies shares as they arrive
//! (`Share-Verify`), combines the first `t+1` valid ones, and broadcasts
//! the resulting [`Signature`]. Everyone verifies the broadcast against
//! the public key and finishes.
//!
//! Two properties matter here:
//!
//! * **loss tolerance** — signers *re-send* their partial every round
//!   until they see a valid combined signature, so the protocol
//!   terminates over a lossy [`borndist_net::DeliveryPolicy`] (the
//!   private links may drop; the combined-signature broadcast is
//!   reliable by the model). That is the whole retransmission story: no
//!   acks, no sequence numbers, because partial signatures are
//!   idempotent and deterministic.
//! * **byte discipline** — like the DKG, players decode-validate-then-
//!   process: a malformed frame is ignored exactly like a dropped one,
//!   and a partial signature that fails `Share-Verify` is discarded, so
//!   Byzantine signers can delay nothing and forge nothing.

use crate::ro::{PartialSignature, PublicKey, Signature, ThresholdScheme, VerificationKey};
use borndist_net::{
    run_protocol, BoxedPlayer, Delivered, Metrics, Outgoing, PlayerId, Protocol, Recipient,
    RoundAction, SimError, TransportKind,
};
use borndist_pairing::codec::{CodecError, Wire};
use borndist_shamir::ThresholdParams;
use std::collections::BTreeMap;

/// A wire message of the signing protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignMessage {
    /// A signer's partial signature, sent privately to the combiner.
    Partial(PartialSignature),
    /// The combiner's broadcast of the combined signature.
    Combined(Signature),
}

const TAG_PARTIAL: u8 = 0;
const TAG_COMBINED: u8 = 1;

impl Wire for SignMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            SignMessage::Partial(p) => {
                out.push(TAG_PARTIAL);
                p.encode_to(out);
            }
            SignMessage::Combined(s) => {
                out.push(TAG_COMBINED);
                s.encode_to(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_PARTIAL => Ok(SignMessage::Partial(PartialSignature::decode(input)?)),
            TAG_COMBINED => Ok(SignMessage::Combined(Signature::decode(input)?)),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// One participant of a networked signing run.
pub struct SigningPlayer {
    scheme: ThresholdScheme,
    params: ThresholdParams,
    public_key: PublicKey,
    vks: BTreeMap<u32, VerificationKey>,
    combiner: PlayerId,
    id: PlayerId,
    msg: Vec<u8>,
    /// This player's own partial (computed once; signing is
    /// deterministic, so retransmissions are byte-identical).
    own_partial: PartialSignature,
    /// Valid partials collected so far (combiner role).
    collected: BTreeMap<u32, PartialSignature>,
    /// Set once the combined signature is broadcast/seen.
    broadcasted: bool,
}

impl SigningPlayer {
    /// Builds one signing participant.
    pub fn new(
        scheme: ThresholdScheme,
        params: ThresholdParams,
        public_key: PublicKey,
        vks: BTreeMap<u32, VerificationKey>,
        share: &crate::ro::KeyShare,
        combiner: PlayerId,
        msg: Vec<u8>,
    ) -> Self {
        let own_partial = scheme.share_sign(share, &msg);
        let id = share.index;
        let mut collected = BTreeMap::new();
        if id == combiner {
            collected.insert(id, own_partial);
        }
        SigningPlayer {
            scheme,
            params,
            public_key,
            vks,
            combiner,
            id,
            msg,
            own_partial,
            collected,
            broadcasted: false,
        }
    }

    fn absorb(&mut self, inbox: &[Delivered<SignMessage>]) -> Option<Signature> {
        for d in inbox {
            // Decode-validate-then-process: malformed frames are treated
            // exactly like lost ones (the sender will retransmit).
            match &d.msg {
                Ok(SignMessage::Combined(sig))
                    if d.broadcast && self.scheme.verify(&self.public_key, &self.msg, sig) =>
                {
                    return Some(*sig);
                }
                Ok(SignMessage::Partial(p))
                    if !d.broadcast
                        && self.id == self.combiner
                        && p.index == d.from
                        && self
                            .vks
                            .get(&p.index)
                            .is_some_and(|vk| self.scheme.share_verify(vk, &self.msg, p)) =>
                {
                    self.collected.insert(p.index, *p);
                }
                _ => {}
            }
        }
        None
    }
}

impl Protocol for SigningPlayer {
    type Message = SignMessage;
    type Output = Signature;

    fn round(
        &mut self,
        _round: usize,
        inbox: &[Delivered<SignMessage>],
    ) -> RoundAction<SignMessage, Signature> {
        if let Some(sig) = self.absorb(inbox) {
            return RoundAction::Finish(sig);
        }
        let mut out = Vec::new();
        if self.id == self.combiner {
            if !self.broadcasted && self.collected.len() >= self.params.reconstruction_size() {
                let partials: Vec<PartialSignature> = self.collected.values().copied().collect();
                let sig = self
                    .scheme
                    .combine(&self.params, &partials)
                    .expect("collected >= t+1 verified partials");
                self.broadcasted = true;
                // The broadcast reaches the combiner itself next round,
                // which is when it finishes (uniform exit path).
                out.push(Outgoing {
                    to: Recipient::Broadcast,
                    msg: SignMessage::Combined(sig),
                });
            }
        } else {
            // Retransmit until the combined signature arrives.
            out.push(Outgoing {
                to: Recipient::Private(self.combiner),
                msg: SignMessage::Partial(self.own_partial),
            });
        }
        RoundAction::Continue(out)
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Runs a networked signing round over the given transport: `signers`
/// (which must include `combiner`) exchange encoded frames until every
/// player holds the combined signature.
///
/// Returns each player's verified signature plus traffic metrics.
///
/// # Errors
///
/// Transport errors, including [`SimError::RoundLimitExceeded`] if the
/// policy is lossy enough that the quorum never assembles within
/// `max_rounds`.
///
/// # Panics
///
/// Panics if `signers` has fewer than `t+1` entries, a signer id has no
/// share in `km`, or `combiner` is not among `signers`.
pub fn run_threshold_sign(
    scheme: &ThresholdScheme,
    km: &crate::ro::KeyMaterial,
    msg: &[u8],
    signers: &[u32],
    combiner: PlayerId,
    transport: &TransportKind,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, Signature>, Metrics), SimError> {
    assert!(
        signers.len() >= km.params.reconstruction_size(),
        "need at least t+1 signers"
    );
    assert!(
        signers.contains(&combiner),
        "the combiner must be one of the signers"
    );
    let players: Vec<BoxedPlayer<SignMessage, Signature>> = signers
        .iter()
        .map(|id| {
            Box::new(SigningPlayer::new(
                scheme.clone(),
                km.params,
                km.public_key.clone(),
                km.verification_keys.clone(),
                &km.shares[id],
                combiner,
                msg.to_vec(),
            )) as _
        })
        .collect();
    run_protocol(transport, players, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_net::DeliveryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ThresholdScheme, crate::ro::KeyMaterial) {
        let scheme = ThresholdScheme::new(b"netsign-tests");
        let mut r = StdRng::seed_from_u64(0x517);
        let km = scheme.dealer_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        (scheme, km)
    }

    #[test]
    fn sign_message_wire_roundtrip() {
        let (scheme, km) = setup();
        let p = scheme.share_sign(&km.shares[&2], b"wire");
        let partials: Vec<PartialSignature> = [1u32, 2]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], b"wire"))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        for msg in [SignMessage::Partial(p), SignMessage::Combined(sig)] {
            let enc = msg.encode();
            assert_eq!(SignMessage::decode_exact(&enc).unwrap(), msg);
        }
        assert!(matches!(
            SignMessage::decode_exact(&[7]),
            Err(CodecError::InvalidTag(7))
        ));
    }

    #[test]
    fn lockstep_and_channel_sign_identically() {
        let (scheme, km) = setup();
        let msg = b"network signing";
        let (out_l, m_l) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3],
            1,
            &TransportKind::Lockstep,
            10,
        )
        .unwrap();
        let (out_c, m_c) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3],
            1,
            &TransportKind::Channel(DeliveryPolicy::reliable()),
            10,
        )
        .unwrap();
        assert_eq!(out_l, out_c);
        assert!(m_l.same_traffic(&m_c));
        for sig in out_l.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Signature uniqueness: every player holds the same signature.
        let first = out_l.values().next().unwrap();
        assert!(out_l.values().all(|s| s == first));
    }

    #[test]
    fn signing_survives_heavy_private_loss() {
        let (scheme, km) = setup();
        let msg = b"lossy signing";
        let policy = DeliveryPolicy::lossy(0xbad5eed, 0.5);
        let (out, metrics) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3, 4],
            2,
            &TransportKind::Channel(policy),
            60,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        for sig in out.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Loss-free baseline: 3 partials in round 0, the same 3
        // retransmitted in round 1 plus the combined broadcast, finish
        // in round 2 — 7 messages over 3 rounds.
        assert!(metrics.messages >= 7);
    }

    #[test]
    fn retransmission_carries_signing_through_a_combiner_outage() {
        // The combiner's links are down for the first three rounds, so
        // *only* the per-round retransmission of partial signatures can
        // ever assemble the quorum — a broken retransmission path fails
        // this test with RoundLimitExceeded.
        let (scheme, km) = setup();
        let msg = b"outage signing";
        let policy = DeliveryPolicy {
            outages: vec![borndist_net::Outage {
                player: 2,
                from_round: 0,
                until_round: 3,
            }],
            ..DeliveryPolicy::default()
        };
        let (out, metrics) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3, 4],
            2,
            &TransportKind::Channel(policy),
            60,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        for sig in out.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Partials first arrive in round 3, combine in round 4 at the
        // earliest: strictly more traffic and rounds than the loss-free
        // baseline (7 messages, 3 rounds).
        assert!(metrics.total_rounds > 3);
        assert!(metrics.messages > 7);
    }
}
