//! Threshold signing as a network protocol: partial signatures crossing
//! a real [`Transport`](borndist_net::TransportKind) as encoded frames.
//!
//! The §3 scheme's signing is non-interactive — a signer needs only its
//! share and the message — so the network shape is minimal: each signer
//! sends its [`PartialSignature`] over the private channel to a
//! designated combiner, which verifies shares as they arrive
//! (`Share-Verify`), combines the first `t+1` valid ones, and broadcasts
//! the resulting [`Signature`]. Everyone verifies the broadcast against
//! the public key and finishes.
//!
//! Two properties matter here:
//!
//! * **loss tolerance** — signers *re-send* their partial every round
//!   until they see a valid combined signature, so the protocol
//!   terminates over a lossy [`borndist_net::DeliveryPolicy`] (the
//!   private links may drop; the combined-signature broadcast is
//!   reliable by the model). That is the whole retransmission story: no
//!   acks, no sequence numbers, because partial signatures are
//!   idempotent and deterministic.
//! * **byte discipline** — like the DKG, players decode-validate-then-
//!   process: a malformed frame is ignored exactly like a dropped one,
//!   and a partial signature that fails `Share-Verify` is discarded, so
//!   Byzantine signers can delay nothing and forge nothing.

use crate::ro::{
    KeyShare, PartialSignature, PublicKey, Signature, ThresholdScheme, VerificationKey,
};
use borndist_net::{
    run_protocol, BoxedPlayer, Delivered, Metrics, Outgoing, PlayerId, Protocol, Recipient,
    RoundAction, TransportKind,
};
use borndist_pairing::codec::{CodecError, Wire};
use borndist_shamir::ThresholdParams;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A wire message of the signing protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignMessage {
    /// A signer's partial signature, sent privately to the combiner.
    Partial(PartialSignature),
    /// The combiner's broadcast of the combined signature.
    Combined(Signature),
}

const TAG_PARTIAL: u8 = 0;
const TAG_COMBINED: u8 = 1;

impl Wire for SignMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            SignMessage::Partial(p) => {
                out.push(TAG_PARTIAL);
                p.encode_to(out);
            }
            SignMessage::Combined(s) => {
                out.push(TAG_COMBINED);
                s.encode_to(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_PARTIAL => Ok(SignMessage::Partial(PartialSignature::decode(input)?)),
            TAG_COMBINED => Ok(SignMessage::Combined(Signature::decode(input)?)),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// One participant of a networked signing run.
pub struct SigningPlayer {
    scheme: ThresholdScheme,
    params: ThresholdParams,
    public_key: PublicKey,
    vks: BTreeMap<u32, VerificationKey>,
    combiner: PlayerId,
    id: PlayerId,
    msg: Vec<u8>,
    /// This player's own partial (computed once; signing is
    /// deterministic, so retransmissions are byte-identical).
    own_partial: PartialSignature,
    /// Valid partials collected so far (combiner role).
    collected: BTreeMap<u32, PartialSignature>,
    /// Set once the combined signature is broadcast/seen.
    broadcasted: bool,
}

impl SigningPlayer {
    /// Builds one signing participant.
    pub fn new(
        scheme: ThresholdScheme,
        params: ThresholdParams,
        public_key: PublicKey,
        vks: BTreeMap<u32, VerificationKey>,
        share: &crate::ro::KeyShare,
        combiner: PlayerId,
        msg: Vec<u8>,
    ) -> Self {
        let own_partial = scheme.share_sign(share, &msg);
        let id = share.index;
        let mut collected = BTreeMap::new();
        if id == combiner {
            collected.insert(id, own_partial);
        }
        SigningPlayer {
            scheme,
            params,
            public_key,
            vks,
            combiner,
            id,
            msg,
            own_partial,
            collected,
            broadcasted: false,
        }
    }

    fn absorb(&mut self, inbox: &[Delivered<SignMessage>]) -> Option<Signature> {
        for d in inbox {
            // Decode-validate-then-process: malformed frames are treated
            // exactly like lost ones (the sender will retransmit).
            match &d.msg {
                Ok(SignMessage::Combined(sig))
                    if d.broadcast && self.scheme.verify(&self.public_key, &self.msg, sig) =>
                {
                    return Some(*sig);
                }
                Ok(SignMessage::Partial(p))
                    if !d.broadcast
                        && self.id == self.combiner
                        && p.index == d.from
                        && self
                            .vks
                            .get(&p.index)
                            .is_some_and(|vk| self.scheme.share_verify(vk, &self.msg, p)) =>
                {
                    self.collected.insert(p.index, *p);
                }
                _ => {}
            }
        }
        None
    }
}

impl Protocol for SigningPlayer {
    type Message = SignMessage;
    type Output = Signature;

    fn round(
        &mut self,
        _round: usize,
        inbox: &[Delivered<SignMessage>],
    ) -> RoundAction<SignMessage, Signature> {
        if let Some(sig) = self.absorb(inbox) {
            return RoundAction::Finish(sig);
        }
        let mut out = Vec::new();
        if self.id == self.combiner {
            if !self.broadcasted && self.collected.len() >= self.params.reconstruction_size() {
                let partials: Vec<PartialSignature> = self.collected.values().copied().collect();
                let sig = self
                    .scheme
                    .combine(&self.params, &partials)
                    .expect("collected >= t+1 verified partials");
                self.broadcasted = true;
                // The broadcast reaches the combiner itself next round,
                // which is when it finishes (uniform exit path).
                out.push(Outgoing {
                    to: Recipient::Broadcast,
                    msg: SignMessage::Combined(sig),
                });
            }
        } else {
            // Retransmit until the combined signature arrives.
            out.push(Outgoing {
                to: Recipient::Private(self.combiner),
                msg: SignMessage::Partial(self.own_partial),
            });
        }
        RoundAction::Continue(out)
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Runs a networked signing round over the given transport: `signers`
/// (which must include `combiner`) exchange encoded frames until every
/// player holds the combined signature.
///
/// Returns each player's verified signature plus traffic metrics.
///
/// # Errors
///
/// Transport errors, including [`borndist_net::SimError::RoundLimitExceeded`] if the
/// policy is lossy enough that the quorum never assembles within
/// `max_rounds`.
///
/// # Panics
///
/// Panics if `signers` has fewer than `t+1` entries, a signer id has no
/// share in `km`, or `combiner` is not among `signers`.
pub fn run_threshold_sign(
    scheme: &ThresholdScheme,
    km: &crate::ro::KeyMaterial,
    msg: &[u8],
    signers: &[u32],
    combiner: PlayerId,
    transport: &TransportKind,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, Signature>, Metrics), borndist_net::Error> {
    assert!(
        signers.len() >= km.params.reconstruction_size(),
        "need at least t+1 signers"
    );
    assert!(
        signers.contains(&combiner),
        "the combiner must be one of the signers"
    );
    let players: Vec<BoxedPlayer<SignMessage, Signature>> = signers
        .iter()
        .map(|id| {
            Box::new(SigningPlayer::new(
                scheme.clone(),
                km.params,
                km.public_key.clone(),
                km.verification_keys.clone(),
                &km.shares[id],
                combiner,
                msg.to_vec(),
            )) as _
        })
        .collect();
    run_protocol(transport, players, max_rounds)
}

// ---------------------------------------------------------------------
// Session multiplexing: many concurrent signing sessions over ONE
// long-lived protocol run — the engine of the threshold-signing daemon.
// ---------------------------------------------------------------------

/// A wire message of the multiplexed signing protocol. Every message
/// carries the session id (the client's request id), so one mesh of
/// players can drive any number of concurrent [`SignMessage`]-style
/// exchanges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MuxMessage {
    /// Coordinator broadcast: start signing `msg` under `session`.
    Open {
        /// Request id, chosen by the client.
        session: u64,
        /// The message to sign.
        msg: Vec<u8>,
    },
    /// Signer → per-session combiner (private): a partial signature.
    Partial {
        /// The session this partial belongs to.
        session: u64,
        /// The partial (idempotent, deterministic — retransmittable).
        psig: PartialSignature,
    },
    /// Combiner broadcast: the session's combined signature.
    Done {
        /// The completed session.
        session: u64,
        /// The unique combined signature.
        sig: Signature,
    },
    /// Coordinator broadcast: no more sessions will open; everyone
    /// finishes.
    Shutdown,
}

const TAG_OPEN: u8 = 0;
const TAG_MUX_PARTIAL: u8 = 1;
const TAG_DONE: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;

impl Wire for MuxMessage {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            MuxMessage::Open { session, msg } => {
                out.push(TAG_OPEN);
                session.encode_to(out);
                msg.encode_to(out);
            }
            MuxMessage::Partial { session, psig } => {
                out.push(TAG_MUX_PARTIAL);
                session.encode_to(out);
                psig.encode_to(out);
            }
            MuxMessage::Done { session, sig } => {
                out.push(TAG_DONE);
                session.encode_to(out);
                sig.encode_to(out);
            }
            MuxMessage::Shutdown => out.push(TAG_SHUTDOWN),
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            TAG_OPEN => Ok(MuxMessage::Open {
                session: u64::decode(input)?,
                msg: Vec::<u8>::decode(input)?,
            }),
            TAG_MUX_PARTIAL => Ok(MuxMessage::Partial {
                session: u64::decode(input)?,
                psig: PartialSignature::decode(input)?,
            }),
            TAG_DONE => Ok(MuxMessage::Done {
                session: u64::decode(input)?,
                sig: Signature::decode(input)?,
            }),
            TAG_SHUTDOWN => Ok(MuxMessage::Shutdown),
            tag => Err(CodecError::InvalidTag(tag)),
        }
    }
}

/// What a multiplexed run returns per player: every combined signature
/// the player observed, keyed by session id, plus (coordinator only)
/// the in-flight high-water mark the backpressure bound was measured
/// at and the per-request service latencies.
#[derive(Clone, Debug, Default)]
pub struct MuxOutcome {
    /// Verified combined signatures by session id.
    pub signatures: BTreeMap<u64, Signature>,
    /// Maximum number of sessions that were simultaneously in flight
    /// (0 for signer players — only the coordinator opens sessions).
    pub high_water: usize,
    /// Enqueue→verified-response wall-clock per session (coordinator
    /// only): stamped when the request entered the coordinator's queue —
    /// construction for [`MuxCoordinator::with_requests`], channel
    /// arrival for [`MuxCoordinator::with_intake`] — and closed when the
    /// verified `Done` signature retires the session. Queueing delay
    /// under the backpressure bound is therefore *included*: this is the
    /// client-observed service time, the histogram the load harness and
    /// the daemon front-end both summarize.
    pub latencies: BTreeMap<u64, Duration>,
}

/// Per-session signer state.
struct MuxSession {
    msg: Vec<u8>,
    own_partial: PartialSignature,
    /// Valid partials collected so far (this session's combiner only).
    collected: BTreeMap<u32, PartialSignature>,
    broadcasted: bool,
    done: Option<Signature>,
}

/// The session combiner rotates deterministically over the signer set,
/// so concurrent sessions spread the combine work instead of funneling
/// through one player.
fn combiner_of(signer_ids: &[PlayerId], session: u64) -> PlayerId {
    signer_ids[(session % signer_ids.len() as u64) as usize]
}

/// One signing node of the daemon: holds a key share and serves every
/// session the coordinator opens, combining those sessions it is the
/// rotating combiner for. Loss tolerance is per session, identical to
/// [`SigningPlayer`]: partials are retransmitted every round until the
/// session's `Done` broadcast arrives.
pub struct MuxSignerPlayer {
    scheme: ThresholdScheme,
    params: ThresholdParams,
    public_key: PublicKey,
    vks: BTreeMap<u32, VerificationKey>,
    share: KeyShare,
    signer_ids: Vec<PlayerId>,
    id: PlayerId,
    sessions: BTreeMap<u64, MuxSession>,
    shutdown: bool,
}

impl MuxSignerPlayer {
    /// Builds one signing node. `signer_ids` must be the same (sorted)
    /// list on every player — it defines the combiner rotation.
    pub fn new(
        scheme: ThresholdScheme,
        params: ThresholdParams,
        public_key: PublicKey,
        vks: BTreeMap<u32, VerificationKey>,
        share: KeyShare,
        mut signer_ids: Vec<PlayerId>,
    ) -> Self {
        signer_ids.sort_unstable();
        let id = share.index;
        MuxSignerPlayer {
            scheme,
            params,
            public_key,
            vks,
            share,
            signer_ids,
            id,
            sessions: BTreeMap::new(),
            shutdown: false,
        }
    }

    fn absorb(&mut self, inbox: &[Delivered<MuxMessage>]) {
        for d in inbox {
            // Decode-validate-then-process: malformed frames are ignored
            // like lost ones; invalid partials are discarded after
            // Share-Verify.
            match &d.msg {
                Ok(MuxMessage::Open { session, msg }) if d.broadcast => {
                    if self.sessions.contains_key(session) {
                        continue;
                    }
                    let own_partial = self.scheme.share_sign(&self.share, msg);
                    let mut collected = BTreeMap::new();
                    if combiner_of(&self.signer_ids, *session) == self.id {
                        collected.insert(self.id, own_partial);
                    }
                    self.sessions.insert(
                        *session,
                        MuxSession {
                            msg: msg.clone(),
                            own_partial,
                            collected,
                            broadcasted: false,
                            done: None,
                        },
                    );
                }
                Ok(MuxMessage::Partial { session, psig }) if !d.broadcast => {
                    let combiner = combiner_of(&self.signer_ids, *session);
                    if combiner != self.id || psig.index != d.from {
                        continue;
                    }
                    let Some(state) = self.sessions.get_mut(session) else {
                        continue;
                    };
                    if state.done.is_none()
                        && self
                            .vks
                            .get(&psig.index)
                            .is_some_and(|vk| self.scheme.share_verify(vk, &state.msg, psig))
                    {
                        state.collected.insert(psig.index, *psig);
                    }
                }
                Ok(MuxMessage::Done { session, sig }) if d.broadcast => {
                    if let Some(state) = self.sessions.get_mut(session) {
                        if state.done.is_none()
                            && self.scheme.verify(&self.public_key, &state.msg, sig)
                        {
                            state.done = Some(*sig);
                        }
                    }
                }
                Ok(MuxMessage::Shutdown) if d.broadcast => self.shutdown = true,
                _ => {}
            }
        }
    }
}

impl Protocol for MuxSignerPlayer {
    type Message = MuxMessage;
    type Output = MuxOutcome;

    fn round(
        &mut self,
        _round: usize,
        inbox: &[Delivered<MuxMessage>],
    ) -> RoundAction<MuxMessage, MuxOutcome> {
        self.absorb(inbox);
        if self.shutdown {
            // The coordinator only shuts down once every opened session
            // is done, so nothing in flight is abandoned here.
            let signatures = self
                .sessions
                .iter()
                .filter_map(|(s, st)| st.done.map(|sig| (*s, sig)))
                .collect();
            return RoundAction::Finish(MuxOutcome {
                signatures,
                high_water: 0,
                latencies: BTreeMap::new(),
            });
        }
        let mut out = Vec::new();
        let quorum = self.params.reconstruction_size();
        for (session, state) in self.sessions.iter_mut() {
            if state.done.is_some() {
                continue;
            }
            let combiner = combiner_of(&self.signer_ids, *session);
            if combiner == self.id {
                if !state.broadcasted && state.collected.len() >= quorum {
                    let partials: Vec<PartialSignature> =
                        state.collected.values().copied().collect();
                    let sig = self
                        .scheme
                        .combine(&self.params, &partials)
                        .expect("collected >= t+1 verified partials");
                    state.broadcasted = true;
                    out.push(Outgoing {
                        to: Recipient::Broadcast,
                        msg: MuxMessage::Done {
                            session: *session,
                            sig,
                        },
                    });
                }
            } else {
                // Retransmit until this session's Done arrives.
                out.push(Outgoing {
                    to: Recipient::Private(combiner),
                    msg: MuxMessage::Partial {
                        session: *session,
                        psig: state.own_partial,
                    },
                });
            }
        }
        RoundAction::Continue(out)
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// The front-end of the daemon, as a protocol player: feeds signing
/// requests into the mesh as `Open` broadcasts, bounded by
/// `max_in_flight` (the backpressure knob), collects `Done` signatures,
/// and closes the run with a `Shutdown` broadcast once every session
/// completed and no more requests can arrive.
///
/// Requests come either from a fixed queue ([`Self::with_requests`] —
/// deterministic, used by tests and benchmarks) or from a live channel
/// ([`Self::with_intake`] — the daemon path, where a socket thread
/// feeds requests mid-run and completed signatures flow back out).
pub struct MuxCoordinator {
    id: PlayerId,
    scheme: ThresholdScheme,
    public_key: PublicKey,
    pending: VecDeque<(u64, Vec<u8>)>,
    intake: Option<mpsc::Receiver<(u64, Vec<u8>)>>,
    completed_tx: Option<mpsc::Sender<(u64, Signature)>>,
    intake_open: bool,
    max_in_flight: usize,
    in_flight: BTreeSet<u64>,
    done: BTreeMap<u64, Signature>,
    /// Messages of sessions in flight, for Done verification.
    open_msgs: BTreeMap<u64, Vec<u8>>,
    /// Enqueue stamps of requests not yet retired (queued or in
    /// flight) — the start of the client-observed service time.
    enqueued: BTreeMap<u64, Instant>,
    /// Closed enqueue→verified-response samples.
    latencies: BTreeMap<u64, Duration>,
    high_water: usize,
    closing: bool,
}

impl MuxCoordinator {
    fn base(
        id: PlayerId,
        scheme: ThresholdScheme,
        public_key: PublicKey,
        max_in_flight: usize,
    ) -> Self {
        assert!(max_in_flight >= 1, "backpressure bound must be positive");
        MuxCoordinator {
            id,
            scheme,
            public_key,
            pending: VecDeque::new(),
            intake: None,
            completed_tx: None,
            intake_open: false,
            max_in_flight,
            in_flight: BTreeSet::new(),
            done: BTreeMap::new(),
            open_msgs: BTreeMap::new(),
            enqueued: BTreeMap::new(),
            latencies: BTreeMap::new(),
            high_water: 0,
            closing: false,
        }
    }

    /// A coordinator with a fixed request queue (deterministic runs).
    /// The whole queue counts as enqueued at construction, so reported
    /// latencies include the time spent waiting behind the backpressure
    /// bound — identical semantics to the live-intake path.
    pub fn with_requests(
        id: PlayerId,
        scheme: ThresholdScheme,
        public_key: PublicKey,
        max_in_flight: usize,
        requests: Vec<(u64, Vec<u8>)>,
    ) -> Self {
        let mut c = Self::base(id, scheme, public_key, max_in_flight);
        let now = Instant::now();
        for (session, _) in &requests {
            c.enqueued.insert(*session, now);
        }
        c.pending = requests.into();
        c
    }

    /// A coordinator fed by a live channel: `intake` delivers
    /// `(request id, message)` pairs (the run keeps serving until the
    /// sender side is dropped), and each completed signature is pushed
    /// into `completed`.
    pub fn with_intake(
        id: PlayerId,
        scheme: ThresholdScheme,
        public_key: PublicKey,
        max_in_flight: usize,
        intake: mpsc::Receiver<(u64, Vec<u8>)>,
        completed: mpsc::Sender<(u64, Signature)>,
    ) -> Self {
        let mut c = Self::base(id, scheme, public_key, max_in_flight);
        c.intake = Some(intake);
        c.completed_tx = Some(completed);
        c.intake_open = true;
        c
    }
}

impl Protocol for MuxCoordinator {
    type Message = MuxMessage;
    type Output = MuxOutcome;

    fn round(
        &mut self,
        _round: usize,
        inbox: &[Delivered<MuxMessage>],
    ) -> RoundAction<MuxMessage, MuxOutcome> {
        if self.closing {
            return RoundAction::Finish(MuxOutcome {
                signatures: std::mem::take(&mut self.done),
                high_water: self.high_water,
                latencies: std::mem::take(&mut self.latencies),
            });
        }

        // Collect completed sessions (signatures verify against the
        // session's message before a session is retired).
        for d in inbox {
            if let Ok(MuxMessage::Done { session, sig }) = &d.msg {
                if !d.broadcast || !self.in_flight.contains(session) {
                    continue;
                }
                let Some(msg) = self.open_msgs.get(session) else {
                    continue;
                };
                if self.scheme.verify(&self.public_key, msg, sig) {
                    self.in_flight.remove(session);
                    self.open_msgs.remove(session);
                    self.done.insert(*session, *sig);
                    if let Some(start) = self.enqueued.remove(session) {
                        self.latencies.insert(*session, start.elapsed());
                    }
                    if let Some(tx) = &self.completed_tx {
                        let _ = tx.send((*session, *sig));
                    }
                }
            }
        }

        // Pull newly arrived requests (daemon path).
        if self.intake_open {
            if let Some(rx) = &self.intake {
                loop {
                    match rx.try_recv() {
                        Ok(req) => {
                            self.enqueued.insert(req.0, Instant::now());
                            self.pending.push_back(req);
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            self.intake_open = false;
                            break;
                        }
                    }
                }
            }
        }

        // Open sessions up to the backpressure bound.
        let mut out = Vec::new();
        while self.in_flight.len() < self.max_in_flight {
            let Some((session, msg)) = self.pending.pop_front() else {
                break;
            };
            if self.in_flight.contains(&session) || self.done.contains_key(&session) {
                continue;
            }
            self.in_flight.insert(session);
            self.open_msgs.insert(session, msg.clone());
            out.push(Outgoing {
                to: Recipient::Broadcast,
                msg: MuxMessage::Open { session, msg },
            });
        }
        self.high_water = self.high_water.max(self.in_flight.len());

        // Drained and idle with no way to get new work: close the run.
        if !self.intake_open && self.pending.is_empty() && self.in_flight.is_empty() {
            self.closing = true;
            out.push(Outgoing {
                to: Recipient::Broadcast,
                msg: MuxMessage::Shutdown,
            });
        } else if self.intake.is_some() && out.is_empty() && inbox.is_empty() {
            // Live daemon with nothing to do this round: yield briefly so
            // an idle mesh doesn't spin the CPU between client requests.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        RoundAction::Continue(out)
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Runs a fixed batch of signing requests through a multiplexed session
/// mesh: `signers` (each holding its share from `km`) plus a
/// coordinator player `coordinator` (not a signer), with at most
/// `max_in_flight` sessions open at once.
///
/// Returns the coordinator's [`MuxOutcome`] (all signatures plus the
/// high-water mark) and the run's traffic metrics. Deterministic for a
/// given request list, whichever transport runs it.
///
/// # Errors
///
/// Transport failures ([`borndist_net::Error`]), including
/// [`borndist_net::SimError::RoundLimitExceeded`] if `max_rounds` cannot cover the
/// batch (each pipelined wave of sessions needs a handful of rounds).
///
/// # Panics
///
/// Panics if `signers` has fewer than `t+1` entries, a signer id has no
/// share in `km`, or `coordinator` collides with a signer id.
#[allow(clippy::too_many_arguments)]
pub fn run_mux_sign(
    scheme: &ThresholdScheme,
    km: &crate::ro::KeyMaterial,
    requests: &[(u64, Vec<u8>)],
    signers: &[u32],
    coordinator: PlayerId,
    max_in_flight: usize,
    transport: &TransportKind,
    max_rounds: usize,
) -> Result<(MuxOutcome, Metrics), borndist_net::Error> {
    assert!(
        signers.len() >= km.params.reconstruction_size(),
        "need at least t+1 signers"
    );
    assert!(
        !signers.contains(&coordinator),
        "the coordinator must not be a signer"
    );
    let signer_ids: Vec<PlayerId> = signers.to_vec();
    let mut players: Vec<BoxedPlayer<MuxMessage, MuxOutcome>> = signers
        .iter()
        .map(|id| {
            Box::new(MuxSignerPlayer::new(
                scheme.clone(),
                km.params,
                km.public_key.clone(),
                km.verification_keys.clone(),
                km.shares[id].clone(),
                signer_ids.clone(),
            )) as _
        })
        .collect();
    players.push(Box::new(MuxCoordinator::with_requests(
        coordinator,
        scheme.clone(),
        km.public_key.clone(),
        max_in_flight,
        requests.to_vec(),
    )));
    let (mut outputs, metrics) = run_protocol(transport, players, max_rounds)?;
    let outcome = outputs
        .remove(&coordinator)
        .expect("coordinator always produces an outcome");
    Ok((outcome, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_net::DeliveryPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ThresholdScheme, crate::ro::KeyMaterial) {
        let scheme = ThresholdScheme::new(b"netsign-tests");
        let mut r = StdRng::seed_from_u64(0x517);
        let km = scheme.dealer_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        (scheme, km)
    }

    #[test]
    fn sign_message_wire_roundtrip() {
        let (scheme, km) = setup();
        let p = scheme.share_sign(&km.shares[&2], b"wire");
        let partials: Vec<PartialSignature> = [1u32, 2]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], b"wire"))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        for msg in [SignMessage::Partial(p), SignMessage::Combined(sig)] {
            let enc = msg.encode();
            assert_eq!(SignMessage::decode_exact(&enc).unwrap(), msg);
        }
        assert!(matches!(
            SignMessage::decode_exact(&[7]),
            Err(CodecError::InvalidTag(7))
        ));
    }

    #[test]
    fn lockstep_and_channel_sign_identically() {
        let (scheme, km) = setup();
        let msg = b"network signing";
        let (out_l, m_l) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3],
            1,
            &TransportKind::Lockstep,
            10,
        )
        .unwrap();
        let (out_c, m_c) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3],
            1,
            &TransportKind::Channel(DeliveryPolicy::reliable()),
            10,
        )
        .unwrap();
        assert_eq!(out_l, out_c);
        assert!(m_l.same_traffic(&m_c));
        for sig in out_l.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Signature uniqueness: every player holds the same signature.
        let first = out_l.values().next().unwrap();
        assert!(out_l.values().all(|s| s == first));
    }

    #[test]
    fn signing_survives_heavy_private_loss() {
        let (scheme, km) = setup();
        let msg = b"lossy signing";
        let policy = DeliveryPolicy::lossy(0xbad5eed, 0.5);
        let (out, metrics) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3, 4],
            2,
            &TransportKind::Channel(policy),
            60,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        for sig in out.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Loss-free baseline: 3 partials in round 0, the same 3
        // retransmitted in round 1 plus the combined broadcast, finish
        // in round 2 — 7 messages over 3 rounds.
        assert!(metrics.messages >= 7);
    }

    #[test]
    fn retransmission_carries_signing_through_a_combiner_outage() {
        // The combiner's links are down for the first three rounds, so
        // *only* the per-round retransmission of partial signatures can
        // ever assemble the quorum — a broken retransmission path fails
        // this test with RoundLimitExceeded.
        let (scheme, km) = setup();
        let msg = b"outage signing";
        let policy = DeliveryPolicy {
            outages: vec![borndist_net::Outage {
                player: 2,
                from_round: 0,
                until_round: 3,
            }],
            ..DeliveryPolicy::default()
        };
        let (out, metrics) = run_threshold_sign(
            &scheme,
            &km,
            msg,
            &[1, 2, 3, 4],
            2,
            &TransportKind::Channel(policy),
            60,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        for sig in out.values() {
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Partials first arrive in round 3, combine in round 4 at the
        // earliest: strictly more traffic and rounds than the loss-free
        // baseline (7 messages, 3 rounds).
        assert!(metrics.total_rounds > 3);
        assert!(metrics.messages > 7);
    }

    #[test]
    fn mux_message_wire_roundtrip() {
        let (scheme, km) = setup();
        let p = scheme.share_sign(&km.shares[&2], b"mux");
        let partials: Vec<PartialSignature> = [1u32, 2]
            .iter()
            .map(|i| scheme.share_sign(&km.shares[i], b"mux"))
            .collect();
        let sig = scheme.combine(&km.params, &partials).unwrap();
        for msg in [
            MuxMessage::Open {
                session: 9,
                msg: b"mux".to_vec(),
            },
            MuxMessage::Partial {
                session: 9,
                psig: p,
            },
            MuxMessage::Done { session: 9, sig },
            MuxMessage::Shutdown,
        ] {
            assert_eq!(MuxMessage::decode_exact(&msg.encode()).unwrap(), msg);
        }
        assert!(matches!(
            MuxMessage::decode_exact(&[9]),
            Err(CodecError::InvalidTag(9))
        ));
    }

    #[test]
    fn mux_serves_concurrent_sessions_with_backpressure() {
        let (scheme, km) = setup();
        let requests: Vec<(u64, Vec<u8>)> = (0..12u64)
            .map(|i| (1000 + i, format!("request {}", i).into_bytes()))
            .collect();
        let (outcome, _) = run_mux_sign(
            &scheme,
            &km,
            &requests,
            &[1, 2, 3, 4],
            9,
            4,
            &TransportKind::Lockstep,
            80,
        )
        .unwrap();
        assert_eq!(outcome.signatures.len(), 12);
        // The backpressure bound held, and the pipeline actually
        // overlapped sessions rather than serializing them.
        assert!(outcome.high_water <= 4);
        assert!(outcome.high_water >= 2);
        for (session, msg) in &requests {
            let sig = &outcome.signatures[session];
            assert!(scheme.verify(&km.public_key, msg, sig));
        }
        // Uniqueness: the same message under another session id gets the
        // same signature (signing is deterministic in the key).
        let (o2, _) = run_mux_sign(
            &scheme,
            &km,
            &[(7, b"request 0".to_vec())],
            &[1, 2, 3, 4],
            9,
            4,
            &TransportKind::Lockstep,
            80,
        )
        .unwrap();
        assert_eq!(o2.signatures[&7], outcome.signatures[&1000]);
    }

    #[test]
    fn mux_is_transport_invariant() {
        let (scheme, km) = setup();
        let requests: Vec<(u64, Vec<u8>)> = (0..6u64)
            .map(|i| (i, format!("parity {}", i).into_bytes()))
            .collect();
        let run = |t: &TransportKind| {
            run_mux_sign(&scheme, &km, &requests, &[1, 2, 3, 4], 9, 3, t, 80).unwrap()
        };
        let (o_l, m_l) = run(&TransportKind::Lockstep);
        let (o_c, m_c) = run(&TransportKind::Channel(DeliveryPolicy::reliable()));
        let (o_t, m_t) = run(&TransportKind::TcpLoopback(DeliveryPolicy::reliable()));
        assert_eq!(o_l.signatures, o_c.signatures);
        assert_eq!(o_l.signatures, o_t.signatures);
        assert!(m_l.same_traffic(&m_c));
        assert!(
            m_l.same_traffic(&m_t),
            "real sockets must meter the same frames"
        );
    }

    #[test]
    fn mux_survives_lossy_private_links() {
        let (scheme, km) = setup();
        let requests: Vec<(u64, Vec<u8>)> = (0..5u64)
            .map(|i| (i, format!("lossy mux {}", i).into_bytes()))
            .collect();
        let (outcome, _) = run_mux_sign(
            &scheme,
            &km,
            &requests,
            &[1, 2, 3, 4],
            9,
            2,
            &TransportKind::Channel(DeliveryPolicy::lossy(0xfee1, 0.4)),
            200,
        )
        .unwrap();
        assert_eq!(outcome.signatures.len(), 5);
        for (session, msg) in &requests {
            assert!(scheme.verify(&km.public_key, msg, &outcome.signatures[session]));
        }
    }

    #[test]
    fn mux_live_intake_drives_sessions_to_completion() {
        // The daemon path: requests arrive through a channel while the
        // mesh is running, and completions flow back out.
        let (scheme, km) = setup();
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let mut players: Vec<BoxedPlayer<MuxMessage, MuxOutcome>> = [1u32, 2, 3, 4]
            .iter()
            .map(|id| {
                Box::new(MuxSignerPlayer::new(
                    scheme.clone(),
                    km.params,
                    km.public_key.clone(),
                    km.verification_keys.clone(),
                    km.shares[id].clone(),
                    vec![1, 2, 3, 4],
                )) as _
            })
            .collect();
        players.push(Box::new(MuxCoordinator::with_intake(
            9,
            scheme.clone(),
            km.public_key.clone(),
            4,
            req_rx,
            done_tx,
        )));
        let feeder = std::thread::spawn(move || {
            for i in 0..8u64 {
                req_tx
                    .send((i, format!("live {}", i).into_bytes()))
                    .unwrap();
                if i % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            // Dropping the sender closes the intake; the coordinator
            // drains in-flight work and shuts the mesh down.
        });
        let (outputs, _) = run_protocol(
            &TransportKind::Channel(DeliveryPolicy::reliable()),
            players,
            100_000,
        )
        .unwrap();
        feeder.join().unwrap();
        let outcome = &outputs[&9];
        assert_eq!(outcome.signatures.len(), 8);
        let completions: Vec<(u64, Signature)> = done_rx.try_iter().collect();
        assert_eq!(completions.len(), 8);
        for (i, sig) in &completions {
            assert!(scheme.verify(&km.public_key, format!("live {}", i).as_bytes(), sig));
        }
    }
}
