//! Property-based tests of the arithmetic substrate: field axioms across
//! the whole tower, group laws, scalar algebra, hash distribution, and
//! encoding round-trips.

use borndist_pairing::{
    hash_to_fr, hash_to_g1, multi_pairing, pairing, Field, Fp, Fp12, Fp2, Fp6, Fr, G1Affine,
    G1Projective, G2Affine, G2Projective, Gt,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Checks the full commutative-ring axiom battery for one field type.
fn ring_axioms<F: Field>(rng: &mut StdRng) {
    let a = F::random(rng);
    let b = F::random(rng);
    let c = F::random(rng);
    // Additive abelian group.
    assert_eq!(a + b, b + a);
    assert_eq!((a + b) + c, a + (b + c));
    assert_eq!(a + F::zero(), a);
    assert_eq!(a + (-a), F::zero());
    // Multiplicative monoid, commutative.
    assert_eq!(a * b, b * a);
    assert_eq!((a * b) * c, a * (b * c));
    assert_eq!(a * F::one(), a);
    // Distributivity.
    assert_eq!(a * (b + c), a * b + a * c);
    // Derived ops agree.
    assert_eq!(a.square(), a * a);
    assert_eq!(a.double(), a + a);
    // Inverse when defined.
    if !a.is_zero() {
        assert_eq!(a * a.invert().unwrap(), F::one());
    }
    // pow consistency: a^3 = a·a·a.
    assert_eq!(a.pow_vartime(&[3]), a * a * a);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fp_is_a_field(seed in any::<u64>()) {
        ring_axioms::<Fp>(&mut rng_from(seed));
    }

    #[test]
    fn fr_is_a_field(seed in any::<u64>()) {
        ring_axioms::<Fr>(&mut rng_from(seed));
    }

    #[test]
    fn fp2_is_a_field(seed in any::<u64>()) {
        ring_axioms::<Fp2>(&mut rng_from(seed));
    }

    #[test]
    fn fp6_is_a_field(seed in any::<u64>()) {
        ring_axioms::<Fp6>(&mut rng_from(seed));
    }

    #[test]
    fn fp12_is_a_field(seed in any::<u64>()) {
        ring_axioms::<Fp12>(&mut rng_from(seed));
    }

    /// Frobenius p² is a ring homomorphism of order dividing 6.
    #[test]
    fn frobenius_homomorphism(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let a = Fp12::random(&mut rng);
        let b = Fp12::random(&mut rng);
        prop_assert_eq!((a * b).frobenius_p2(), a.frobenius_p2() * b.frobenius_p2());
        let mut x = a;
        for _ in 0..6 { x = x.frobenius_p2(); }
        prop_assert_eq!(x, a);
    }

    /// Sqrt in Fp and Fp2 round-trips on squares and respects signs.
    #[test]
    fn sqrt_roundtrips(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let a = Fp::random(&mut rng);
        let r = a.square().sqrt().unwrap();
        prop_assert!(r == a || r == -a);
        let b = Fp2::random(&mut rng);
        let r2 = b.square().sqrt().unwrap();
        prop_assert!(r2 == b || r2 == -b);
    }

    /// Group laws on G1 and G2 with random points.
    #[test]
    fn group_laws(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng);
        let q = G1Projective::random(&mut rng);
        let r = G1Projective::random(&mut rng);
        prop_assert_eq!(p + q, q + p);
        prop_assert_eq!((p + q) + r, p + (q + r));
        prop_assert!((p - p).is_identity());
        prop_assert!(p.is_on_curve());
        prop_assert!((p + q).is_on_curve());
        let s = G2Projective::random(&mut rng);
        let t = G2Projective::random(&mut rng);
        prop_assert_eq!(s + t, t + s);
        prop_assert!((s + t).is_on_curve());
    }

    /// Scalar multiplication is a module action: (a+b)P = aP + bP and
    /// (ab)P = a(bP).
    #[test]
    fn scalar_module_action(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p = G1Projective::random(&mut rng);
        prop_assert_eq!(p * (a + b), p * a + p * b);
        prop_assert_eq!((p * a) * b, p * (a * b));
        let q = G2Projective::random(&mut rng);
        prop_assert_eq!(q * (a + b), q * a + q * b);
    }

    /// Pairing bilinearity and the inversion law on random points.
    #[test]
    fn pairing_laws(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng);
        let q = G2Projective::random(&mut rng);
        let a = Fr::random(&mut rng);
        let pa = (p * a).to_affine();
        let paff = p.to_affine();
        let qaff = q.to_affine();
        prop_assert_eq!(pairing(&pa, &qaff), pairing(&paff, &qaff).pow(&a));
        // e(P,Q)·e(-P,Q) = 1
        let neg = paff.neg();
        prop_assert!((pairing(&paff, &qaff) * pairing(&neg, &qaff)).is_identity());
    }

    /// multi_pairing equals the product of singles for 1..=3 pairs.
    #[test]
    fn multi_pairing_product_law(seed in any::<u64>(), k in 1usize..4) {
        let mut rng = rng_from(seed);
        let pairs: Vec<(G1Affine, G2Affine)> = (0..k)
            .map(|_| (G1Projective::random(&mut rng).to_affine(),
                       G2Projective::random(&mut rng).to_affine()))
            .collect();
        let refs: Vec<(&G1Affine, &G2Affine)> = pairs.iter().map(|(a, b)| (a, b)).collect();
        let joint = multi_pairing(&refs);
        let mut sep = Gt::identity();
        for (a, b) in &pairs {
            sep *= pairing(a, b);
        }
        prop_assert_eq!(joint, sep);
    }

    /// Encodings reject tampering: flipping any byte of a compressed
    /// point either fails to decode or decodes to a different point.
    #[test]
    fn tampered_encodings_never_alias(seed in any::<u64>(), pos in 0usize..48, mask in 1u8..=255) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng).to_affine();
        let mut enc = p.to_compressed();
        enc[pos] ^= mask;
        match G1Affine::from_compressed(&enc) {
            Err(_) => {},
            Ok(decoded) => prop_assert_ne!(decoded, p),
        }
    }

    /// Field serialization: to_bytes ∘ from_bytes = id and ordering of
    /// canonical representatives is consistent.
    #[test]
    fn field_bytes_roundtrip(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let a = Fp::random(&mut rng);
        prop_assert_eq!(Fp::from_bytes(&a.to_bytes()).unwrap(), a);
        let s = Fr::random(&mut rng);
        prop_assert_eq!(Fr::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    /// hash_to_g1 produces valid, torsion-free, distinct points.
    #[test]
    fn hash_to_curve_sound(m1 in any::<Vec<u8>>(), m2 in any::<Vec<u8>>()) {
        let p = hash_to_g1(b"props", &m1);
        prop_assert!(p.is_on_curve());
        prop_assert!(p.is_torsion_free());
        prop_assert!(!p.is_identity());
        if m1 != m2 {
            prop_assert_ne!(p, hash_to_g1(b"props", &m2));
        }
        // scalar hash is deterministic
        prop_assert_eq!(hash_to_fr(b"props", &m1), hash_to_fr(b"props", &m1));
    }
}
