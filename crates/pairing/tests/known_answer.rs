//! Known-answer tests pinning the substrate to external truth: the
//! standard BLS12-381 generator encodings (ZCash serialization), the
//! bilinearity contract of the pairing, and structural guarantees of
//! hash-to-curve. These cannot drift without failing against constants
//! computed *outside* this repository.

use borndist_pairing::{
    hash_to_fr, hash_to_g1, hash_to_g1_vector, hash_to_g2, pairing, Fr, G1Affine, G1Projective,
    G2Affine, G2Projective, Gt,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{:02x}", b)).collect()
}

/// The IETF/ZCash compressed encoding of the standard G1 generator.
const G1_GENERATOR_COMPRESSED: &str = "97f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb";

/// The IETF/ZCash compressed encoding of the standard G2 generator.
const G2_GENERATOR_COMPRESSED: &str = "93e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8";

#[test]
fn g1_generator_known_answer() {
    let gen = G1Affine::generator();
    assert_eq!(hex(&gen.to_compressed()), G1_GENERATOR_COMPRESSED);
    // And the decoder round-trips the canonical bytes.
    let mut bytes = [0u8; 48];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = u8::from_str_radix(&G1_GENERATOR_COMPRESSED[2 * i..2 * i + 2], 16).unwrap();
    }
    assert_eq!(G1Affine::from_compressed(&bytes).unwrap(), gen);
}

#[test]
fn g2_generator_known_answer() {
    let gen = G2Affine::generator();
    assert_eq!(hex(&gen.to_compressed()), G2_GENERATOR_COMPRESSED);
    let mut bytes = [0u8; 96];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = u8::from_str_radix(&G2_GENERATOR_COMPRESSED[2 * i..2 * i + 2], 16).unwrap();
    }
    assert_eq!(G2Affine::from_compressed(&bytes).unwrap(), gen);
}

#[test]
fn bilinearity_exact() {
    // e(aP, bQ) = e(P, Q)^(ab) on deterministic scalars, plus the
    // degenerate cases that anchor the exponent arithmetic.
    let mut rng = StdRng::seed_from_u64(0x0b11);
    for _ in 0..3 {
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let p = G1Projective::generator().mul(&a).to_affine();
        let q = G2Projective::generator().mul(&b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(&(a * b)));
    }
    // Fixed small exponents: e(2P, 3Q) = e(P, Q)^6.
    let p2 = G1Projective::generator().mul(&Fr::from_u64(2)).to_affine();
    let q3 = G2Projective::generator().mul(&Fr::from_u64(3)).to_affine();
    assert_eq!(pairing(&p2, &q3), Gt::generator().pow(&Fr::from_u64(6)));
    // Non-degeneracy and order r.
    assert!(!Gt::generator().is_identity());
    let r_minus_1 = -Fr::one();
    assert!((Gt::generator().pow(&r_minus_1) * Gt::generator()).is_identity());
}

#[test]
fn hash_to_curve_lands_in_subgroup() {
    for (i, msg) in [b"".as_slice(), b"abc", b"known answer test vector"]
        .iter()
        .enumerate()
    {
        let p = hash_to_g1(b"borndist/kat/g1", msg);
        assert!(p.is_on_curve(), "g1 case {}", i);
        assert!(p.is_torsion_free(), "g1 case {}", i);
        assert!(!p.is_identity(), "g1 case {}", i);
        let q = hash_to_g2(b"borndist/kat/g2", msg);
        assert!(q.is_on_curve(), "g2 case {}", i);
        assert!(q.is_torsion_free(), "g2 case {}", i);
        assert!(!q.is_identity(), "g2 case {}", i);
    }
}

#[test]
fn hash_to_curve_is_deterministic_and_domain_separated() {
    let a = hash_to_g1(b"dst-one", b"message");
    assert_eq!(a, hash_to_g1(b"dst-one", b"message"));
    assert_ne!(a, hash_to_g1(b"dst-two", b"message"));
    assert_ne!(a, hash_to_g1(b"dst-one", b"other message"));
    // Vector hashes produce independent coordinates, all in-subgroup.
    let v = hash_to_g1_vector(b"dst-vec", b"message", 3);
    assert_eq!(v.len(), 3);
    for p in &v {
        assert!(p.is_torsion_free());
    }
    assert_ne!(v[0], v[1]);
    assert_ne!(v[1], v[2]);
    // Scalar hashing is deterministic too.
    assert_eq!(hash_to_fr(b"dst", b"m"), hash_to_fr(b"dst", b"m"));
    assert_ne!(hash_to_fr(b"dst", b"m"), hash_to_fr(b"dst", b"n"));
}
