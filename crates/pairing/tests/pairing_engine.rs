//! Property tests pinning the optimal-ate pairing engine to its
//! references (ISSUE 3):
//!
//! * `pairing == pairing_tate_g2^ATE_TATE_EXP` — the strict
//!   Hess–Smart–Vercauteren relation between the ate engine and the
//!   swapped-argument reduced Tate pairing, on random and edge inputs
//!   (identity arguments, negated points, multi-pairing cancellation);
//! * both engines and the retained G1-side Tate reference realize the
//!   *same bilinear map up to the fixed change of `GT` generator*:
//!   `e(aP, bQ) = e(g1, g2)^(ab)` for each engine (a bilinear map is
//!   determined by its generator value);
//! * `Fp12::frobenius_p` equals the generic power `f^p`
//!   (`pow_vartime` by the modulus limbs), and the Frobenius ladder
//!   composes correctly;
//! * `Fp12::cyclotomic_square` equals the generic square on unitary
//!   (cyclotomic-subgroup) elements;
//! * the cyclotomic hard-part chain of [`final_exponentiation`] equals
//!   the retained generic power by `FINAL_EXP_HARD` (cubed — the chain
//!   computes `m^(3λ)`);
//! * `Gt::pow` (wNAF over cyclotomic squarings) equals the generic
//!   square-and-multiply power.

use borndist_pairing::constants::{ATE_TATE_EXP, FINAL_EXP_HARD, FP_MODULUS};
use borndist_pairing::{
    final_exponentiation, multi_miller_loop, multi_pairing, multi_pairing_mixed,
    multi_pairing_prepared, multi_pairing_tate, pairing, pairing_tate, pairing_tate_g2, Field,
    Fp12, Fr, G1Affine, G1Projective, G2Affine, G2Prepared, G2Projective, Gt,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Rebuilds a scalar from little-endian canonical limbs through the
/// public API (Horner over the limb radix `2^64`).
fn fr_from_limbs(limbs: &[u64; 4]) -> Fr {
    let radix = Fr::from_u64(u64::MAX) + Fr::one();
    limbs
        .iter()
        .rev()
        .fold(Fr::zero(), |acc, &l| acc * radix + Fr::from_u64(l))
}

/// The exponent relating the ate engine to the G2-side Tate reference.
fn ate_tate_exp() -> Fr {
    fr_from_limbs(&ATE_TATE_EXP)
}

/// Maps an arbitrary field element into the cyclotomic subgroup via the
/// easy part of the final exponentiation.
fn to_cyclotomic(f: &Fp12) -> Fp12 {
    let t = f.conjugate() * f.invert().expect("non-zero");
    t.frobenius_p2() * t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The strict fixed-exponent relation on random points.
    #[test]
    fn ate_equals_tate_g2_power(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let d = ate_tate_exp();
        prop_assert_eq!(pairing(&p, &q), pairing_tate_g2(&p, &q).pow(&d));
        // Negated points flip both sides consistently.
        let np = p.neg();
        prop_assert_eq!(pairing(&np, &q), pairing_tate_g2(&np, &q).pow(&d));
        prop_assert_eq!(pairing(&np, &q), pairing(&p, &q).inverse());
    }

    /// Both engines are THE bilinear map determined by their generator
    /// value: e(aP, bQ) == e(g1, g2)^(ab).
    #[test]
    fn engines_agree_up_to_gt_generator(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
        let p = G1Projective::generator().mul(&a).to_affine();
        let q = G2Projective::generator().mul(&b).to_affine();
        let g1 = G1Affine::generator();
        let g2 = G2Affine::generator();
        let ab = a * b;
        prop_assert_eq!(pairing(&p, &q), pairing(&g1, &g2).pow(&ab));
        prop_assert_eq!(pairing_tate(&p, &q), pairing_tate(&g1, &g2).pow(&ab));
        prop_assert_eq!(pairing_tate_g2(&p, &q), pairing_tate_g2(&g1, &g2).pow(&ab));
    }

    /// Multi-pairing cancellation through every engine's shared loop.
    #[test]
    fn multi_pairing_cancellation(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let np = p.neg();
        prop_assert!(multi_pairing(&[(&p, &q), (&np, &q)]).is_identity());
        prop_assert!(multi_pairing_tate(&[(&p, &q), (&np, &q)]).is_identity());
        let prep = G2Prepared::new(&q);
        prop_assert!(
            multi_pairing_prepared(&[(&p, &prep), (&np, &prep)]).is_identity()
        );
        // Mixed split of the same cancelling product.
        prop_assert!(multi_pairing_mixed(&[(&p, &q)], &[(&np, &prep)]).is_identity());
    }

    /// Prepared and mixed products agree with the live-loop product.
    #[test]
    fn prepared_paths_match_live(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let pts: Vec<(G1Affine, G2Affine)> = (0..3)
            .map(|_| (
                G1Projective::random(&mut rng).to_affine(),
                G2Projective::random(&mut rng).to_affine(),
            ))
            .collect();
        let refs: Vec<(&G1Affine, &G2Affine)> = pts.iter().map(|(p, q)| (p, q)).collect();
        let want = multi_pairing(&refs);
        let preps: Vec<G2Prepared> = pts.iter().map(|(_, q)| G2Prepared::new(q)).collect();
        let prepared: Vec<(&G1Affine, &G2Prepared)> = pts
            .iter()
            .zip(preps.iter())
            .map(|((p, _), t)| (p, t))
            .collect();
        prop_assert_eq!(multi_pairing_prepared(&prepared), want);
        prop_assert_eq!(multi_pairing_mixed(&refs[..1], &prepared[1..]), want);
    }

    /// The p-power Frobenius equals the generic power by the modulus.
    #[test]
    fn frobenius_p_matches_generic_power(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let f = Fp12::random(&mut rng);
        prop_assert_eq!(f.frobenius_p(), f.pow_vartime(&FP_MODULUS));
        prop_assert_eq!(f.frobenius_p().frobenius_p(), f.frobenius_p2());
        prop_assert_eq!(f.frobenius_p2().frobenius_p(), f.frobenius_p3());
    }

    /// Cyclotomic squaring equals the generic square on unitary inputs.
    #[test]
    fn cyclotomic_square_matches_generic(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let u = to_cyclotomic(&Fp12::random(&mut rng));
        prop_assert_eq!(u.cyclotomic_square(), u.square());
        prop_assert_eq!(
            u.cyclotomic_square().cyclotomic_square(),
            u.square().square()
        );
    }

    /// The hard-part addition chain equals the retained generic power
    /// (cubed: the chain computes m^(3λ)).
    #[test]
    fn hard_part_chain_matches_generic_power(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p = G1Projective::random(&mut rng).to_affine();
        let q = G2Projective::random(&mut rng).to_affine();
        let miller = multi_miller_loop(&[(&p, &q)]);
        let chain = final_exponentiation(&miller);
        let m = to_cyclotomic(&miller);
        let generic = m.pow_vartime(&FINAL_EXP_HARD);
        prop_assert_eq!(*chain.as_fp12(), generic * generic * generic);
    }

    /// Gt::pow (wNAF over cyclotomic squarings) equals the generic
    /// square-and-multiply power of the underlying field element.
    #[test]
    fn gt_pow_matches_generic(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let e = pairing(
            &G1Projective::random(&mut rng).to_affine(),
            &G2Projective::random(&mut rng).to_affine(),
        );
        let mut scalars = vec![Fr::zero(), Fr::one(), -Fr::one(), Fr::from_u64(2)];
        scalars.push(Fr::random(&mut rng));
        for k in &scalars {
            let want = e.as_fp12().pow_vartime(&k.to_le_bits());
            prop_assert_eq!(*e.pow(k).as_fp12(), want);
        }
    }
}

#[test]
fn identity_edges_across_engines() {
    let g1 = G1Affine::generator();
    let g2 = G2Affine::generator();
    let id1 = G1Affine::identity();
    let id2 = G2Affine::identity();
    for (p, q) in [(&id1, &g2), (&g1, &id2), (&id1, &id2)] {
        assert!(pairing(p, q).is_identity());
        assert!(pairing_tate(p, q).is_identity());
        assert!(pairing_tate_g2(p, q).is_identity());
    }
    assert!(multi_pairing(&[]).is_identity());
    assert!(multi_pairing_tate(&[]).is_identity());
    assert!(multi_pairing_prepared(&[]).is_identity());
    assert_eq!(
        *Gt::identity().as_fp12(),
        Fp12::one(),
        "identity wraps the field one"
    );
}

#[test]
fn generator_pairing_relation_holds_exactly() {
    // The single most important known answer: on the canonical
    // generators the ate engine equals the Tate_g2 reference raised to
    // the precomputed HSV exponent.
    let g1 = G1Affine::generator();
    let g2 = G2Affine::generator();
    assert_eq!(
        pairing(&g1, &g2),
        pairing_tate_g2(&g1, &g2).pow(&ate_tate_exp())
    );
    // And the shared prepared generator agrees with the live path.
    let prep = borndist_pairing::g2_generator_prepared();
    assert_eq!(multi_pairing_prepared(&[(&g1, prep)]), pairing(&g1, &g2));
}
