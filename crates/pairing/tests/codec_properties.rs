//! Property tests of the canonical wire codec: strict round-trip on
//! every primitive and systematic rejection of everything else
//! (trailing bytes, truncations, bad tags, non-canonical scalars,
//! off-curve and out-of-subgroup points).

use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{Fr, G1Affine, G1Projective, G2Affine, G2Projective};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let enc = v.encode();
    assert_eq!(enc.len(), v.encoded_len());
    assert_eq!(&T::decode_exact(&enc).expect("own encoding decodes"), v);
    // Strictness: the encoding plus a trailing byte never decodes.
    let mut trailing = enc.clone();
    trailing.push(0);
    assert!(matches!(
        T::decode_exact(&trailing),
        Err(CodecError::TrailingBytes { remaining: 1 })
    ));
    // Nor does any strict prefix (empty-encoding types excepted).
    if !enc.is_empty() {
        assert!(T::decode_exact(&enc[..enc.len() - 1]).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalars_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        roundtrip(&Fr::random(&mut rng));
    }

    #[test]
    fn points_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        roundtrip(&G1Projective::random(&mut rng).to_affine());
        roundtrip(&G2Projective::random(&mut rng).to_affine());
    }

    #[test]
    fn containers_roundtrip(seed in any::<u64>(), n in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        roundtrip(&scalars);
        let pairs: Vec<(u32, Fr)> =
            (0..n as u32).map(|i| (i, Fr::random(&mut rng))).collect();
        roundtrip(&pairs);
        roundtrip(&Some(Fr::random(&mut rng)));
        roundtrip(&None::<Fr>);
    }

    /// A single corrupted byte in a point encoding either still decodes
    /// to a *valid subgroup point* (flag-bit flips can pick the negated
    /// point) or fails cleanly — it must never yield an invalid point.
    #[test]
    fn corrupted_points_never_decode_invalid(seed in any::<u64>(), pos in 0usize..48, bit in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = G1Projective::random(&mut rng).to_affine().encode();
        let mut bad = enc.clone();
        bad[pos] ^= 1 << bit;
        match G1Affine::decode_exact(&bad) {
            Ok(p) => {
                // Whatever decoded is a canonical subgroup member and
                // re-encodes to the same bytes (canonicity).
                assert!(p.to_projective().is_torsion_free());
                assert_eq!(p.encode(), bad);
            }
            Err(e) => assert!(matches!(
                e,
                CodecError::InvalidPoint(_) | CodecError::NonCanonicalScalar
            )),
        }
    }

    /// Same for G2, whose coordinates live in Fp2.
    #[test]
    fn corrupted_g2_never_decodes_invalid(seed in any::<u64>(), pos in 0usize..96, bit in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = G2Projective::random(&mut rng).to_affine().encode();
        let mut bad = enc.clone();
        bad[pos] ^= 1 << bit;
        match G2Affine::decode_exact(&bad) {
            Ok(p) => {
                assert!(p.to_projective().is_torsion_free());
                assert_eq!(p.encode(), bad);
            }
            Err(e) => assert!(matches!(
                e,
                CodecError::InvalidPoint(_) | CodecError::NonCanonicalScalar
            )),
        }
    }

    /// Scalar encodings ≥ r are rejected, everything < r round-trips.
    #[test]
    fn scalar_canonicity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Fr::random(&mut rng);
        let enc = x.encode();
        // Adding r to the integer gives a 256-bit non-canonical alias
        // whenever it fits; the decoder must reject it.
        let as_int = |b: &[u8]| {
            let mut v = [0u8; 32];
            v.copy_from_slice(b);
            v
        };
        let r_bytes: [u8; 32] = [
            0x73, 0xed, 0xa7, 0x53, 0x29, 0x9d, 0x7d, 0x48, 0x33, 0x39, 0xd8, 0x08, 0x09, 0xa1,
            0xd8, 0x05, 0x53, 0xbd, 0xa4, 0x02, 0xff, 0xfe, 0x5b, 0xfe, 0xff, 0xff, 0xff, 0xff,
            0x00, 0x00, 0x00, 0x01,
        ];
        let mut alias = as_int(&enc);
        let mut carry = 0u16;
        let mut overflow = false;
        for i in (0..32).rev() {
            let sum = alias[i] as u16 + r_bytes[i] as u16 + carry;
            alias[i] = sum as u8;
            carry = sum >> 8;
        }
        if carry != 0 { overflow = true; }
        if !overflow {
            assert!(matches!(
                Fr::decode_exact(&alias),
                Err(CodecError::NonCanonicalScalar)
            ));
        }
        roundtrip(&x);
    }
}

#[test]
fn identity_points_are_canonical() {
    roundtrip(&G1Affine::identity());
    roundtrip(&G2Affine::identity());
    // The only valid infinity encoding is the canonical one: any other
    // byte set alongside the infinity flag must be rejected.
    let mut enc = G1Affine::identity().encode();
    enc[20] = 1;
    assert!(matches!(
        G1Affine::decode_exact(&enc),
        Err(CodecError::InvalidPoint(_))
    ));
}
