//! Property tests proving every scalar-multiplication fast path agrees
//! with the schoolbook double-and-add slow path
//! ([`Projective::mul_schoolbook`]): the GLV/GLS joint ladders behind
//! [`Projective::mul`], fixed-base window tables ([`FixedBaseTable`]),
//! Pippenger MSM ([`msm`]), and the batched-inversion affine conversion
//! — on random scalars, the edge scalars `0`, `1`, `r - 1`, the
//! endomorphism eigenvalues themselves, identity inputs, and duplicated
//! bases. The GLV-2 / GLS-4 decompositions additionally carry their own
//! congruence and bit-bound properties.

use borndist_pairing::{
    batch_invert, decompose_g1, decompose_g2, gls_eigenvalue, glv_lambda, msm, FixedBaseTable, Fp,
    Fr, G1Affine, G1Projective, G2Projective, SubScalar,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `r - 1`, the largest canonical scalar.
fn r_minus_one() -> Fr {
    -Fr::one()
}

/// The scalars every equivalence check must survive: the classic edges
/// plus the endomorphism eigenvalues, which sit exactly on the GLV/GLS
/// decomposition's rounding boundaries.
fn edge_scalars() -> Vec<Fr> {
    vec![
        Fr::zero(),
        Fr::one(),
        r_minus_one(),
        Fr::from_u64(2),
        glv_lambda(),
        -glv_lambda(),
        gls_eigenvalue(),
        -gls_eigenvalue(),
    ]
}

/// Evaluates a signed sub-scalar back into `Fr` through independent
/// field arithmetic (base-2⁶⁴ Horner over the magnitude limbs).
fn sub_scalar_fr(s: &SubScalar) -> Fr {
    let two64 = Fr::from_u64(2).pow_vartime(&[64]);
    let mut mag = Fr::zero();
    for &l in s.limbs.iter().rev() {
        mag = mag * two64 + Fr::from_u64(l);
    }
    if s.negative {
        -mag
    } else {
        mag
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// wNAF variable-base multiplication equals schoolbook on G1 and G2.
    #[test]
    fn wnaf_matches_schoolbook(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let p1 = G1Projective::random(&mut rng);
        let p2 = G2Projective::random(&mut rng);
        let mut scalars = edge_scalars();
        scalars.push(Fr::random(&mut rng));
        for s in &scalars {
            let bits = s.to_le_bits();
            prop_assert_eq!(p1.mul(s), p1.mul_schoolbook(&bits));
            prop_assert_eq!(p2.mul(s), p2.mul_schoolbook(&bits));
        }
        // Identity base: every scalar maps to the identity.
        let id = G1Projective::identity();
        prop_assert!(id.mul(&Fr::random(&mut rng)).is_identity());
    }

    /// wNAF recoding evaluates back to the scalar (digit semantics).
    #[test]
    fn wnaf_recoding_is_faithful(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let s = Fr::random(&mut rng);
        for width in 2..=7usize {
            let digits = s.to_wnaf(width);
            // Σ d_i 2^i · G == s·G through independent group arithmetic.
            let g = G1Projective::generator();
            let mut acc = G1Projective::identity();
            for &d in digits.iter().rev() {
                acc = acc.double();
                if d > 0 {
                    acc += g.mul_schoolbook(&[d as u64]);
                } else if d < 0 {
                    acc += g.mul_schoolbook(&[(-d) as u64]).neg();
                }
            }
            prop_assert_eq!(acc, g.mul(&s), "width {}", width);
        }
    }

    /// Fixed-base tables equal schoolbook for random and edge scalars,
    /// arbitrary bases, and the shared generator tables.
    #[test]
    fn fixed_base_table_matches_schoolbook(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let base = G1Projective::random(&mut rng);
        let table = FixedBaseTable::new(&base);
        let mut scalars = edge_scalars();
        scalars.push(Fr::random(&mut rng));
        for s in &scalars {
            prop_assert_eq!(table.mul(s), base.mul_schoolbook(&s.to_le_bits()));
        }
        let s = Fr::random(&mut rng);
        prop_assert_eq!(
            borndist_pairing::mul_g1_generator(&s),
            G1Projective::generator().mul_schoolbook(&s.to_le_bits())
        );
        prop_assert_eq!(
            borndist_pairing::mul_g2_generator(&s),
            G2Projective::generator().mul_schoolbook(&s.to_le_bits())
        );
    }

    /// MSM equals the schoolbook sum on random inputs with identity and
    /// duplicated bases mixed in, across both the naive and bucketed
    /// regimes.
    #[test]
    fn msm_matches_schoolbook(seed in any::<u64>(), n in 1usize..20) {
        let mut rng = rng_from(seed);
        let mut bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        // Mix in the identity base, a duplicated base, and edge scalars.
        bases.push(G1Affine::identity());
        scalars.push(Fr::random(&mut rng));
        bases.push(bases[0]);
        scalars.push(Fr::random(&mut rng));
        for (i, s) in edge_scalars().into_iter().enumerate() {
            bases.push(bases[i % bases.len()]);
            scalars.push(s);
        }
        let want = bases
            .iter()
            .zip(scalars.iter())
            .fold(G1Projective::identity(), |acc, (b, s)| {
                acc + b.to_projective().mul_schoolbook(&s.to_le_bits())
            });
        prop_assert_eq!(msm(&bases, &scalars), want);
    }

    /// The GLV-2 split is congruent (`k ≡ k₁ + k₂λ mod r`) with both
    /// sub-scalars at most 129 bits, for random and edge scalars.
    #[test]
    fn glv2_decomposition_congruent_and_short(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let lambda = glv_lambda();
        let mut scalars = edge_scalars();
        scalars.push(Fr::random(&mut rng));
        for k in &scalars {
            let dec = decompose_g1(k);
            prop_assert_eq!(dec.len, 2);
            let (k1, k2) = (&dec.parts[0], &dec.parts[1]);
            prop_assert!(k1.bits() <= 129, "k1 has {} bits", k1.bits());
            prop_assert!(k2.bits() <= 129, "k2 has {} bits", k2.bits());
            prop_assert!(!k1.negative, "k1 is never negative by construction");
            prop_assert_eq!(sub_scalar_fr(k1) + sub_scalar_fr(k2) * lambda, *k);
            // The Fr convenience method is the same split.
            let via_fr = k.decompose_glv();
            prop_assert_eq!(sub_scalar_fr(&via_fr.parts[0]), sub_scalar_fr(k1));
            prop_assert_eq!(sub_scalar_fr(&via_fr.parts[1]), sub_scalar_fr(k2));
        }
    }

    /// The GLS-4 split recomposes over powers of the ψ eigenvalue with
    /// 64-bit digits, for random and edge scalars.
    #[test]
    fn gls4_decomposition_congruent_and_short(seed in any::<u64>()) {
        let mut rng = rng_from(seed);
        let e = gls_eigenvalue();
        let mut scalars = edge_scalars();
        scalars.push(Fr::random(&mut rng));
        for k in &scalars {
            let dec = decompose_g2(k);
            prop_assert_eq!(dec.len, 4);
            let mut acc = Fr::zero();
            let mut pow = Fr::one();
            for part in &dec.parts[..dec.len] {
                prop_assert!(part.bits() <= 64, "digit has {} bits", part.bits());
                acc += sub_scalar_fr(part) * pow;
                pow *= e;
            }
            prop_assert_eq!(acc, *k);
            let via_fr = k.decompose_gls();
            for (a, b) in via_fr.parts.iter().zip(dec.parts.iter()) {
                prop_assert_eq!(sub_scalar_fr(a), sub_scalar_fr(b));
            }
        }
    }

    /// Batched inversion agrees with element-wise inversion and leaves
    /// zeros untouched.
    #[test]
    fn batch_invert_matches_single(seed in any::<u64>(), n in 0usize..24) {
        let mut rng = rng_from(seed);
        let mut elems: Vec<Fp> = (0..n).map(|_| Fp::random(&mut rng)).collect();
        if n > 2 {
            elems[n / 2] = Fp::zero();
            elems[n - 1] = Fp::zero();
        }
        let mut batched = elems.clone();
        batch_invert(&mut batched);
        for (e, b) in elems.iter().zip(batched.iter()) {
            match e.invert() {
                Some(inv) => prop_assert_eq!(*b, inv),
                None => prop_assert!(b.is_zero()),
            }
        }
    }

    /// Batch affine conversion (one shared inversion) agrees with
    /// per-point conversion, identities included.
    #[test]
    fn batch_to_affine_matches_single(seed in any::<u64>(), n in 0usize..12) {
        let mut rng = rng_from(seed);
        let mut pts: Vec<G1Projective> =
            (0..n).map(|_| G1Projective::random(&mut rng)).collect();
        pts.push(G1Projective::identity());
        pts.insert(0, G1Projective::identity());
        let batch = G1Projective::batch_to_affine(&pts);
        for (p, a) in pts.iter().zip(batch.iter()) {
            prop_assert_eq!(p.to_affine(), *a);
        }
    }
}
