//! GLV/GLS scalar decomposition for endomorphism-accelerated scalar
//! multiplication.
//!
//! [`crate::endo`] already derives the two curve endomorphisms for
//! subgroup membership checks; this module reuses them for *speed*
//! (ROADMAP item 2):
//!
//! * **G1 (2-dimensional GLV)** — `φ(x, y) = (βx, y)` acts on the
//!   subgroup as multiplication by a primitive cube root of unity
//!   `λ mod r`. A 255-bit scalar `k` splits into `k = k₁ + k₂λ (mod r)`
//!   with `|kᵢ| < 2^129` by Babai rounding against the kernel lattice of
//!   `(k₁, k₂) ↦ k₁ + k₂λ`: basis `v₁ = (X² − 1, −1)`, `v₂ = (1, X²)`
//!   (determinant exactly `r`; constants generated and cross-checked by
//!   `tools/gen_pairing_constants.py`). The joint ladder over
//!   `(P, φP)` then needs half the doublings.
//! * **G2 (4-dimensional GLS)** — `ψ` (untwist-Frobenius-twist) acts as
//!   multiplication by `e = ±BLS_X` (64 bits). Because
//!   `r = X⁴ − X² + 1`, any `k < r` is *exactly*
//!   `a₀ + a₁X + a₂X² + a₃X³` in base `X = |e|` with digits
//!   `aᵢ < 2^64`, so `k = Σ (±aᵢ)·eⁱ` with alternating signs when the
//!   eigenvalue is negative — a quarter-length joint ladder over
//!   `(Q, ψQ, ψ²Q, ψ³Q)` with no rounding error at all.
//!
//! Both decompositions are only valid on the prime-order subgroup (the
//! eigenvalue relations hold nowhere else); every public constructor of
//! this crate yields subgroup points, and the schoolbook ladder remains
//! as the property-test reference (`tests/scalar_mul_properties.rs`).
//!
//! The eigenvalue *conventions* (which cube root `β` lands on, the sign
//! of the `ψ` eigenvalue) are resolved at first use by the
//! generator probes in [`crate::endo`]; this module folds them into a
//! normalized form — `φ_eff` below is always the `λ = X² − 1`
//! eigenfunction (using `β²` when the probe resolved the other root),
//! so a single lattice basis serves both conventions.

use crate::constants::{BLS_X, GLV_G1_FLOOR, GLV_G2_FLOOR, GLV_LAMBDA_1, GLV_X2};
use crate::curve::{G1Affine, G1Projective, G2Affine, G2Projective};
use crate::endo::{phi_g1, psi_g2};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;
use std::sync::OnceLock;

/// Maximum number of sub-scalars a decomposition can produce.
pub const MAX_DIMS: usize = 4;

/// One signed sub-scalar: a magnitude of at most three limbs plus a
/// sign. G1 sub-scalars use up to 129 bits (3 limbs), G2 digits one.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubScalar {
    /// `true` if the sub-scalar is negative.
    pub negative: bool,
    /// Little-endian magnitude.
    pub limbs: [u64; 3],
}

impl SubScalar {
    /// Bit length of the magnitude.
    pub fn bits(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return 64 * i + (64 - l.leading_zeros() as usize);
            }
        }
        0
    }
}

/// A scalar split into `len` signed sub-scalars: the represented value
/// is `Σ parts[i] · λⁱ (mod r)` where `λ` is the eigenvalue of the
/// curve's endomorphism.
#[derive(Clone, Copy, Debug)]
pub struct Decomposition {
    pub parts: [SubScalar; MAX_DIMS],
    pub len: usize,
}

// ---- limb helpers (local: the shapes here are too small and odd for
// the generic field machinery) ----

/// `a · b` for a 4-limb `a` and an n-limb `b`, truncated to 9 limbs
/// (enough for every product formed here).
fn mul_limbs(a: &[u64; 4], b: &[u64]) -> [u64; 9] {
    let mut t = [0u64; 9];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, c) = crate::arith::mac(t[i + j], ai, bj, carry);
            t[i + j] = lo;
            carry = c;
        }
        t[i + b.len()] = carry;
    }
    t
}

/// `a − b` over 4 limbs; requires `a >= b`.
fn sub4(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d, bo) = crate::arith::sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
    }
    debug_assert_eq!(borrow, 0, "sub4 underflow");
    out
}

/// `true` iff `a < b` over 4 limbs.
fn lt4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Splits `k` against the `λ = X² − 1` lattice: returns `(k₁, k₂)` with
/// `k ≡ k₁ + k₂λ (mod r)`, `k₁ ∈ [0, 2X²)` and `k₂ ∈ (−2, 2X²)`.
///
/// Babai rounding with floor division: `c₁ = ⌊k·2^384·X²/r⌋/2^384`,
/// `c₂ = ⌊k·2^384/r⌋/2^384`, each at most 2 below the real quotient, so
/// `k₁ = d₁(X² − 1) + d₂` and `k₂ = d₂X² − d₁` for `d₁, d₂ ∈ [0, 2)` —
/// both under 130 bits, with `k₁` never negative and `k₂ ≥ −1`.
pub fn split_glv2(k: &[u64; 4]) -> (SubScalar, SubScalar) {
    // c1 = floor(k * GLV_G1_FLOOR / 2^384): limbs 6.. of the product.
    let p1 = mul_limbs(k, &GLV_G1_FLOOR);
    let c1 = [p1[6], p1[7], 0, 0];
    let p2 = mul_limbs(k, &GLV_G2_FLOOR);
    let c2 = [p2[6], 0, 0, 0];

    // k1 = k - c1*(X^2 - 1) - c2, guaranteed non-negative.
    let x2m1 = {
        let mut v = GLV_X2;
        v[0] -= 1; // X^2 is even and non-zero in the low limb: no borrow.
        v
    };
    let t1 = mul_limbs(&c1, &x2m1);
    debug_assert!(t1[4..].iter().all(|&l| l == 0), "c1*(X^2-1) fits 4 limbs");
    let mut k1 = sub4(k, &[t1[0], t1[1], t1[2], t1[3]]);
    k1 = sub4(&k1, &c2);

    // k2 = c1 - c2*X^2, in (-2, 2X^2).
    let t2 = mul_limbs(&c2, &GLV_X2);
    debug_assert!(t2[4..].iter().all(|&l| l == 0), "c2*X^2 fits 4 limbs");
    let t2 = [t2[0], t2[1], t2[2], t2[3]];
    let (neg2, mag2) = if lt4(&c1, &t2) {
        (true, sub4(&t2, &c1))
    } else {
        (false, sub4(&c1, &t2))
    };

    debug_assert_eq!(k1[3], 0, "k1 < 2^129");
    debug_assert_eq!(mag2[3], 0, "k2 magnitude < 2^129");
    (
        SubScalar {
            negative: false,
            limbs: [k1[0], k1[1], k1[2]],
        },
        SubScalar {
            negative: neg2,
            limbs: [mag2[0], mag2[1], mag2[2]],
        },
    )
}

/// Splits `k < r` into base-`X` digits `k = Σ aᵢ Xⁱ` (`aᵢ < 2^64`,
/// exactly four digits since `r < X⁴`), signed by `signⁱ` so that
/// `k = Σ parts[i]·eⁱ` for the ψ eigenvalue `e = sign·X`.
pub fn split_gls4(k: &[u64; 4], eigenvalue_negative: bool) -> [SubScalar; 4] {
    let mut v = *k;
    let mut digits = [0u64; 4];
    for d in digits.iter_mut() {
        // Divide the (shrinking) value by the 64-bit X.
        let mut rem: u128 = 0;
        let mut q = [0u64; 4];
        for i in (0..4).rev() {
            let cur = (rem << 64) | v[i] as u128;
            q[i] = (cur / BLS_X as u128) as u64;
            rem = cur % BLS_X as u128;
        }
        *d = rem as u64;
        v = q;
    }
    debug_assert_eq!(v, [0u64; 4], "k < X^4 leaves no high digit");
    let mut out = [SubScalar::default(); 4];
    for (i, (slot, &digit)) in out.iter_mut().zip(digits.iter()).enumerate() {
        *slot = SubScalar {
            // X = sign·e, so the coefficient of e^i carries sign^i.
            negative: eigenvalue_negative && i % 2 == 1 && digit != 0,
            limbs: [digit, 0, 0],
        };
    }
    out
}

// ---- endomorphism application, normalized to fixed eigenvalues ----

/// Cached coefficients for applying `φ_eff` (always the `λ = X² − 1`
/// eigenfunction) and `ψⁱ` with fixed eigenvalue sign.
struct EndoCoeffs {
    /// `x ↦ beta_eff·x` multiplies a G1 point by `X² − 1` on the
    /// subgroup (`β` or `β²` depending on the probed convention).
    beta_eff: Fp,
    /// `ψⁱ(x) = frobᶦ(x)·cx_pow[i]` for `i = 1..3`.
    cx_pow: [Fp2; 3],
    /// `ψⁱ(y) = frobᶦ(y)·cy_pow[i]`.
    cy_pow: [Fp2; 3],
    /// `true` if ψ's subgroup eigenvalue is `−BLS_X`.
    psi_eigenvalue_negative: bool,
}

fn endo_coeffs() -> &'static EndoCoeffs {
    static CELL: OnceLock<EndoCoeffs> = OnceLock::new();
    CELL.get_or_init(|| {
        let phi = phi_g1();
        // If the probe resolved lambda = -X^2 for beta, then beta^2 (the
        // other nontrivial cube root) has eigenvalue (-X^2)^2 = X^2 - 1.
        let beta_eff = if phi.lambda_is_x2_minus_1 {
            phi.beta
        } else {
            phi.beta.square()
        };
        let psi = psi_g2();
        // psi^i(x) = frob^i(x) * prod_{j<i} frob^j(cx); frob on Fp2 is
        // conjugation, so the products telescope as below.
        let cx1 = psi.cx;
        let cx2 = cx1.conjugate() * psi.cx;
        let cx3 = cx2.conjugate() * psi.cx;
        let cy1 = psi.cy;
        let cy2 = cy1.conjugate() * psi.cy;
        let cy3 = cy2.conjugate() * psi.cy;
        EndoCoeffs {
            beta_eff,
            cx_pow: [cx1, cx2, cx3],
            cy_pow: [cy1, cy2, cy3],
            psi_eigenvalue_negative: psi.negative_eigenvalue,
        }
    })
}

/// `true` if ψ acts as `−BLS_X` on the G2 subgroup.
pub fn psi_eigenvalue_negative() -> bool {
    endo_coeffs().psi_eigenvalue_negative
}

/// `φ_eff(P) = [X² − 1]P` on the G1 subgroup (one `Fp` multiplication).
/// Valid in Jacobian coordinates: scaling `X` scales the affine
/// x-coordinate identically.
pub(crate) fn phi_projective(p: &G1Projective) -> G1Projective {
    G1Projective {
        x: p.x * endo_coeffs().beta_eff,
        y: p.y,
        z: p.z,
    }
}

/// `φ_eff` on an affine point.
pub(crate) fn phi_affine(p: &G1Affine) -> G1Affine {
    G1Affine {
        x: p.x * endo_coeffs().beta_eff,
        y: p.y,
        infinity: p.infinity,
    }
}

/// `ψⁱ(P)` for `i = 1..3` in Jacobian coordinates: conjugation commutes
/// with the coordinate quotients, so
/// `ψⁱ(X:Y:Z) = (frobⁱ(X)·cxᵢ·frobⁱ(Z²)/frobⁱ(Z²), …)` collapses to a
/// coordinate-wise map with `Z ↦ frobⁱ(Z)`.
pub(crate) fn psi_projective(p: &G2Projective, power: usize) -> G2Projective {
    debug_assert!((1..=3).contains(&power));
    let c = endo_coeffs();
    let frob = |v: Fp2| if power % 2 == 1 { v.conjugate() } else { v };
    G2Projective {
        x: frob(p.x) * c.cx_pow[power - 1],
        y: frob(p.y) * c.cy_pow[power - 1],
        z: frob(p.z),
    }
}

/// `ψⁱ(P)` on an affine point (`frobⁱ(1) = 1`, so affine stays affine).
pub(crate) fn psi_affine(p: &G2Affine, power: usize) -> G2Affine {
    debug_assert!((1..=3).contains(&power));
    let c = endo_coeffs();
    let frob = |v: Fp2| if power % 2 == 1 { v.conjugate() } else { v };
    G2Affine {
        x: frob(p.x) * c.cx_pow[power - 1],
        y: frob(p.y) * c.cy_pow[power - 1],
        infinity: p.infinity,
    }
}

/// Decomposes an `Fr` scalar for the G1 joint ladder.
pub fn decompose_g1(scalar: &Fr) -> Decomposition {
    let (k1, k2) = split_glv2(&scalar.to_canonical_limbs());
    let mut parts = [SubScalar::default(); MAX_DIMS];
    parts[0] = k1;
    parts[1] = k2;
    Decomposition { parts, len: 2 }
}

/// Decomposes an `Fr` scalar for the G2 joint ladder.
pub fn decompose_g2(scalar: &Fr) -> Decomposition {
    let digits = split_gls4(&scalar.to_canonical_limbs(), psi_eigenvalue_negative());
    let mut parts = [SubScalar::default(); MAX_DIMS];
    parts[..4].copy_from_slice(&digits);
    Decomposition { parts, len: 4 }
}

/// `λ = X² − 1` as an `Fr` element (the eigenvalue of `φ_eff`).
pub fn glv_lambda() -> Fr {
    Fr::from_canonical_limbs(GLV_LAMBDA_1)
}

/// The ψ eigenvalue `e = ±BLS_X` as an `Fr` element.
pub fn gls_eigenvalue() -> Fr {
    let e = Fr::from_u64(BLS_X);
    if psi_eigenvalue_negative() {
        -e
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x61f5)
    }

    fn sub_scalar_fr(s: &SubScalar) -> Fr {
        let m = Fr::from_canonical_limbs([s.limbs[0], s.limbs[1], s.limbs[2], 0]);
        if s.negative {
            -m
        } else {
            m
        }
    }

    #[test]
    fn glv2_is_congruent_and_short() {
        let mut r = rng();
        let lambda = glv_lambda();
        let mut samples: Vec<Fr> = (0..64).map(|_| Fr::random(&mut r)).collect();
        samples.extend([Fr::zero(), Fr::one(), -Fr::one(), lambda, -lambda]);
        for k in samples {
            let (k1, k2) = split_glv2(&k.to_canonical_limbs());
            assert!(k1.bits() <= 129, "k1 has {} bits", k1.bits());
            assert!(k2.bits() <= 129, "k2 has {} bits", k2.bits());
            assert_eq!(
                sub_scalar_fr(&k1) + sub_scalar_fr(&k2) * lambda,
                k,
                "decomposition must be congruent mod r"
            );
        }
    }

    #[test]
    fn gls4_is_congruent_and_short() {
        let mut r = rng();
        let e = gls_eigenvalue();
        let mut samples: Vec<Fr> = (0..64).map(|_| Fr::random(&mut r)).collect();
        samples.extend([Fr::zero(), Fr::one(), -Fr::one()]);
        for k in samples {
            let parts = split_gls4(&k.to_canonical_limbs(), psi_eigenvalue_negative());
            let mut acc = Fr::zero();
            let mut pow = Fr::one();
            for p in &parts {
                assert!(p.bits() <= 64, "digit has {} bits", p.bits());
                acc += sub_scalar_fr(p) * pow;
                pow *= e;
            }
            assert_eq!(acc, k, "base-X digits must recompose mod r");
        }
    }

    #[test]
    fn phi_eff_matches_lambda_multiplication() {
        let mut r = rng();
        let lambda = glv_lambda();
        for _ in 0..4 {
            let p = G1Projective::random(&mut r);
            assert_eq!(phi_projective(&p), p.mul_schoolbook(&lambda.to_le_bits()));
            let a = p.to_affine();
            assert_eq!(
                phi_affine(&a).to_projective(),
                p.mul_schoolbook(&lambda.to_le_bits())
            );
        }
    }

    #[test]
    fn psi_powers_match_eigenvalue_multiplication() {
        let mut r = rng();
        let e = gls_eigenvalue();
        for _ in 0..2 {
            let q = G2Projective::random(&mut r);
            let mut want = q;
            for power in 1..=3usize {
                want = want.mul_schoolbook(&e.to_le_bits());
                assert_eq!(psi_projective(&q, power), want, "psi^{}", power);
                assert_eq!(
                    psi_affine(&q.to_affine(), power).to_projective(),
                    want,
                    "affine psi^{}",
                    power
                );
            }
        }
    }

    #[test]
    fn identity_points_stay_identity() {
        assert!(phi_projective(&G1Projective::identity()).is_identity());
        assert!(psi_projective(&G2Projective::identity(), 2).is_identity());
        assert!(phi_affine(&G1Affine::identity()).is_identity());
        assert!(psi_affine(&G2Affine::identity(), 3).is_identity());
    }
}
