//! Quadratic extension `Fp2 = Fp[u]/(u² + 1)`.
//!
//! `Fp2` hosts the coordinates of the twist curve carrying `G2` (the group
//! `Ĝ` of the paper, where verification keys live). The cubic/sextic
//! non-residue used by the higher tower levels is `ξ = 1 + u`.

use crate::constants::{FP2_SQRT_E1, FP2_SQRT_E2};
use crate::fp::Fp;
use crate::traits::Field;
use rand::RngCore;

/// An element `c0 + c1·u` of `Fp2`, with `u² = -1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp2 {
    /// Coefficient of `1`.
    pub c0: Fp,
    /// Coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// Constructs an element from its two `Fp` coefficients.
    pub const fn new(c0: Fp, c1: Fp) -> Self {
        Fp2 { c0, c1 }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Fp2::new(Fp::zero(), Fp::zero())
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp2::new(Fp::one(), Fp::zero())
    }

    /// Embeds an `Fp` element as `a + 0·u`.
    pub fn from_fp(a: Fp) -> Self {
        Fp2::new(a, Fp::zero())
    }

    /// The tower non-residue `ξ = 1 + u`.
    pub fn xi() -> Self {
        Fp2::new(Fp::one(), Fp::one())
    }

    /// The inverse `ξ⁻¹` of the tower non-residue, computed once per
    /// process and shared (it scales every untwisted `G2` coordinate in
    /// the Tate Miller loop, which previously paid one field inversion
    /// per pair per pairing call).
    pub fn xi_inv() -> Self {
        static XI_INV: std::sync::OnceLock<Fp2> = std::sync::OnceLock::new();
        *XI_INV.get_or_init(|| Fp2::xi().invert().expect("xi is non-zero"))
    }

    /// The `p`-power Frobenius endomorphism, which on `Fp2` coincides
    /// with conjugation (`p ≡ 3 mod 4`, so `u^p = -u`).
    pub fn frobenius_p(&self) -> Self {
        self.conjugate()
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Scales by an `Fp` element.
    pub fn mul_by_fp(&self, a: &Fp) -> Self {
        Fp2::new(self.c0 * *a, self.c1 * *a)
    }

    /// Multiplies by the non-residue `ξ = 1 + u`:
    /// `(c0 + c1·u)(1 + u) = (c0 - c1) + (c0 + c1)·u`.
    pub fn mul_by_xi(&self) -> Self {
        Fp2::new(self.c0 - self.c1, self.c0 + self.c1)
    }

    /// The conjugate `c0 - c1·u`, which equals the `p`-power Frobenius.
    pub fn conjugate(&self) -> Self {
        Fp2::new(self.c0, -self.c1)
    }

    /// `self * self`, using the complex-squaring shortcut.
    pub fn square(&self) -> Self {
        // (c0 + c1 u)^2 = (c0+c1)(c0-c1) + 2 c0 c1 u
        let a = self.c0 + self.c1;
        let b = self.c0 - self.c1;
        let c = self.c0 * self.c1;
        Fp2::new(a * b, c.double())
    }

    /// `self + self`.
    pub fn double(&self) -> Self {
        Fp2::new(self.c0.double(), self.c1.double())
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        // 1/(c0 + c1 u) = (c0 - c1 u) / (c0^2 + c1^2); the norm sums two
        // unreduced squares (< 2p² < p·R) under one Montgomery reduction.
        let mut wide = Fp::add_wide(
            &Fp::mul_wide(&self.c0.0, &self.c0.0),
            &Fp::mul_wide(&self.c1.0, &self.c1.0),
        );
        let norm = Fp(Fp::montgomery_reduce(&mut wide));
        norm.invert()
            .map(|inv| Fp2::new(self.c0 * inv, -(self.c1 * inv)))
    }

    /// Computes a square root, if one exists.
    ///
    /// Uses the "complex method" valid for `p ≡ 3 mod 4`; the result is
    /// verified before being returned, so `None` exactly characterizes
    /// non-residues.
    pub fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        let a1 = self.pow_vartime(&FP2_SQRT_E1); // a^((p-3)/4)
        let x0 = a1 * *self;
        let alpha = a1 * x0; // a^((p-1)/2)
        let cand = if alpha == -Fp2::one() {
            // multiply by u (a square root of -1)
            Fp2::new(-x0.c1, x0.c0)
        } else {
            let b = (alpha + Fp2::one()).pow_vartime(&FP2_SQRT_E2);
            b * x0
        };
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }

    /// Sign convention for compressed points: compares `c1` first, then
    /// `c0`, against their negatives (ZCash-style ordering).
    pub fn is_lexicographically_largest(&self) -> bool {
        if !self.c1.is_zero() {
            self.c1.is_lexicographically_largest()
        } else {
            self.c0.is_lexicographically_largest()
        }
    }

    /// Serializes as `c1 || c0` big-endian (96 bytes), matching the field
    /// ordering used by common BLS12-381 encodings.
    pub fn to_bytes(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        out[..48].copy_from_slice(&self.c1.to_bytes());
        out[48..].copy_from_slice(&self.c0.to_bytes());
        out
    }

    /// Deserializes from `c1 || c0` big-endian bytes.
    pub fn from_bytes(bytes: &[u8; 96]) -> Option<Self> {
        let c1 = Fp::from_bytes(bytes[..48].try_into().unwrap())?;
        let c0 = Fp::from_bytes(bytes[48..].try_into().unwrap())?;
        Some(Fp2::new(c0, c1))
    }
}

impl core::fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp2({:?} + {:?}*u)", self.c0, self.c1)
    }
}

impl core::ops::Add for Fp2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp2::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}
impl core::ops::Sub for Fp2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp2::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}
impl core::ops::Neg for Fp2 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp2::new(-self.c0, -self.c1)
    }
}
impl core::ops::Mul for Fp2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba with lazy reduction: 3 double-width products but only
        // 2 Montgomery reductions. The unreduced combinations stay below
        // the reducer's `p·R` input bound (each product is `< p²` and
        // `sub_wide`'s borrow correction adds `p² ≡ 0 mod p`, so results
        // remain `< 2p² < p·R`).
        let aa = Fp::mul_wide(&self.c0.0, &rhs.c0.0);
        let bb = Fp::mul_wide(&self.c1.0, &rhs.c1.0);
        let cross = Fp::mul_wide(&(self.c0 + self.c1).0, &(rhs.c0 + rhs.c1).0);
        let mut re = Fp::sub_wide(&aa, &bb);
        let mut im = Fp::sub_wide(&Fp::sub_wide(&cross, &aa), &bb);
        Fp2::new(
            Fp(Fp::montgomery_reduce(&mut re)),
            Fp(Fp::montgomery_reduce(&mut im)),
        )
    }
}
impl core::ops::AddAssign for Fp2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fp2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fp2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fp2 {
    fn zero() -> Self {
        Fp2::zero()
    }
    fn one() -> Self {
        Fp2::one()
    }
    fn is_zero(&self) -> bool {
        Fp2::is_zero(self)
    }
    fn square(&self) -> Self {
        Fp2::square(self)
    }
    fn double(&self) -> Self {
        Fp2::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Fp2::invert(self)
    }
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Fp2::new(Fp::random(rng), Fp::random(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x2f2f)
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::zero(), Fp::one());
        assert_eq!(u.square(), -Fp2::one());
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..20 {
            let (a, b, c) = (
                Fp2::random(&mut r),
                Fp2::random(&mut r),
                Fp2::random(&mut r),
            );
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            assert_eq!(a.double(), a + a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fp2::one());
        }
        assert!(Fp2::zero().invert().is_none());
    }

    #[test]
    fn conjugate_is_frobenius() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        // a^p = conjugate(a): verify (a*b)^p = a^p b^p and fixed points.
        let b = Fp2::random(&mut r);
        assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
        let embedded = Fp2::from_fp(Fp::from_u64(7));
        assert_eq!(embedded.conjugate(), embedded);
        // conj(conj(a)) = a
        assert_eq!(a.conjugate().conjugate(), a);
        // a * conj(a) lies in Fp (imaginary part zero)
        assert!((a * a.conjugate()).c1.is_zero());
    }

    #[test]
    fn mul_by_xi_matches_mul() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(a.mul_by_xi(), a * Fp2::xi());
    }

    #[test]
    fn xi_inv_is_the_inverse() {
        assert_eq!(Fp2::xi() * Fp2::xi_inv(), Fp2::one());
        // Idempotent: repeated reads return the same cached value.
        assert_eq!(Fp2::xi_inv(), Fp2::xi_inv());
    }

    #[test]
    fn frobenius_p_is_conjugation() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(a.frobenius_p(), a.conjugate());
        assert_eq!(a.frobenius_p().frobenius_p(), a);
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut r = rng();
        let mut found_residue = 0;
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("squares have roots");
            assert!(root == a || root == -a);
            found_residue += 1;
        }
        assert!(found_residue > 0);
    }

    #[test]
    fn sqrt_rejects_non_residues() {
        // In Fp2, an element is a square iff its norm is a square in Fp.
        // Scan a few small elements and cross-check candidate roots.
        let mut r = rng();
        let mut rejected = 0;
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            if a.sqrt().is_none() {
                rejected += 1;
            }
        }
        // About half of all elements are non-squares.
        assert!(rejected > 0, "expected at least one non-residue in sample");
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(Fp2::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn mul_by_fp_consistent() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let s = Fp::from_u64(12345);
        assert_eq!(a.mul_by_fp(&s), a * Fp2::from_fp(s));
    }
}
