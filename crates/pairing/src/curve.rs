//! Short-Weierstrass curve groups `G1` (over `Fp`) and `G2` (over `Fp2`).
//!
//! Both curves have the form `y² = x³ + b` (`a = 0`), so one generic
//! Jacobian-coordinate implementation serves both. `G1` is the group `G` of
//! the paper (signatures, message hashes); `G2` is `Ĝ` (public keys,
//! verification keys, VSS commitments).
//!
//! Scalar multiplication is variable-time throughout: this library is a
//! research artifact for protocol-level experiments, not a hardened
//! side-channel-resistant implementation (see DESIGN.md).

use crate::constants::{
    G1_COFACTOR, G1_GEN_X, G1_GEN_Y, G2_COFACTOR, G2_GEN_X0, G2_GEN_X1, G2_GEN_Y0, G2_GEN_Y1, ORDER,
};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::glv::{self, Decomposition};
use crate::traits::Field;
use core::fmt::Debug;
use rand::RngCore;

/// Static parameters of one of the two curve groups.
pub trait CurveParams: 'static + Copy + Clone + Debug + Send + Sync {
    /// The coordinate field.
    type Base: Field;
    /// Curve coefficient `b` in `y² = x³ + b`.
    fn b() -> Self::Base;
    /// Affine coordinates of the standard subgroup generator.
    fn generator_xy() -> (Self::Base, Self::Base);
    /// Cofactor of the prime-order subgroup, as little-endian limbs.
    fn cofactor() -> &'static [u64];
    /// Short name used in `Debug` output.
    const NAME: &'static str;
    /// Length of the compressed point encoding in bytes.
    const COMPRESSED_SIZE: usize;
    /// Compressed encoding (used by the generic serde impls).
    fn affine_to_bytes(p: &Affine<Self>) -> Vec<u8>
    where
        Self: Sized;
    /// Decodes and fully validates a compressed point.
    fn affine_from_bytes(bytes: &[u8]) -> Result<Affine<Self>, DecodePointError>
    where
        Self: Sized;

    // --- endomorphism acceleration hooks (GLV/GLS, see `glv`) ---
    //
    // The decomposition identities only hold on the prime-order
    // subgroup; every public constructor of this crate yields subgroup
    // points, and the raw-limb paths (`mul_vartime_limbs`,
    // `clear_cofactor`, `is_torsion_free`) never decompose.

    /// Number of sub-scalars the endomorphism decomposition produces
    /// (`1` = no endomorphism acceleration; the generic paths apply).
    fn endo_dimensions() -> usize {
        1
    }

    /// Upper bound on the bit length of decomposed sub-scalars.
    fn endo_sub_bits() -> usize {
        256
    }

    /// Splits a scalar into [`Self::endo_dimensions`] signed
    /// sub-scalars `kᵢ` with `k ≡ Σ kᵢ·λⁱ (mod r)` for the eigenvalue
    /// `λ` of the curve endomorphism, or `None` without one.
    fn endo_decompose(scalar: &Fr) -> Option<Decomposition> {
        let _ = scalar;
        None
    }

    /// Applies the `power`-th endomorphism (`λᵖᵒʷᵉʳ`-multiplication on
    /// the subgroup) to a projective point; `power = 0` is the identity.
    fn endo_projective(p: &Projective<Self>, power: usize) -> Projective<Self>
    where
        Self: Sized,
    {
        debug_assert_eq!(power, 0, "curve has no endomorphism powers");
        *p
    }

    /// The `power`-th endomorphism on an affine point.
    fn endo_affine(p: &Affine<Self>, power: usize) -> Affine<Self>
    where
        Self: Sized,
    {
        debug_assert_eq!(power, 0, "curve has no endomorphism powers");
        *p
    }
}

/// Marker for the `G1` group (curve `y² = x³ + 4` over `Fp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fp;
    fn b() -> Fp {
        Fp::from_u64(4)
    }
    fn generator_xy() -> (Fp, Fp) {
        (
            Fp::from_canonical_limbs(G1_GEN_X),
            Fp::from_canonical_limbs(G1_GEN_Y),
        )
    }
    fn cofactor() -> &'static [u64] {
        &G1_COFACTOR
    }
    const NAME: &'static str = "G1";
    const COMPRESSED_SIZE: usize = 48;
    fn affine_to_bytes(p: &Affine<Self>) -> Vec<u8> {
        p.to_compressed().to_vec()
    }
    fn affine_from_bytes(bytes: &[u8]) -> Result<Affine<Self>, DecodePointError> {
        let arr: [u8; 48] = bytes.try_into().map_err(|_| DecodePointError::BadFlags)?;
        G1Affine::from_compressed(&arr)
    }
    fn endo_dimensions() -> usize {
        2
    }
    fn endo_sub_bits() -> usize {
        // GLV sub-scalars are below 2·BLS_X² < 2^129 (see `glv`).
        129
    }
    fn endo_decompose(scalar: &Fr) -> Option<Decomposition> {
        Some(glv::decompose_g1(scalar))
    }
    fn endo_projective(p: &Projective<Self>, power: usize) -> Projective<Self> {
        match power {
            0 => *p,
            1 => glv::phi_projective(p),
            _ => unreachable!("G1 GLV uses two dimensions"),
        }
    }
    fn endo_affine(p: &Affine<Self>, power: usize) -> Affine<Self> {
        match power {
            0 => *p,
            1 => glv::phi_affine(p),
            _ => unreachable!("G1 GLV uses two dimensions"),
        }
    }
}

/// Marker for the `G2` group (twist `y² = x³ + 4(1+u)` over `Fp2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fp2;
    fn b() -> Fp2 {
        Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
    }
    fn generator_xy() -> (Fp2, Fp2) {
        (
            Fp2::new(
                Fp::from_canonical_limbs(G2_GEN_X0),
                Fp::from_canonical_limbs(G2_GEN_X1),
            ),
            Fp2::new(
                Fp::from_canonical_limbs(G2_GEN_Y0),
                Fp::from_canonical_limbs(G2_GEN_Y1),
            ),
        )
    }
    fn cofactor() -> &'static [u64] {
        &G2_COFACTOR
    }
    const NAME: &'static str = "G2";
    const COMPRESSED_SIZE: usize = 96;
    fn affine_to_bytes(p: &Affine<Self>) -> Vec<u8> {
        p.to_compressed().to_vec()
    }
    fn affine_from_bytes(bytes: &[u8]) -> Result<Affine<Self>, DecodePointError> {
        let arr: [u8; 96] = bytes.try_into().map_err(|_| DecodePointError::BadFlags)?;
        G2Affine::from_compressed(&arr)
    }
    fn endo_dimensions() -> usize {
        4
    }
    fn endo_sub_bits() -> usize {
        // GLS digits are base-BLS_X digits, strictly below 2^64.
        64
    }
    fn endo_decompose(scalar: &Fr) -> Option<Decomposition> {
        Some(glv::decompose_g2(scalar))
    }
    fn endo_projective(p: &Projective<Self>, power: usize) -> Projective<Self> {
        if power == 0 {
            *p
        } else {
            glv::psi_projective(p, power)
        }
    }
    fn endo_affine(p: &Affine<Self>, power: usize) -> Affine<Self> {
        if power == 0 {
            *p
        } else {
            glv::psi_affine(p, power)
        }
    }
}

/// A point in Jacobian projective coordinates `(X : Y : Z)`, representing
/// the affine point `(X/Z², Y/Z³)`; the identity is encoded by `Z = 0`.
#[derive(Clone, Copy)]
pub struct Projective<C: CurveParams> {
    pub(crate) x: C::Base,
    pub(crate) y: C::Base,
    pub(crate) z: C::Base,
}

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy)]
pub struct Affine<C: CurveParams> {
    pub(crate) x: C::Base,
    pub(crate) y: C::Base,
    pub(crate) infinity: bool,
}

/// The group `G1` in projective form.
pub type G1Projective = Projective<G1Params>;
/// The group `G1` in affine form.
pub type G1Affine = Affine<G1Params>;
/// The group `G2` in projective form.
pub type G2Projective = Projective<G2Params>;
/// The group `G2` in affine form.
pub type G2Affine = Affine<G2Params>;

impl<C: CurveParams> Projective<C> {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        Projective {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
        }
    }

    /// The standard subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator_xy();
        Projective {
            x,
            y,
            z: C::Base::one(),
        }
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Checks the Jacobian curve equation `Y² = X³ + b·Z⁶`.
    pub fn is_on_curve(&self) -> bool {
        if self.is_identity() {
            return true;
        }
        let z2 = self.z.square();
        let z6 = z2.square() * z2;
        self.y.square() == self.x.square() * self.x + z6 * C::b()
    }

    /// Point doubling (`dbl-2009-l`, valid for `a = 0`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition (`add-2007-bl`), handling all edge cases.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`madd-2007-bl`).
    pub fn add_affine(&self, rhs: &Affine<C>) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return rhs.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Projective {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Variable-time scalar multiplication by a field scalar.
    ///
    /// On curves with an efficient endomorphism (both groups of this
    /// crate) the scalar is GLV/GLS-decomposed and a joint wNAF ladder
    /// over `(P, λP, …)` runs with half (G1) or a quarter (G2) of the
    /// doublings; otherwise this is width-4 wNAF. The decomposition is
    /// only valid on the prime-order subgroup — the contract of every
    /// public point constructor. See [`Self::mul_schoolbook`] for the
    /// reference slow path.
    pub fn mul(&self, scalar: &Fr) -> Self {
        if let Some(dec) = C::endo_decompose(scalar) {
            return self.mul_decomposed(&dec);
        }
        self.mul_vartime_limbs(&scalar.to_le_bits())
    }

    /// Builds the odd-multiples table `{1, 3, 5, 7}·P` shared by the
    /// wNAF ladders (width 4: `2^(4-2)` entries).
    fn odd_multiples(&self) -> [Self; 4] {
        let twice = self.double();
        let mut table = [Self::identity(); 4];
        let mut cur = *self;
        for slot in table.iter_mut() {
            *slot = cur;
            cur = cur.add(&twice);
        }
        table
    }

    /// The joint wNAF ladder over the endomorphism decomposition: one
    /// shared doubling chain of `C::endo_sub_bits()` steps with the
    /// per-dimension digit additions interleaved. The dimension tables
    /// come from the base table through the endomorphism (a couple of
    /// field multiplications per entry instead of a group addition).
    fn mul_decomposed(&self, dec: &Decomposition) -> Self {
        const WIDTH: usize = 4;
        if self.is_identity() {
            return *self;
        }
        let base_table = self.odd_multiples();
        let mut tables = Vec::with_capacity(dec.len);
        let mut digit_sets = Vec::with_capacity(dec.len);
        let mut max_len = 0usize;
        for (i, part) in dec.parts[..dec.len].iter().enumerate() {
            let digits = crate::arith::wnaf_digits(&part.limbs, WIDTH);
            max_len = max_len.max(digits.len());
            digit_sets.push(digits);
            let mut table = base_table;
            if i > 0 {
                for slot in table.iter_mut() {
                    *slot = C::endo_projective(slot, i);
                }
            }
            if part.negative {
                for slot in table.iter_mut() {
                    *slot = slot.neg();
                }
            }
            tables.push(table);
        }
        let mut acc = Self::identity();
        for j in (0..max_len).rev() {
            acc = acc.double();
            for (digits, table) in digit_sets.iter().zip(tables.iter()) {
                let d = digits.get(j).copied().unwrap_or(0);
                if d > 0 {
                    acc = acc.add(&table[(d as usize - 1) / 2]);
                } else if d < 0 {
                    acc = acc.add(&table[((-d) as usize - 1) / 2].neg());
                }
            }
        }
        acc
    }

    /// Variable-time scalar multiplication by an arbitrary little-endian
    /// limb integer (also used for cofactor clearing and subgroup
    /// checks, where the scalar is *not* reduced mod `r` and the point
    /// may lie outside the subgroup — so this path never decomposes).
    ///
    /// Uses width-4 wNAF: a 4-entry table of odd multiples
    /// `{1, 3, 5, 7}·P` and on average one addition per 5 bits, versus
    /// one per 2 bits for the schoolbook ladder. Equivalence with
    /// [`Self::mul_schoolbook`] is enforced by property tests.
    pub fn mul_vartime_limbs(&self, limbs: &[u64]) -> Self {
        if self.is_identity() {
            return *self;
        }
        let digits = crate::arith::wnaf_digits(limbs, 4);
        if digits.is_empty() {
            return Self::identity();
        }
        let table = self.odd_multiples();
        // The top digit of a non-zero scalar is positive (the remainder
        // is non-negative throughout the recoding), so the accumulator
        // starts from a table entry with no leading doublings.
        let top = digits[digits.len() - 1];
        debug_assert!(top > 0, "wNAF top digit must be positive");
        let mut acc = table[(top as usize - 1) / 2];
        for &d in digits.iter().rev().skip(1) {
            acc = acc.double();
            if d > 0 {
                acc = acc.add(&table[(d as usize - 1) / 2]);
            } else if d < 0 {
                acc = acc.add(&table[((-d) as usize - 1) / 2].neg());
            }
        }
        acc
    }

    /// Reference double-and-add scalar multiplication — the deliberately
    /// unoptimized slow path that every fast path (wNAF, fixed-base
    /// tables, MSM) is property-tested against.
    pub fn mul_schoolbook(&self, limbs: &[u64]) -> Self {
        let mut acc = Self::identity();
        let mut started = false;
        for limb in limbs.iter().rev() {
            for i in (0..64).rev() {
                if started {
                    acc = acc.double();
                }
                if (limb >> i) & 1 == 1 {
                    acc = acc.add(self);
                    started = true;
                }
            }
        }
        acc
    }

    /// Maps an arbitrary curve point into the prime-order subgroup.
    pub fn clear_cofactor(&self) -> Self {
        self.mul_vartime_limbs(C::cofactor())
    }

    /// Returns `true` if the point lies in the prime-order subgroup.
    pub fn is_torsion_free(&self) -> bool {
        self.mul_vartime_limbs(&ORDER).is_identity()
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.invert().expect("non-identity point has z != 0");
        let zinv2 = zinv.square();
        Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Converts many points to affine with a single field inversion
    /// *per chunk* ([`crate::batch_invert`], Montgomery's trick);
    /// identity points map to the affine identity. Long inputs are
    /// normalized in parallel chunks (each big enough to amortize its
    /// own Fermat inversion); every element's `z⁻¹` is the unique field
    /// inverse regardless of which chunk computes it, so the output is
    /// bit-identical for every thread count.
    pub fn batch_to_affine(points: &[Self]) -> Vec<Affine<C>> {
        // One Fermat inversion costs ~380 field multiplications; chunks
        // of 128 keep the per-chunk amortization above 97%.
        const PAR_MIN_CHUNK: usize = 128;
        if points.len() >= 2 * PAR_MIN_CHUNK && borndist_parallel::current_threads() > 1 {
            let chunks =
                borndist_parallel::par_chunks(points, PAR_MIN_CHUNK, Self::batch_to_affine_chunk);
            let mut out = Vec::with_capacity(points.len());
            for c in chunks {
                out.extend(c);
            }
            return out;
        }
        Self::batch_to_affine_chunk(points)
    }

    /// The sequential body of [`Self::batch_to_affine`]: one shared
    /// inversion for the whole slice.
    fn batch_to_affine_chunk(points: &[Self]) -> Vec<Affine<C>> {
        let mut zs: Vec<C::Base> = points.iter().map(|p| p.z).collect();
        crate::traits::batch_invert(&mut zs);
        points
            .iter()
            .zip(zs)
            .map(|(p, zinv)| {
                if p.is_identity() {
                    Affine::identity()
                } else {
                    let zinv2 = zinv.square();
                    Affine {
                        x: p.x * zinv2,
                        y: p.y * zinv2 * zinv,
                        infinity: false,
                    }
                }
            })
            .collect()
    }

    /// Samples a uniformly random subgroup element.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul(&Fr::random(rng))
    }

    /// Sums an iterator of points.
    pub fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter()
            .fold(Self::identity(), |acc, p| acc.add(&p))
    }
}

impl<C: CurveParams> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Affine {
            x: C::Base::zero(),
            y: C::Base::one(),
            infinity: true,
        }
    }

    /// The standard subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator_xy();
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// The affine x-coordinate. Meaningless for the identity.
    pub fn x(&self) -> C::Base {
        self.x
    }

    /// The affine y-coordinate. Meaningless for the identity.
    pub fn y(&self) -> C::Base {
        self.y
    }

    /// Checks the affine curve equation.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + C::b()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            return Projective::identity();
        }
        Projective {
            x: self.x,
            y: self.y,
            z: C::Base::one(),
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Affine {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Variable-time scalar multiplication.
    pub fn mul(&self, scalar: &Fr) -> Projective<C> {
        self.to_projective().mul(scalar)
    }
}

impl<C: CurveParams> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        // (X1:Y1:Z1) == (X2:Y2:Z2)  iff  X1 Z2² == X2 Z1² and Y1 Z2³ == Y2 Z1³
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}
impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> PartialEq for Affine<C> {
    fn eq(&self, other: &Self) -> bool {
        (self.infinity && other.infinity)
            || (!self.infinity && !other.infinity && self.x == other.x && self.y == other.y)
    }
}
impl<C: CurveParams> Eq for Affine<C> {}

impl<C: CurveParams> Debug for Projective<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_identity() {
            write!(f, "{}(identity)", C::NAME)
        } else {
            let a = self.to_affine();
            write!(f, "{}({:?}, {:?})", C::NAME, a.x, a.y)
        }
    }
}

impl<C: CurveParams> Debug for Affine<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.infinity {
            write!(f, "{}(identity)", C::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", C::NAME, self.x, self.y)
        }
    }
}

impl<C: CurveParams> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}
impl<C: CurveParams> Default for Affine<C> {
    fn default() -> Self {
        Self::identity()
    }
}

// --- operator sugar ---

impl<C: CurveParams> core::ops::Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}
impl<C: CurveParams> core::ops::Add<Affine<C>> for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Affine<C>) -> Self {
        self.add_affine(&rhs)
    }
}
impl<C: CurveParams> core::ops::Sub for Projective<C> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs.neg())
    }
}
impl<C: CurveParams> core::ops::Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}
impl<C: CurveParams> core::ops::Mul<Fr> for Projective<C> {
    type Output = Self;
    fn mul(self, rhs: Fr) -> Self {
        Projective::mul(&self, &rhs)
    }
}
impl<C: CurveParams> core::ops::AddAssign for Projective<C> {
    fn add_assign(&mut self, rhs: Self) {
        *self = Projective::add(self, &rhs);
    }
}
impl<C: CurveParams> core::ops::SubAssign for Projective<C> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<C: CurveParams> core::ops::MulAssign<Fr> for Projective<C> {
    fn mul_assign(&mut self, rhs: Fr) {
        *self = Projective::mul(self, &rhs);
    }
}

// --- serialization ---
//
// Compressed encodings follow the widely used ZCash BLS12-381 format:
// the first byte carries three flag bits (compressed, infinity, y-sign)
// above the big-endian x-coordinate.

/// Error returned when decoding a group element fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodePointError {
    /// Flag bits are inconsistent or reserved bits are set.
    BadFlags,
    /// A coordinate is not a canonical field element.
    NonCanonical,
    /// The x-coordinate has no matching y (not on the curve).
    NotOnCurve,
    /// The point is on the curve but outside the prime-order subgroup.
    NotInSubgroup,
}

impl core::fmt::Display for DecodePointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            DecodePointError::BadFlags => "invalid flag bits in point encoding",
            DecodePointError::NonCanonical => "non-canonical coordinate encoding",
            DecodePointError::NotOnCurve => "point is not on the curve",
            DecodePointError::NotInSubgroup => "point is not in the prime-order subgroup",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodePointError {}

const FLAG_COMPRESSED: u8 = 0x80;
const FLAG_INFINITY: u8 = 0x40;
const FLAG_SIGN: u8 = 0x20;

impl G1Affine {
    /// Serializes to 48-byte compressed form.
    pub fn to_compressed(&self) -> [u8; 48] {
        let mut out = [0u8; 48];
        if self.infinity {
            out[0] = FLAG_COMPRESSED | FLAG_INFINITY;
            return out;
        }
        out.copy_from_slice(&self.x.to_bytes());
        out[0] |= FLAG_COMPRESSED;
        if self.y.is_lexicographically_largest() {
            out[0] |= FLAG_SIGN;
        }
        out
    }

    /// Deserializes from 48-byte compressed form, checking the curve
    /// equation and prime-order subgroup membership.
    pub fn from_compressed(bytes: &[u8; 48]) -> Result<Self, DecodePointError> {
        let flags = bytes[0] & 0xe0;
        if flags & FLAG_COMPRESSED == 0 {
            return Err(DecodePointError::BadFlags);
        }
        if flags & FLAG_INFINITY != 0 {
            if bytes[1..].iter().any(|&b| b != 0) || bytes[0] != (FLAG_COMPRESSED | FLAG_INFINITY) {
                return Err(DecodePointError::BadFlags);
            }
            return Ok(Self::identity());
        }
        let mut xb = *bytes;
        xb[0] &= 0x1f;
        let x = Fp::from_bytes(&xb).ok_or(DecodePointError::NonCanonical)?;
        let y2 = x.square() * x + G1Params::b();
        let mut y = y2.sqrt().ok_or(DecodePointError::NotOnCurve)?;
        let want_largest = flags & FLAG_SIGN != 0;
        if y.is_lexicographically_largest() != want_largest {
            y = -y;
        }
        let point = G1Affine {
            x,
            y,
            infinity: false,
        };
        if !crate::endo::g1_in_subgroup(&point) {
            return Err(DecodePointError::NotInSubgroup);
        }
        Ok(point)
    }

    /// Serializes to 96-byte uncompressed form (`x || y` big-endian).
    pub fn to_uncompressed(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        if self.infinity {
            out[0] = FLAG_INFINITY;
            return out;
        }
        out[..48].copy_from_slice(&self.x.to_bytes());
        out[48..].copy_from_slice(&self.y.to_bytes());
        out
    }

    /// Deserializes from 96-byte uncompressed form with full validation.
    pub fn from_uncompressed(bytes: &[u8; 96]) -> Result<Self, DecodePointError> {
        if bytes[0] & FLAG_INFINITY != 0 {
            if bytes.iter().skip(1).any(|&b| b != 0) || bytes[0] != FLAG_INFINITY {
                return Err(DecodePointError::BadFlags);
            }
            return Ok(Self::identity());
        }
        let x = Fp::from_bytes(bytes[..48].try_into().unwrap())
            .ok_or(DecodePointError::NonCanonical)?;
        let y = Fp::from_bytes(bytes[48..].try_into().unwrap())
            .ok_or(DecodePointError::NonCanonical)?;
        let point = G1Affine {
            x,
            y,
            infinity: false,
        };
        if !point.is_on_curve() {
            return Err(DecodePointError::NotOnCurve);
        }
        if !crate::endo::g1_in_subgroup(&point) {
            return Err(DecodePointError::NotInSubgroup);
        }
        Ok(point)
    }
}

impl G2Affine {
    /// Serializes to 96-byte compressed form.
    pub fn to_compressed(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        if self.infinity {
            out[0] = FLAG_COMPRESSED | FLAG_INFINITY;
            return out;
        }
        out.copy_from_slice(&self.x.to_bytes());
        out[0] |= FLAG_COMPRESSED;
        if self.y.is_lexicographically_largest() {
            out[0] |= FLAG_SIGN;
        }
        out
    }

    /// Deserializes from 96-byte compressed form, checking the curve
    /// equation and prime-order subgroup membership.
    pub fn from_compressed(bytes: &[u8; 96]) -> Result<Self, DecodePointError> {
        let flags = bytes[0] & 0xe0;
        if flags & FLAG_COMPRESSED == 0 {
            return Err(DecodePointError::BadFlags);
        }
        if flags & FLAG_INFINITY != 0 {
            if bytes[1..].iter().any(|&b| b != 0) || bytes[0] != (FLAG_COMPRESSED | FLAG_INFINITY) {
                return Err(DecodePointError::BadFlags);
            }
            return Ok(Self::identity());
        }
        let mut xb = *bytes;
        xb[0] &= 0x1f;
        let x = Fp2::from_bytes(&xb).ok_or(DecodePointError::NonCanonical)?;
        let y2 = x.square() * x + G2Params::b();
        let mut y = y2.sqrt().ok_or(DecodePointError::NotOnCurve)?;
        let want_largest = flags & FLAG_SIGN != 0;
        if y.is_lexicographically_largest() != want_largest {
            y = -y;
        }
        let point = G2Affine {
            x,
            y,
            infinity: false,
        };
        if !crate::endo::g2_in_subgroup(&point) {
            return Err(DecodePointError::NotInSubgroup);
        }
        Ok(point)
    }

    /// Serializes to 192-byte uncompressed form.
    pub fn to_uncompressed(&self) -> [u8; 192] {
        let mut out = [0u8; 192];
        if self.infinity {
            out[0] = FLAG_INFINITY;
            return out;
        }
        out[..96].copy_from_slice(&self.x.to_bytes());
        out[96..].copy_from_slice(&self.y.to_bytes());
        out
    }

    /// Deserializes from 192-byte uncompressed form with full validation.
    pub fn from_uncompressed(bytes: &[u8; 192]) -> Result<Self, DecodePointError> {
        if bytes[0] & FLAG_INFINITY != 0 {
            if bytes.iter().skip(1).any(|&b| b != 0) || bytes[0] != FLAG_INFINITY {
                return Err(DecodePointError::BadFlags);
            }
            return Ok(Self::identity());
        }
        let x = Fp2::from_bytes(bytes[..96].try_into().unwrap())
            .ok_or(DecodePointError::NonCanonical)?;
        let y = Fp2::from_bytes(bytes[96..].try_into().unwrap())
            .ok_or(DecodePointError::NonCanonical)?;
        let point = G2Affine {
            x,
            y,
            infinity: false,
        };
        if !point.is_on_curve() {
            return Err(DecodePointError::NotOnCurve);
        }
        if !crate::endo::g2_in_subgroup(&point) {
            return Err(DecodePointError::NotInSubgroup);
        }
        Ok(point)
    }
}

impl<C: CurveParams> serde::Serialize for Affine<C> {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&C::affine_to_bytes(self), s)
    }
}
impl<'de, C: CurveParams> serde::Deserialize<'de> for Affine<C> {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let bytes: Vec<u8> = serde::Deserialize::deserialize(d)?;
        C::affine_from_bytes(&bytes).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0c0)
    }

    #[test]
    fn generators_on_curve_and_torsion_free() {
        assert!(G1Projective::generator().is_on_curve());
        assert!(G2Projective::generator().is_on_curve());
        assert!(G1Projective::generator().is_torsion_free());
        assert!(G2Projective::generator().is_torsion_free());
    }

    #[test]
    fn identity_laws() {
        let mut r = rng();
        let p = G1Projective::random(&mut r);
        let id = G1Projective::identity();
        assert_eq!(p + id, p);
        assert_eq!(id + p, p);
        assert_eq!(p - p, id);
        assert!(id.is_on_curve());
        assert!(id.double().is_identity());
    }

    #[test]
    fn add_commutes_and_associates() {
        let mut r = rng();
        for _ in 0..5 {
            let (p, q, s) = (
                G1Projective::random(&mut r),
                G1Projective::random(&mut r),
                G1Projective::random(&mut r),
            );
            assert_eq!(p + q, q + p);
            assert_eq!((p + q) + s, p + (q + s));
            assert!((p + q).is_on_curve());
        }
    }

    #[test]
    fn double_matches_add() {
        let mut r = rng();
        let p = G2Projective::random(&mut r);
        assert_eq!(p.double(), p + p);
    }

    #[test]
    fn mixed_add_matches_full_add() {
        let mut r = rng();
        let p = G1Projective::random(&mut r);
        let q = G1Projective::random(&mut r);
        assert_eq!(p.add_affine(&q.to_affine()), p + q);
        // Edge: add to itself via affine.
        assert_eq!(p.add_affine(&p.to_affine()), p.double());
        // Edge: add the negative.
        assert!(p.add_affine(&p.neg().to_affine()).is_identity());
        // Edge: identity + affine.
        assert_eq!(G1Projective::identity().add_affine(&q.to_affine()), q);
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut r = rng();
        let p = G1Projective::generator();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        assert_eq!(p.mul(&a) + p.mul(&b), p.mul(&(a + b)));
        assert_eq!(p.mul(&a).mul(&b), p.mul(&(a * b)));
        assert!(p.mul(&Fr::zero()).is_identity());
        assert_eq!(p.mul(&Fr::one()), p);
    }

    #[test]
    fn scalar_mul_small_values() {
        let p = G2Projective::generator();
        assert_eq!(p.mul(&Fr::from_u64(3)), p + p + p);
        assert_eq!(p.mul(&Fr::from_u64(5)), p.double().double() + p);
    }

    #[test]
    fn order_annihilates_generator() {
        assert!(G1Projective::generator()
            .mul_vartime_limbs(&ORDER)
            .is_identity());
        assert!(G2Projective::generator()
            .mul_vartime_limbs(&ORDER)
            .is_identity());
    }

    #[test]
    fn affine_roundtrip() {
        let mut r = rng();
        let p = G1Projective::random(&mut r);
        assert_eq!(p.to_affine().to_projective(), p);
        assert!(G1Projective::identity().to_affine().is_identity());
    }

    #[test]
    fn batch_to_affine_matches_single() {
        let mut r = rng();
        let mut pts: Vec<G1Projective> = (0..7).map(|_| G1Projective::random(&mut r)).collect();
        pts.insert(3, G1Projective::identity());
        let batch = G1Projective::batch_to_affine(&pts);
        for (p, a) in pts.iter().zip(batch.iter()) {
            assert_eq!(p.to_affine(), *a);
        }
    }

    #[test]
    fn g1_compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G1Projective::random(&mut r).to_affine();
            let enc = p.to_compressed();
            assert_eq!(G1Affine::from_compressed(&enc).unwrap(), p);
        }
        let id = G1Affine::identity();
        assert_eq!(G1Affine::from_compressed(&id.to_compressed()).unwrap(), id);
    }

    #[test]
    fn g1_uncompressed_roundtrip() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        assert_eq!(
            G1Affine::from_uncompressed(&p.to_uncompressed()).unwrap(),
            p
        );
    }

    #[test]
    fn g2_compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..3 {
            let p = G2Projective::random(&mut r).to_affine();
            let enc = p.to_compressed();
            assert_eq!(G2Affine::from_compressed(&enc).unwrap(), p);
        }
    }

    #[test]
    fn g2_uncompressed_roundtrip() {
        let mut r = rng();
        let p = G2Projective::random(&mut r).to_affine();
        assert_eq!(
            G2Affine::from_uncompressed(&p.to_uncompressed()).unwrap(),
            p
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        let zero = [0u8; 48];
        assert!(G1Affine::from_compressed(&zero).is_err());
        let mut bad = [0xffu8; 48];
        bad[0] = 0x80;
        assert!(G1Affine::from_compressed(&bad).is_err());
    }

    #[test]
    fn decode_rejects_non_subgroup_point() {
        // Construct an Fp point on the curve but (almost surely) outside
        // the subgroup by picking x-candidates without cofactor clearing.
        let mut r = rng();
        loop {
            let x = Fp::random(&mut r);
            let y2 = x.square() * x + G1Params::b();
            if let Some(y) = y2.sqrt() {
                let p = G1Affine {
                    x,
                    y,
                    infinity: false,
                };
                assert!(p.is_on_curve());
                if !p.to_projective().is_torsion_free() {
                    let enc = p.to_compressed();
                    assert_eq!(
                        G1Affine::from_compressed(&enc),
                        Err(DecodePointError::NotInSubgroup)
                    );
                    break;
                }
            }
        }
    }

    #[test]
    fn projective_eq_across_representations() {
        let mut r = rng();
        let p = G1Projective::random(&mut r);
        let doubled_rep = Projective {
            // scale coordinates: (X:Y:Z) ~ (c^2 X : c^3 Y : c Z)
            x: p.x * Fp::from_u64(4),
            y: p.y * Fp::from_u64(8),
            z: p.z * Fp::from_u64(2),
        };
        assert_eq!(p, doubled_rep);
    }

    #[test]
    fn cofactor_clearing_lands_in_subgroup() {
        let mut r = rng();
        loop {
            let x = Fp::random(&mut r);
            let y2 = x.square() * x + G1Params::b();
            if let Some(y) = y2.sqrt() {
                let p = Affine::<G1Params> {
                    x,
                    y,
                    infinity: false,
                }
                .to_projective();
                let cleared = p.clear_cofactor();
                assert!(cleared.is_torsion_free());
                return;
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let json = serde_json_like_roundtrip(&p);
        assert_eq!(json, p);
        let q = G2Projective::random(&mut r).to_affine();
        let json2 = serde_json_like_roundtrip2(&q);
        assert_eq!(json2, q);
    }

    // Minimal serde round-trip via bincode-like manual driver is overkill;
    // use serde's test-friendly token stream through postcard-style Vec.
    fn serde_json_like_roundtrip(p: &G1Affine) -> G1Affine {
        let enc = p.to_compressed();
        G1Affine::from_compressed(&enc).unwrap()
    }
    fn serde_json_like_roundtrip2(p: &G2Affine) -> G2Affine {
        let enc = p.to_compressed();
        G2Affine::from_compressed(&enc).unwrap()
    }
}
