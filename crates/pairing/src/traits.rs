//! Abstractions shared by all field and group types in the crate.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::RngCore;

/// A finite field.
///
/// Implemented by [`crate::Fp`], [`crate::Fr`], and the tower extensions
/// [`crate::Fp2`], [`crate::Fp6`], [`crate::Fp12`]. All implementations are
/// `Copy` value types with operator overloads, so generic code reads like
/// ordinary arithmetic.
pub trait Field:
    Sized
    + Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool;
    /// `self * self`.
    fn square(&self) -> Self;
    /// `self + self`.
    fn double(&self) -> Self;
    /// Multiplicative inverse, `None` for zero.
    fn invert(&self) -> Option<Self>;
    /// Uniformly random element.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Variable-time exponentiation by little-endian `u64` limbs.
    fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for e in exp.iter().rev() {
            for i in (0..64).rev() {
                if started {
                    res = res.square();
                }
                if (*e >> i) & 1 == 1 {
                    res *= *self;
                    started = true;
                }
            }
        }
        res
    }
}
