//! Abstractions shared by all field and group types in the crate.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::RngCore;

/// A finite field.
///
/// Implemented by [`crate::Fp`], [`crate::Fr`], and the tower extensions
/// [`crate::Fp2`], [`crate::Fp6`], [`crate::Fp12`]. All implementations are
/// `Copy` value types with operator overloads, so generic code reads like
/// ordinary arithmetic.
pub trait Field:
    Sized
    + Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool;
    /// `self * self`.
    fn square(&self) -> Self;
    /// `self + self`.
    fn double(&self) -> Self;
    /// Multiplicative inverse, `None` for zero.
    fn invert(&self) -> Option<Self>;
    /// Uniformly random element.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Variable-time exponentiation by little-endian `u64` limbs.
    fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for e in exp.iter().rev() {
            for i in (0..64).rev() {
                if started {
                    res = res.square();
                }
                if (*e >> i) & 1 == 1 {
                    res *= *self;
                    started = true;
                }
            }
        }
        res
    }
}

/// Montgomery batch inversion: replaces every non-zero element of
/// `elems` by its multiplicative inverse using a *single* field inversion
/// plus `3(n-1)` multiplications; zeros are left untouched.
///
/// This is the amortization behind [`crate::Projective::batch_to_affine`]
/// and the affine bucket collapse inside [`crate::msm`]; one inversion
/// costs hundreds of multiplications (Fermat exponentiation), so batching
/// it across `n` elements is what makes affine-coordinate fast paths pay
/// off.
pub fn batch_invert<F: Field>(elems: &mut [F]) {
    // Prefix products, skipping zeros so they are preserved.
    let mut prefix = Vec::with_capacity(elems.len());
    let mut acc = F::one();
    for e in elems.iter() {
        prefix.push(acc);
        if !e.is_zero() {
            acc *= *e;
        }
    }
    // `acc` is a product of non-zero elements (or one), hence invertible.
    let mut inv = acc.invert().expect("product of non-zero elements");
    for (e, p) in elems.iter_mut().zip(prefix).rev() {
        if e.is_zero() {
            continue;
        }
        let e_inv = p * inv;
        inv *= *e;
        *e = e_inv;
    }
}
