//! The BLS12-381 base field `Fp`, `p` a 381-bit prime.

use crate::arith::{adc, impl_montgomery_field, mac, sbb};
use crate::constants::*;
use crate::traits::Field;

impl_montgomery_field!(
    /// An element of the BLS12-381 base field (381-bit prime `p`).
    ///
    /// Stored in Montgomery form (limb-level details in the private
    /// `arith` module). `Fp` hosts the source group `G` of the paper (the group in
    /// which signatures and message hashes live).
    Fp,
    6,
    FP_MODULUS,
    FP_INV,
    FP_R,
    FP_R2,
    FP_R3,
    FP_INV_EXP,
    FP_TOP_MASK
);

impl Fp {
    /// Computes a square root if one exists (`p ≡ 3 mod 4`, so
    /// `sqrt(a) = a^((p+1)/4)` when `a` is a quadratic residue).
    pub fn sqrt(&self) -> Option<Self> {
        let cand = self.pow_vartime(&FP_SQRT_EXP);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }

    /// Returns `true` if the canonical representative exceeds `(p-1)/2`,
    /// i.e. this is the lexicographically larger of `{y, -y}`.
    /// Used for the sign bit of compressed points.
    pub fn is_lexicographically_largest(&self) -> bool {
        if self.is_zero() {
            return false;
        }
        self.canonical_cmp(&self.neg_internal()) == core::cmp::Ordering::Greater
    }
}

impl Field for Fp {
    fn zero() -> Self {
        Fp::zero()
    }
    fn one() -> Self {
        Fp::one()
    }
    fn is_zero(&self) -> bool {
        Fp::is_zero(self)
    }
    fn square(&self) -> Self {
        Fp::square(self)
    }
    fn double(&self) -> Self {
        Fp::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Fp::invert(self)
    }
    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Fp::random(rng)
    }
    fn pow_vartime(&self, exp: &[u64]) -> Self {
        Fp::pow_vartime(self, exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xb15b)
    }

    #[test]
    fn zero_one_identities() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        assert_eq!(a + Fp::zero(), a);
        assert_eq!(a * Fp::one(), a);
        assert_eq!(a * Fp::zero(), Fp::zero());
        assert_eq!(a - a, Fp::zero());
        assert!(Fp::zero().is_zero());
        assert!(!Fp::one().is_zero());
    }

    #[test]
    fn add_commutes_and_associates() {
        let mut r = rng();
        for _ in 0..20 {
            let (a, b, c) = (Fp::random(&mut r), Fp::random(&mut r), Fp::random(&mut r));
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
        }
    }

    #[test]
    fn mul_distributes() {
        let mut r = rng();
        for _ in 0..20 {
            let (a, b, c) = (Fp::random(&mut r), Fp::random(&mut r), Fp::random(&mut r));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
        }
    }

    #[test]
    fn neg_and_sub() {
        let mut r = rng();
        for _ in 0..20 {
            let (a, b) = (Fp::random(&mut r), Fp::random(&mut r));
            assert_eq!(a + (-a), Fp::zero());
            assert_eq!(a - b, a + (-b));
        }
        assert_eq!(-Fp::zero(), Fp::zero());
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            let inv = a.invert().unwrap();
            assert_eq!(a * inv, Fp::one());
        }
        assert!(Fp::zero().invert().is_none());
        assert_eq!(Fp::one().invert().unwrap(), Fp::one());
    }

    #[test]
    fn square_matches_mul() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            assert_eq!(a.square(), a * a);
            assert_eq!(a.double(), a + a);
        }
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // -1 is a non-residue mod p since p ≡ 3 mod 4.
        let minus_one = -Fp::one();
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            let bytes = a.to_bytes();
            assert_eq!(Fp::from_bytes(&bytes).unwrap(), a);
        }
    }

    #[test]
    fn from_bytes_rejects_modulus() {
        // Encode p itself; must be rejected as non-canonical.
        let mut bytes = [0u8; 48];
        for (i, limb) in FP_MODULUS.iter().rev().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_be_bytes());
        }
        assert!(Fp::from_bytes(&bytes).is_none());
    }

    #[test]
    fn from_u64_arithmetic() {
        assert_eq!(Fp::from_u64(2) + Fp::from_u64(3), Fp::from_u64(5));
        assert_eq!(Fp::from_u64(6) * Fp::from_u64(7), Fp::from_u64(42));
        assert_eq!(Fp::from_u64(0), Fp::zero());
        assert_eq!(Fp::from_u64(1), Fp::one());
    }

    #[test]
    fn from_bytes_wide_reduces() {
        // [0xff; 96] encodes 2^768 - 1; compare with repeated doubling.
        let wide = [0xffu8; 96];
        let got = Fp::from_bytes_wide(&wide);
        let mut p2 = Fp::one();
        for _ in 0..768 {
            p2 = p2.double();
        }
        assert_eq!(got, p2 - Fp::one());
    }

    #[test]
    fn from_bytes_wide_small_value() {
        // A wide encoding of 5 must equal Fp::from_u64(5).
        let mut wide = [0u8; 96];
        wide[95] = 5;
        assert_eq!(Fp::from_bytes_wide(&wide), Fp::from_u64(5));
    }

    #[test]
    fn lexicographic_sign() {
        let two = Fp::from_u64(2);
        // Exactly one of {a, -a} is lexicographically largest (a != 0).
        assert_ne!(
            two.is_lexicographically_largest(),
            (-two).is_lexicographically_largest()
        );
        assert!(!Fp::zero().is_lexicographically_largest());
    }

    #[test]
    fn pow_vartime_small_cases() {
        let a = Fp::from_u64(3);
        assert_eq!(a.pow_vartime(&[0]), Fp::one());
        assert_eq!(a.pow_vartime(&[1]), a);
        assert_eq!(a.pow_vartime(&[5]), Fp::from_u64(243));
    }

    #[test]
    fn fermat_little_theorem() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        // a^(p-1) = 1
        let mut exp = FP_MODULUS;
        exp[0] -= 1;
        assert_eq!(a.pow_vartime(&exp), Fp::one());
    }
}
