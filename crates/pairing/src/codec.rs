//! Canonical binary wire codec — the byte layer every cross-player
//! message of the workspace goes through (DESIGN.md "Wire format &
//! transports").
//!
//! The encoding is *canonical and strict*: every value has exactly one
//! byte representation, and [`Wire::decode`] rejects anything else —
//! non-canonical field elements, off-curve or out-of-subgroup points
//! (via the compressed 48/96-byte point encodings of the curve module),
//! unknown enum tags, and (through [`Wire::decode_exact`]) trailing
//! bytes. Strictness is a protocol property, not a nicety: the DKG
//! treats a frame that fails to decode as dealer misbehavior, and that
//! verdict must be identical at every honest receiver, which it can only
//! be if `decode(encode(x)) = x` and nothing else ever decodes.
//!
//! Layout rules (all integers big-endian):
//!
//! | type | encoding |
//! |---|---|
//! | `u8`/`u32`/`u64` | fixed-width big-endian |
//! | `Fr` | 32 canonical bytes (reject `≥ r`) |
//! | `G1Affine` | 48-byte compressed point (curve + subgroup checked) |
//! | `G2Affine` | 96-byte compressed point (curve + subgroup checked) |
//! | `Vec<T>` | `u32` length, then the elements |
//! | `Option<T>` | tag byte `0`/`1`, then the value if present |
//! | `(A, B)` | `A` then `B` |
//! | enums | 1-byte variant tag, then the fields |
//!
//! The trait lives here (the bottom crate) so that `shamir`, `lhsps`,
//! `dkg` and `core` can implement it for their own types without
//! violating the orphan rule; `borndist_net` re-exports it and derives
//! all byte metering from it.

use crate::curve::{Affine, CurveParams, DecodePointError};
use crate::fr::Fr;

/// Why a byte string failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// Bytes remained after a complete value (strict decoding).
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// An enum/option/bool tag byte had no defined meaning.
    InvalidTag(u8),
    /// A scalar was not in canonical reduced form.
    NonCanonicalScalar,
    /// A group element failed point validation.
    InvalidPoint(DecodePointError),
    /// A declared collection length exceeds the remaining input (also
    /// the overflow guard against adversarial length prefixes).
    BadLength {
        /// The declared element count.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A frame carried an unknown wire-format version byte.
    UnsupportedVersion(u8),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => f.write_str("input ended mid-value"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{} trailing bytes after a complete value", remaining)
            }
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {:#04x}", t),
            CodecError::NonCanonicalScalar => f.write_str("non-canonical scalar encoding"),
            CodecError::InvalidPoint(e) => write!(f, "invalid point encoding: {}", e),
            CodecError::BadLength {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {} exceeds {} remaining bytes",
                declared, remaining
            ),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire-format version {:#04x}", v)
            }
        }
    }
}
impl std::error::Error for CodecError {}

impl From<DecodePointError> for CodecError {
    fn from(e: DecodePointError) -> Self {
        CodecError::InvalidPoint(e)
    }
}

/// Canonical binary encoding of a wire value.
///
/// Implementations must be strict inverses: `decode` accepts exactly the
/// byte strings `encode_to` produces, consuming precisely the encoded
/// prefix of the input and rejecting everything else.
pub trait Wire: Sized {
    /// A lower bound on the encoded size of any value of this type, in
    /// bytes. Used by the `Vec<T>` decoder to reject adversarial length
    /// prefixes *before* allocating. The default of 1 is correct for
    /// every type with a non-empty encoding; types encoding to zero
    /// bytes (like `()`) must override it to 0 or their `Vec` encodings
    /// would fail to round-trip.
    const MIN_ENCODED_LEN: usize = 1;

    /// Appends the canonical encoding of `self` to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Reads one value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] other than `TrailingBytes` (unread suffixes are
    /// the caller's concern; see [`Wire::decode_exact`]).
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// The canonical encoding as a fresh byte vector.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out);
        out
    }

    /// Strict whole-buffer decode: rejects trailing bytes.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`], including `TrailingBytes`.
    fn decode_exact(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut input = bytes;
        let value = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: input.len(),
            });
        }
        Ok(value)
    }

    /// Exact encoded length in bytes.
    ///
    /// Deliberately *not* overridable with a closed-form estimate: it is
    /// defined as the length of the real encoding, so size accounting
    /// (the `E5` byte metrics) can never drift from what actually goes on
    /// the wire.
    fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Pulls `n` bytes off the front of `input`.
pub(crate) fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

impl Wire for () {
    const MIN_ENCODED_LEN: usize = 0;
    fn encode_to(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(take(input, 1)?[0])
    }
}

impl Wire for u32 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(u32::from_be_bytes(take(input, 4)?.try_into().unwrap()))
    }
}

impl Wire for u64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(u64::from_be_bytes(take(input, 8)?.try_into().unwrap()))
    }
}

impl Wire for Fr {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes: [u8; 32] = take(input, 32)?.try_into().unwrap();
        Fr::from_bytes(&bytes).ok_or(CodecError::NonCanonicalScalar)
    }
}

impl<C: CurveParams> Wire for Affine<C> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&C::affine_to_bytes(self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes = take(input, C::COMPRESSED_SIZE)?;
        Ok(C::affine_from_bytes(bytes)?)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let declared = u32::decode(input)? as usize;
        // A declared count whose minimum encoding exceeds the remaining
        // input is malformed — checked *before* allocating, so an
        // adversarial 4 GiB length prefix costs nothing. (For zero-size
        // elements the bound is vacuous, but so is the allocation: a
        // `Vec` of zero-sized values never touches the heap.)
        if declared.saturating_mul(T::MIN_ENCODED_LEN) > input.len() {
            return Err(CodecError::BadLength {
                declared,
                remaining: input.len(),
            });
        }
        let mut items = Vec::with_capacity(declared);
        for _ in 0..declared {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Affine, G1Projective, G2Affine, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0dec)
    }

    fn roundtrip<T: Wire + PartialEq + core::fmt::Debug>(v: &T) {
        let enc = v.encode();
        assert_eq!(enc.len(), v.encoded_len());
        assert_eq!(&T::decode_exact(&enc).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&0xdeadbeefu32);
        roundtrip(&u64::MAX);
        roundtrip(&());
        roundtrip(&Some(7u32));
        roundtrip(&None::<u32>);
        roundtrip(&(3u32, vec![1u64, 2, 3]));
        // Zero-size elements: the length guard must not reject the
        // vector's own (length-prefix-only) encoding.
        roundtrip(&vec![(), (), ()]);
        roundtrip(&Vec::<()>::new());
    }

    #[test]
    fn group_and_scalar_roundtrips() {
        let mut r = rng();
        for _ in 0..4 {
            roundtrip(&Fr::random(&mut r));
            roundtrip(&G1Projective::random(&mut r).to_affine());
            roundtrip(&G2Projective::random(&mut r).to_affine());
        }
        roundtrip(&Fr::zero());
        roundtrip(&G1Affine::identity());
        roundtrip(&G2Affine::identity());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = 5u32.encode();
        enc.push(0);
        assert_eq!(
            u32::decode_exact(&enc),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn truncation_rejected() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let enc = p.encode();
        assert_eq!(
            G1Affine::decode_exact(&enc[..47]),
            Err(CodecError::UnexpectedEnd)
        );
    }

    #[test]
    fn non_canonical_scalar_rejected() {
        // r itself (the modulus) is the smallest non-canonical encoding.
        let modulus: [u8; 32] = [
            0x73, 0xed, 0xa7, 0x53, 0x29, 0x9d, 0x7d, 0x48, 0x33, 0x39, 0xd8, 0x08, 0x09, 0xa1,
            0xd8, 0x05, 0x53, 0xbd, 0xa4, 0x02, 0xff, 0xfe, 0x5b, 0xfe, 0xff, 0xff, 0xff, 0xff,
            0x00, 0x00, 0x00, 0x01,
        ];
        assert_eq!(
            Fr::decode_exact(&modulus),
            Err(CodecError::NonCanonicalScalar)
        );
    }

    #[test]
    fn invalid_points_rejected() {
        // All-zero bytes: compressed flag missing.
        let zeros = [0u8; 48];
        assert!(matches!(
            G1Affine::decode_exact(&zeros),
            Err(CodecError::InvalidPoint(_))
        ));
        // Valid encoding with a flipped sign bit still decodes (the
        // negated point), but flipped x bits generally fail.
        let mut r = rng();
        let enc = G2Projective::random(&mut r).to_affine().encode();
        let mut bad = enc.clone();
        bad[95] ^= 1;
        assert!(matches!(
            G2Affine::decode_exact(&bad),
            Err(CodecError::InvalidPoint(_))
        ));
    }

    #[test]
    fn adversarial_length_prefix_rejected() {
        // Declared length far beyond the buffer must fail fast.
        let enc = u32::MAX.encode();
        assert!(matches!(
            Vec::<Fr>::decode_exact(&enc),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn option_tag_strict() {
        assert_eq!(
            Option::<u32>::decode_exact(&[2, 0, 0, 0, 7]),
            Err(CodecError::InvalidTag(2))
        );
    }
}
