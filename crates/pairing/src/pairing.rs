//! The bilinear map `e : G1 × G2 → GT`.
//!
//! We implement the *reduced Tate pairing* with denominator elimination
//! (Barreto–Kim–Lynn–Scott): for `P ∈ G1 ⊂ E(Fp)` and `Q ∈ G2 ⊂ E'(Fp2)`,
//!
//! ```text
//!     e(P, Q) = f_{r,P}(ψ(Q))^((p¹² - 1)/r)
//! ```
//!
//! where `ψ : E'(Fp2) → E(Fp12)` is the untwisting isomorphism
//! `(x, y) ↦ (x/w², y/w³)`. The Miller loop runs over the bits of the group
//! order `r` with all point arithmetic in `Fp` (cheap), evaluating sparse
//! line functions at `ψ(Q)`. Vertical-line denominators land in the
//! subfield `Fp6` and are annihilated by the final exponentiation, so they
//! are dropped.
//!
//! The final exponentiation splits into the *easy part*
//! `(p⁶-1)(p²+1)` (conjugation, one inversion, one Frobenius) and the
//! *hard part* `(p⁴-p²+1)/r`, computed as a plain variable-time power with
//! a precomputed 1270-bit exponent. This is slower than the cyclotomic
//! addition chains used by production libraries but straightforwardly
//! correct — an explicit trade-off documented in DESIGN.md.
//!
//! [`multi_pairing`] evaluates `Π e(P_i, Q_i)` with a *shared* Miller
//! accumulator (one squaring cascade and one final exponentiation for the
//! whole product), which is what makes the scheme's four-pairing
//! verification equations economical.

use crate::constants::{FINAL_EXP_HARD, ORDER};
use crate::curve::{G1Affine, G1Projective, G2Affine};

use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::traits::Field;

/// An element of the target group `GT ⊂ Fp12*` (order `r`), written
/// multiplicatively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub(crate) Fp12);

impl Gt {
    /// The multiplicative identity `1 ∈ GT`.
    pub fn identity() -> Self {
        Gt(Fp12::one())
    }

    /// The canonical generator `e(g1, g2)`.
    pub fn generator() -> Self {
        pairing(&G1Affine::generator(), &G2Affine::generator())
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.0.is_one()
    }

    /// Group inverse. Elements of `GT` are unitary, so the inverse is the
    /// (cheap) conjugation over `Fp6`.
    pub fn inverse(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Variable-time exponentiation by a scalar.
    pub fn pow(&self, k: &Fr) -> Self {
        Gt(self.0.pow_vartime(&k.to_le_bits()))
    }

    /// Exposes the underlying `Fp12` element (e.g. for hashing/serializing).
    pub fn as_fp12(&self) -> &Fp12 {
        &self.0
    }
}

impl core::ops::Mul for Gt {
    type Output = Gt;
    fn mul(self, rhs: Gt) -> Gt {
        Gt(self.0 * rhs.0)
    }
}
impl core::ops::MulAssign for Gt {
    fn mul_assign(&mut self, rhs: Gt) {
        self.0 *= rhs.0;
    }
}

/// Per-pair state of the shared Miller loop.
struct MillerPair {
    /// Accumulator point `T = kP`, Jacobian over `Fp`.
    t: G1Projective,
    /// The base point `P` in affine form.
    p: G1Affine,
    /// `x_Q · ξ⁻¹ ∈ Fp2` — the `v²` coefficient of `ψ(Q)`'s x-coordinate.
    xq: Fp2,
    /// `y_Q · ξ⁻¹ ∈ Fp2` — the `v·w` coefficient of `ψ(Q)`'s y-coordinate.
    yq: Fp2,
}

impl MillerPair {
    fn new(p: &G1Affine, q: &G2Affine) -> Self {
        let xi_inv = Fp2::xi().invert().expect("xi is non-zero");
        MillerPair {
            t: p.to_projective(),
            p: *p,
            xq: q.x() * xi_inv,
            yq: q.y() * xi_inv,
        }
    }

    /// Doubling step: multiplies the tangent line at `T` (evaluated at
    /// `ψ(Q)`) into `f` and sets `T ← 2T`.
    fn double_step(&mut self, f: &mut Fp12) {
        let (x, y, z) = (self.t.x, self.t.y, self.t.z);
        // dbl-2009-l intermediates, shared with the line computation.
        let a = x.square();
        let b = y.square();
        let c = b.square();
        let d = ((x + b).square() - a - c).double();
        let e = a.double() + a; // 3x²
        let fq = e.square();
        let x3 = fq - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (y * z).double();
        // Tangent line at T, scaled by 2YZ³ (an Fp constant, killed by the
        // final exponentiation):  ℓ = (2YZ³)·ys - (3X²Z²)·xs + (3X³ - 2Y²).
        let zz = z.square();
        let coeff_y = z3 * zz; // 2YZ³
        let coeff_x = e * zz; // 3X²Z²
        let constant = e * x - b.double(); // 3X³ - 2Y²
        let lb = self.xq.mul_by_fp(&coeff_x);
        let lc = self.yq.mul_by_fp(&coeff_y);
        *f = f.mul_by_line(&constant, &(-lb), &lc);
        self.t = G1Projective {
            x: x3,
            y: y3,
            z: z3,
        };
    }

    /// Addition step: multiplies the chord through `T` and `P` (evaluated
    /// at `ψ(Q)`) into `f` and sets `T ← T + P`.
    fn add_step(&mut self, f: &mut Fp12) {
        let (x, y, z) = (self.t.x, self.t.y, self.t.z);
        let (xp, yp) = (self.p.x(), self.p.y());
        let zz = z.square();
        let zzz = zz * z;
        // Chord through T and P, scaled by Z(X - xp Z²):
        //   ℓ = c1·ys - c2·xs + (c2·xp - c1·yp)
        // with c1 = Z(X - xp Z²), c2 = Y - yp Z³.
        let c1 = z * (x - xp * zz);
        let c2 = y - yp * zzz;
        let constant = c2 * xp - c1 * yp;
        let lb = self.xq.mul_by_fp(&c2);
        let lc = self.yq.mul_by_fp(&c1);
        *f = f.mul_by_line(&constant, &(-lb), &lc);
        self.t = self.t.add_affine(&self.p);
    }
}

/// Evaluates the product of Miller functions `Π f_{r,P_i}(ψ(Q_i))` with a
/// shared accumulator. Identity inputs contribute the factor `1`.
fn miller_loop(pairs: &[(&G1Affine, &G2Affine)]) -> Fp12 {
    let mut state: Vec<MillerPair> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| MillerPair::new(p, q))
        .collect();
    let mut f = Fp12::one();
    if state.is_empty() {
        return f;
    }
    // Bits of r, from the bit below the MSB (bit 254) down to bit 0.
    for i in (0..=253usize).rev() {
        f = f.square();
        for pair in state.iter_mut() {
            pair.double_step(&mut f);
        }
        if (ORDER[i / 64] >> (i % 64)) & 1 == 1 {
            for pair in state.iter_mut() {
                pair.add_step(&mut f);
            }
        }
    }
    f
}

/// The final exponentiation `f ↦ f^((p¹²-1)/r)`.
fn final_exponentiation(f: &Fp12) -> Gt {
    // Easy part: f^((p^6-1)(p^2+1)).
    let t0 = f.conjugate() * f.invert().expect("Miller output is non-zero");
    let t1 = t0.frobenius_p2() * t0;
    // Hard part: plain power by the precomputed exponent (p^4-p^2+1)/r.
    Gt(t1.pow_vartime(&FINAL_EXP_HARD))
}

/// Computes the pairing `e(P, Q)`.
///
/// Returns the identity if either input is the identity.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(&[(p, q)]))
}

/// Computes the product `Π e(P_i, Q_i)` with a single shared Miller loop
/// and one final exponentiation — the workhorse of all verification
/// equations in this workspace.
pub fn multi_pairing(pairs: &[(&G1Affine, &G2Affine)]) -> Gt {
    final_exponentiation(&miller_loop(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9a19)
    }

    #[test]
    fn non_degenerate() {
        let e = Gt::generator();
        assert!(!e.is_identity());
    }

    #[test]
    fn identity_inputs_map_to_one() {
        let q = G2Affine::generator();
        let p = G1Affine::generator();
        assert!(pairing(&G1Affine::identity(), &q).is_identity());
        assert!(pairing(&p, &G2Affine::identity()).is_identity());
    }

    #[test]
    fn bilinear_in_first_argument() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let p = G1Projective::generator();
        let q = G2Affine::generator();
        let lhs = pairing(&p.mul(&a).to_affine(), &q);
        let rhs = pairing(&p.to_affine(), &q).pow(&a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_second_argument() {
        let mut r = rng();
        let b = Fr::random(&mut r);
        let p = G1Affine::generator();
        let q = G2Projective::generator();
        let lhs = pairing(&p, &q.mul(&b).to_affine());
        let rhs = pairing(&p, &q.to_affine()).pow(&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn full_bilinearity() {
        let mut r = rng();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        let p = G1Projective::generator().mul(&a).to_affine();
        let q = G2Projective::generator().mul(&b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(&(a * b)));
    }

    #[test]
    fn additive_in_first_argument() {
        let mut r = rng();
        let p1 = G1Projective::random(&mut r);
        let p2 = G1Projective::random(&mut r);
        let q = G2Projective::random(&mut r).to_affine();
        let lhs = pairing(&(p1 + p2).to_affine(), &q);
        let rhs = pairing(&p1.to_affine(), &q) * pairing(&p2.to_affine(), &q);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn negation_inverts() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G2Projective::random(&mut r).to_affine();
        let e = pairing(&p, &q);
        assert_eq!(pairing(&p.neg(), &q), e.inverse());
        assert!((pairing(&p, &q) * pairing(&p.neg(), &q)).is_identity());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut r = rng();
        let pairs_proj: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                (
                    G1Projective::random(&mut r).to_affine(),
                    G2Projective::random(&mut r).to_affine(),
                )
            })
            .collect();
        let refs: Vec<(&G1Affine, &G2Affine)> = pairs_proj.iter().map(|(p, q)| (p, q)).collect();
        let joint = multi_pairing(&refs);
        let mut separate = Gt::identity();
        for (p, q) in &pairs_proj {
            separate *= pairing(p, q);
        }
        assert_eq!(joint, separate);
    }

    #[test]
    fn multi_pairing_detects_cancellation() {
        // e(P,Q) * e(-P,Q) = 1 through the shared loop.
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G2Projective::random(&mut r).to_affine();
        let np = p.neg();
        assert!(multi_pairing(&[(&p, &q), (&np, &q)]).is_identity());
    }

    #[test]
    fn gt_has_order_r() {
        let e = Gt::generator();
        // e^r = 1: exponentiation by the group order.
        let r_minus_1 = Fr::zero() - Fr::one();
        assert_eq!(e.pow(&r_minus_1) * e, Gt::identity());
    }

    #[test]
    fn gt_pow_is_homomorphic() {
        let mut r = rng();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        let e = Gt::generator();
        assert_eq!(e.pow(&a) * e.pow(&b), e.pow(&(a + b)));
        assert_eq!(e.pow(&a).pow(&b), e.pow(&(a * b)));
    }
}
