//! The bilinear map `e : G1 × G2 → GT`, built around the *optimal ate
//! pairing* (Vercauteren) with the reduced Tate pairing retained as the
//! slow reference.
//!
//! ## The production engine
//!
//! For `P ∈ G1 ⊂ E(Fp)` and `Q ∈ G2 ⊂ E'(Fp2)` the engine computes
//!
//! ```text
//!     e(P, Q) = f_{x,Q}(P)^(3·(p¹² - 1)/r),    x = -0xd201000000010000
//! ```
//!
//! * **Short Miller loop** — 63 iterations over the bits of the 64-bit
//!   BLS parameter `|x|` ([`crate::constants::BLS_X`]) instead of 254
//!   over the 255-bit group order `r`. Point arithmetic runs on the
//!   `G2` side (Jacobian over `Fp2`), emitting per-step *line
//!   coefficients* that are evaluated at `P` and folded into the
//!   accumulator with the sparse product [`Fp12::mul_by_014`]. The
//!   parameter's sign is handled by one final conjugation.
//! * **Prepared second arguments** — the line coefficients depend only
//!   on `Q`, so a [`G2Prepared`] caches the whole coefficient vector for
//!   a fixed `Q` (generators, long-lived public keys) and
//!   [`multi_pairing_prepared`] / [`multi_pairing_mixed`] replay it with
//!   no `Fp2` point arithmetic at all — the pairing analogue of the
//!   fixed-base tables in [`crate::precompute`].
//! * **Cyclotomic final exponentiation** — the easy part
//!   `(p⁶-1)(p²+1)` (conjugation, one inversion, one Frobenius) followed
//!   by the standard `x`-power addition chain over Granger–Scott
//!   [`Fp12::cyclotomic_square`]s and the full `p`-power Frobenius
//!   ladder, computing `m^(3λ)` with `λ = (p⁴-p²+1)/r` — roughly 4×64
//!   cyclotomic squarings instead of a generic 1270-bit power. The
//!   harmless factor 3 (coprime to `r`) is the standard chain variant.
//!
//! [`multi_pairing`] evaluates `Π e(P_i, Q_i)` with a *shared* Miller
//! accumulator (one squaring cascade and one final exponentiation for the
//! whole product), which is what makes the scheme's four-pairing
//! verification equations economical.
//!
//! ## The retained references
//!
//! [`pairing_tate`] / [`multi_pairing_tate`] keep the original engine —
//! a 255-bit Tate Miller loop over `G1` with denominator elimination and
//! a generic-power hard part — as the property-test reference, mirroring
//! the role of `mul_schoolbook` for scalar multiplication.
//! [`pairing_tate_g2`] is the swapped-argument reduced Tate pairing
//! `f_{r,Q}(P)^((p¹²-1)/r)`, which relates to the ate engine by a *fixed,
//! precomputed exponent* ([`crate::constants::ATE_TATE_EXP`], the
//! Hess–Smart–Vercauteren constant times the chain's factor 3):
//!
//! ```text
//!     pairing(P, Q) = pairing_tate_g2(P, Q)^ATE_TATE_EXP
//! ```
//!
//! The `pairing_engine` property suite enforces this identity on random
//! and edge inputs, checks the hard-part chain against the retained
//! generic power, and pins both engines to the same bilinear map up to
//! the fixed change of `GT` generator. The G1-side Tate pairing
//! `f_{r,P}(Q)` is *not* a fixed power of the ate pairing with any
//! closed-form exponent (the argument swap constant is a Weil-pairing
//! discrete log), which is why the strict relation is stated against the
//! G2-side reference.

use crate::constants::{BLS_X, FINAL_EXP_HARD, ORDER};
use crate::curve::{G1Affine, G1Projective, G2Affine, G2Projective};

use crate::fp::Fp;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::fr::Fr;
use crate::traits::Field;

/// An element of the target group `GT ⊂ Fp12*` (order `r`), written
/// multiplicatively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Gt(pub(crate) Fp12);

impl Gt {
    /// The multiplicative identity `1 ∈ GT`.
    pub fn identity() -> Self {
        Gt(Fp12::one())
    }

    /// The canonical generator `e(g1, g2)`.
    pub fn generator() -> Self {
        pairing(&G1Affine::generator(), &G2Affine::generator())
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.0.is_one()
    }

    /// Group inverse. Elements of `GT` are unitary, so the inverse is the
    /// (cheap) conjugation over `Fp6`.
    pub fn inverse(&self) -> Self {
        Gt(self.0.conjugate())
    }

    /// Variable-time exponentiation by a scalar: width-4 wNAF over
    /// cyclotomic squarings ([`Fp2`]-cheap, valid because `GT` lies in
    /// the cyclotomic subgroup), with conjugation serving negative
    /// digits. Equivalence with the generic square-and-multiply power is
    /// enforced by the `pairing_engine` property suite.
    pub fn pow(&self, k: &Fr) -> Self {
        const WIDTH: usize = 4;
        let digits = k.to_wnaf(WIDTH);
        if digits.is_empty() {
            return Gt::identity();
        }
        // Odd powers f^1, f^3, f^5, f^7.
        let squared = self.0.square();
        let mut table = [Fp12::one(); 1 << (WIDTH - 2)];
        let mut cur = self.0;
        for slot in table.iter_mut() {
            *slot = cur;
            cur *= squared;
        }
        let top = digits[digits.len() - 1];
        debug_assert!(top > 0, "wNAF top digit must be positive");
        let mut acc = table[(top as usize - 1) / 2];
        for &d in digits.iter().rev().skip(1) {
            acc = acc.cyclotomic_square();
            if d > 0 {
                acc *= table[(d as usize - 1) / 2];
            } else if d < 0 {
                acc *= table[((-d) as usize - 1) / 2].conjugate();
            }
        }
        Gt(acc)
    }

    /// Exposes the underlying `Fp12` element (e.g. for hashing/serializing).
    pub fn as_fp12(&self) -> &Fp12 {
        &self.0
    }
}

impl core::ops::Mul for Gt {
    type Output = Gt;
    fn mul(self, rhs: Gt) -> Gt {
        Gt(self.0 * rhs.0)
    }
}
impl core::ops::MulAssign for Gt {
    fn mul_assign(&mut self, rhs: Gt) {
        self.0 *= rhs.0;
    }
}

// ===========================================================================
// Optimal-ate engine
// ===========================================================================

/// One evaluated Miller line in coefficient form `(c0, c1, c4)`:
/// the sparse element is `c0 + (c1·x_P)·v + (c4·y_P)·v·w` once scaled by
/// the affine coordinates of the `G1` argument.
type LineCoeffs = (Fp2, Fp2, Fp2);

/// Doubling step of the `G2`-side Miller loop: advances `T ← 2T`
/// (Jacobian `dbl-2009-l`, shared intermediates with the tangent line)
/// and returns the tangent-line coefficients at `T`, scaled by
/// `2YZ³ ∈ Fp2` (killed by the final exponentiation).
fn g2_double_step(t: &mut G2Projective) -> LineCoeffs {
    let (x, y, z) = (t.x, t.y, t.z);
    let a = x.square();
    let b = y.square();
    let c = b.square();
    let d = ((x + b).square() - a - c).double();
    let e = a.double() + a; // 3X²
    let fq = e.square();
    let x3 = fq - d.double();
    let y3 = e * (d - x3) - c.double().double().double();
    let z3 = (y * z).double();
    // Tangent line ℓ = (2YZ³)·y_P·w³ − (3X²Z²)·x_P·w² + (3X³ − 2Y²).
    let zz = z.square();
    let coeff_y = z3 * zz; // 2YZ³
    let coeff_x = e * zz; // 3X²Z²
    let constant = e * x - b.double(); // 3X³ − 2Y²
    *t = G2Projective {
        x: x3,
        y: y3,
        z: z3,
    };
    (constant, -coeff_x, coeff_y)
}

/// Addition step of the `G2`-side Miller loop: advances `T ← T + Q`
/// (fused `madd-2007-bl`, intermediates shared with the chord line, like
/// the doubling step) and returns the chord-line coefficients through
/// `T` and `Q`, scaled by `Z(X − x_Q·Z²) ∈ Fp2` (killed by the final
/// exponentiation).
///
/// The straight-line formulas rely on `T ≠ ±Q` up to the last step:
/// inside both Miller loops `T = kQ` with `1 < k < r` a strict prefix of
/// the loop scalar, so `T = ±Q` would need `k ≡ ±1 (mod r)` — reachable
/// only at the final Tate-loop step `k = r - 1`, where `h = 0` makes the
/// formulas degrade gracefully to the identity (`Z3 = 0`) and the
/// returned line is the correct vertical `x − x_Q` (times an `Fp2`
/// scale).
fn g2_add_step(t: &mut G2Projective, q: &G2Affine) -> LineCoeffs {
    let (x, y, z) = (t.x, t.y, t.z);
    let (xq, yq) = (q.x(), q.y());
    let zz = z.square();
    let u2 = xq * zz;
    let s2 = yq * z * zz;
    // ℓ = c1·y_P·w³ − c2·x_P·w² + (c2·x_Q − c1·y_Q)
    // with c1 = Z(X − x_Q Z²) = −Z·h, c2 = Y − y_Q Z³ = Y − S2.
    let h = u2 - x;
    let c1 = -(z * h);
    let c2 = y - s2;
    let constant = c2 * xq - c1 * yq;
    // madd-2007-bl point update, reusing zz / h / s2.
    let hh = h.square();
    let i = hh.double().double();
    let j = h * i;
    let rr = (-c2).double(); // 2(S2 − Y)
    let v = x * i;
    let x3 = rr.square() - j - v.double();
    let y3 = rr * (v - x3) - (y * j).double();
    let z3 = (z + h).square() - zz - hh;
    *t = G2Projective {
        x: x3,
        y: y3,
        z: z3,
    };
    (constant, -c2, c1)
}

/// Folds a line into the Miller accumulator, evaluated at `(x_P, y_P)`.
#[inline]
fn ell(f: &Fp12, coeffs: &LineCoeffs, px: &Fp, py: &Fp) -> Fp12 {
    f.mul_by_014(&coeffs.0, &coeffs.1.mul_by_fp(px), &coeffs.2.mul_by_fp(py))
}

/// Number of line coefficients one ate Miller loop produces: one per
/// doubling (63) plus one per set low bit of `BLS_X` (5).
fn ate_coeff_count() -> usize {
    63 + (BLS_X.count_ones() as usize - 1)
}

/// A `G2` element preprocessed for pairing: the full vector of Miller
/// line coefficients for the ate loop, so pairings against it perform no
/// `Fp2` point arithmetic at all. Build once for long-lived second
/// arguments (the generator, `(ĝ_z, ĝ_r)`, public keys) and reuse via
/// [`multi_pairing_prepared`] / [`multi_pairing_mixed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct G2Prepared {
    infinity: bool,
    coeffs: Vec<LineCoeffs>,
}

impl G2Prepared {
    /// Runs the ate Miller loop point arithmetic once for `q`, caching
    /// every line coefficient.
    pub fn new(q: &G2Affine) -> Self {
        if q.is_identity() {
            return G2Prepared {
                infinity: true,
                coeffs: Vec::new(),
            };
        }
        let mut t = q.to_projective();
        let mut coeffs = Vec::with_capacity(ate_coeff_count());
        for i in (0..63).rev() {
            coeffs.push(g2_double_step(&mut t));
            if (BLS_X >> i) & 1 == 1 {
                coeffs.push(g2_add_step(&mut t, q));
            }
        }
        G2Prepared {
            infinity: false,
            coeffs,
        }
    }

    /// Returns `true` if this prepares the identity (pairings against it
    /// contribute the factor `1`).
    pub fn is_identity(&self) -> bool {
        self.infinity
    }
}

impl From<&G2Affine> for G2Prepared {
    fn from(q: &G2Affine) -> Self {
        G2Prepared::new(q)
    }
}

/// Shared ate Miller loop over a mix of on-the-fly and prepared second
/// arguments. Returns `Π f_{x,Q_i}(P_i)` (conjugated for the negative
/// parameter); identity inputs contribute the factor `1`.
fn miller_loop_ate(
    pairs: &[(&G1Affine, &G2Affine)],
    prepared: &[(&G1Affine, &G2Prepared)],
) -> Fp12 {
    // Live state per unprepared pair: (x_P, y_P, T, Q).
    let mut live: Vec<(Fp, Fp, G2Projective, G2Affine)> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| (p.x(), p.y(), q.to_projective(), **q))
        .collect();
    // Prepared pairs replay their coefficient stream by index.
    let pre: Vec<(Fp, Fp, &[LineCoeffs])> = prepared
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.infinity)
        .map(|(p, q)| (p.x(), p.y(), q.coeffs.as_slice()))
        .collect();
    let mut f = Fp12::one();
    if live.is_empty() && pre.is_empty() {
        return f;
    }
    let mut idx = 0usize;
    for i in (0..63).rev() {
        f = f.square();
        for (px, py, t, _) in live.iter_mut() {
            let c = g2_double_step(t);
            f = ell(&f, &c, px, py);
        }
        for (px, py, coeffs) in pre.iter() {
            f = ell(&f, &coeffs[idx], px, py);
        }
        idx += 1;
        if (BLS_X >> i) & 1 == 1 {
            for (px, py, t, q) in live.iter_mut() {
                let c = g2_add_step(t, q);
                f = ell(&f, &c, px, py);
            }
            for (px, py, coeffs) in pre.iter() {
                f = ell(&f, &coeffs[idx], px, py);
            }
            idx += 1;
        }
    }
    // The BLS parameter x is negative: f_{x,Q} = conj(f_{|x|,Q}) after
    // final exponentiation, folded in here.
    f.conjugate()
}

/// Minimum pairs per Miller shard: every shard pays its own 63-step
/// `Fp12` squaring cascade (roughly one pair's worth of line folds), so
/// single-pair shards would spend half their time on redundant
/// squarings. Two pairs per shard caps that overhead at ~25%.
const MIN_PAIRS_PER_SHARD: usize = 2;

/// [`miller_loop_ate`] sharded across the available threads
/// ([`borndist_parallel::current_threads`]): the concatenation of the
/// live and prepared pair lists is split into balanced contiguous
/// shards, each shard runs an independent Miller loop, and the partial
/// values are folded with plain `Fp12` multiplications. The shared
/// squaring cascade satisfies `(f₁f₂)² = f₁²f₂²`, so the folded product
/// equals the joint loop **exactly** (field arithmetic is exact), and
/// results are bit-identical for every thread count. One shared final
/// exponentiation still closes the product.
fn miller_loop_sharded(
    pairs: &[(&G1Affine, &G2Affine)],
    prepared: &[(&G1Affine, &G2Prepared)],
) -> Fp12 {
    let total = pairs.len() + prepared.len();
    let shards = borndist_parallel::current_threads().min(total / MIN_PAIRS_PER_SHARD);
    if shards <= 1 {
        return miller_loop_ate(pairs, prepared);
    }
    // Balanced contiguous ranges over the virtual list pairs ++ prepared.
    let ranges = borndist_parallel::chunk_bounds(total, shards);
    let parts = borndist_parallel::par_map(&ranges, |&(a, b)| {
        let live = &pairs[a.min(pairs.len())..b.min(pairs.len())];
        let pre = &prepared[a.saturating_sub(pairs.len())..b.saturating_sub(pairs.len())];
        miller_loop_ate(live, pre)
    });
    let mut f = Fp12::one();
    for p in parts {
        f *= p;
    }
    f
}

/// `f^x` for `f` in the cyclotomic subgroup, with `x` the (negative) BLS
/// parameter: square-and-multiply over the bits of `|x|` using
/// cyclotomic squarings, then one conjugation for the sign.
fn cyclotomic_exp_x(f: &Fp12) -> Fp12 {
    let mut tmp = Fp12::one();
    let mut started = false;
    for i in (0..64).rev() {
        if started {
            tmp = tmp.cyclotomic_square();
        }
        if (BLS_X >> i) & 1 == 1 {
            tmp *= *f;
            started = true;
        }
    }
    tmp.conjugate()
}

/// The final exponentiation `f ↦ f^(3·(p¹²-1)/r)`: the easy part
/// `(p⁶-1)(p²+1)` followed by the standard BLS12 `x`-power addition chain
/// for `3·(p⁴-p²+1)/r` over cyclotomic squarings and `p`-power Frobenius
/// maps. Agreement with the retained generic power
/// ([`crate::constants::FINAL_EXP_HARD`], up to the cube) is enforced by
/// the `pairing_engine` property suite.
pub fn final_exponentiation(f: &Fp12) -> Gt {
    // Easy part: m = f^((p^6-1)(p^2+1)), which lands in the cyclotomic
    // subgroup and makes every later inverse a conjugation.
    let t = f.conjugate() * f.invert().expect("Miller output is non-zero");
    let m = t.frobenius_p2() * t;
    // Hard part: m^(3(p^4-p^2+1)/r) by the x-power addition chain.
    let mut t1 = m.cyclotomic_square().conjugate();
    let mut t3 = cyclotomic_exp_x(&m);
    let mut t4 = t3.cyclotomic_square();
    let mut t5 = t1 * t3;
    t1 = cyclotomic_exp_x(&t5);
    let t0 = cyclotomic_exp_x(&t1);
    let mut t6 = cyclotomic_exp_x(&t0);
    t6 *= t4;
    t4 = cyclotomic_exp_x(&t6);
    t5 = t5.conjugate();
    t4 = t4 * t5 * m;
    t5 = m.conjugate();
    t1 *= m;
    t1 = t1.frobenius_p3();
    t6 *= t5;
    t6 = t6.frobenius_p();
    t3 *= t0;
    t3 = t3.frobenius_p2();
    t3 *= t1;
    t3 *= t6;
    Gt(t3 * t4)
}

/// The shared ate Miller loop `Π f_{x,Q_i}(P_i)` without the final
/// exponentiation (exposed for batching layers and the test suite; apply
/// [`final_exponentiation`] to obtain the pairing product). Sharded
/// across threads for large products (see [`crate::parallel`]).
pub fn multi_miller_loop(pairs: &[(&G1Affine, &G2Affine)]) -> Fp12 {
    miller_loop_sharded(pairs, &[])
}

/// [`multi_miller_loop`] over both live and prepared second arguments —
/// the raw accumulator behind [`multi_pairing_mixed`], exposed so
/// batching layers and the invariance tests can fold partial products
/// themselves.
pub fn multi_miller_loop_mixed(
    pairs: &[(&G1Affine, &G2Affine)],
    prepared: &[(&G1Affine, &G2Prepared)],
) -> Fp12 {
    miller_loop_sharded(pairs, prepared)
}

/// Computes the pairing `e(P, Q)` with the optimal-ate engine.
///
/// Returns the identity if either input is the identity.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop_ate(&[(p, q)], &[]))
}

/// Computes the product `Π e(P_i, Q_i)` with a single shared Miller loop
/// and one final exponentiation — the workhorse of all verification
/// equations in this workspace. Products of four or more pairs shard
/// their Miller loops across the configured threads
/// ([`borndist_parallel::current`]); results are bit-identical for every
/// thread count.
pub fn multi_pairing(pairs: &[(&G1Affine, &G2Affine)]) -> Gt {
    final_exponentiation(&miller_loop_sharded(pairs, &[]))
}

/// [`multi_pairing`] with every second argument preprocessed: no `Fp2`
/// point arithmetic, just coefficient replay.
pub fn multi_pairing_prepared(pairs: &[(&G1Affine, &G2Prepared)]) -> Gt {
    final_exponentiation(&miller_loop_sharded(&[], pairs))
}

/// The general form: a product over on-the-fly pairs and prepared pairs
/// sharing one Miller accumulator and one final exponentiation. The
/// verification paths in `core` use this to pair cached fixed elements
/// (generators, public keys) with per-call ones. Sharded across threads
/// like [`multi_pairing`].
pub fn multi_pairing_mixed(
    pairs: &[(&G1Affine, &G2Affine)],
    prepared: &[(&G1Affine, &G2Prepared)],
) -> Gt {
    final_exponentiation(&miller_loop_sharded(pairs, prepared))
}

// ===========================================================================
// Retained Tate references
// ===========================================================================

/// Per-pair state of the shared G1-side Tate Miller loop (the retained
/// reference engine).
struct MillerPair {
    /// Accumulator point `T = kP`, Jacobian over `Fp`.
    t: G1Projective,
    /// The base point `P` in affine form.
    p: G1Affine,
    /// `x_Q · ξ⁻¹ ∈ Fp2` — the `v²` coefficient of `ψ(Q)`'s x-coordinate.
    xq: Fp2,
    /// `y_Q · ξ⁻¹ ∈ Fp2` — the `v·w` coefficient of `ψ(Q)`'s y-coordinate.
    yq: Fp2,
}

impl MillerPair {
    fn new(p: &G1Affine, q: &G2Affine) -> Self {
        // ξ⁻¹ is a process-wide lazily initialized constant — previously
        // this cost one field inversion per pair per call.
        let xi_inv = Fp2::xi_inv();
        MillerPair {
            t: p.to_projective(),
            p: *p,
            xq: q.x() * xi_inv,
            yq: q.y() * xi_inv,
        }
    }

    /// Doubling step: multiplies the tangent line at `T` (evaluated at
    /// `ψ(Q)`) into `f` and sets `T ← 2T`.
    fn double_step(&mut self, f: &mut Fp12) {
        let (x, y, z) = (self.t.x, self.t.y, self.t.z);
        // dbl-2009-l intermediates, shared with the line computation.
        let a = x.square();
        let b = y.square();
        let c = b.square();
        let d = ((x + b).square() - a - c).double();
        let e = a.double() + a; // 3x²
        let fq = e.square();
        let x3 = fq - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (y * z).double();
        // Tangent line at T, scaled by 2YZ³ (an Fp constant, killed by the
        // final exponentiation):  ℓ = (2YZ³)·ys - (3X²Z²)·xs + (3X³ - 2Y²).
        let zz = z.square();
        let coeff_y = z3 * zz; // 2YZ³
        let coeff_x = e * zz; // 3X²Z²
        let constant = e * x - b.double(); // 3X³ - 2Y²
        let lb = self.xq.mul_by_fp(&coeff_x);
        let lc = self.yq.mul_by_fp(&coeff_y);
        *f = f.mul_by_line(&constant, &(-lb), &lc);
        self.t = G1Projective {
            x: x3,
            y: y3,
            z: z3,
        };
    }

    /// Addition step: multiplies the chord through `T` and `P` (evaluated
    /// at `ψ(Q)`) into `f` and sets `T ← T + P`.
    fn add_step(&mut self, f: &mut Fp12) {
        let (x, y, z) = (self.t.x, self.t.y, self.t.z);
        let (xp, yp) = (self.p.x(), self.p.y());
        let zz = z.square();
        let zzz = zz * z;
        // Chord through T and P, scaled by Z(X - xp Z²):
        //   ℓ = c1·ys - c2·xs + (c2·xp - c1·yp)
        // with c1 = Z(X - xp Z²), c2 = Y - yp Z³.
        let c1 = z * (x - xp * zz);
        let c2 = y - yp * zzz;
        let constant = c2 * xp - c1 * yp;
        let lb = self.xq.mul_by_fp(&c2);
        let lc = self.yq.mul_by_fp(&c1);
        *f = f.mul_by_line(&constant, &(-lb), &lc);
        self.t = self.t.add_affine(&self.p);
    }
}

/// Evaluates the product of Miller functions `Π f_{r,P_i}(ψ(Q_i))` with a
/// shared accumulator. Identity inputs contribute the factor `1`.
fn miller_loop_tate(pairs: &[(&G1Affine, &G2Affine)]) -> Fp12 {
    let mut state: Vec<MillerPair> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| MillerPair::new(p, q))
        .collect();
    let mut f = Fp12::one();
    if state.is_empty() {
        return f;
    }
    // Bits of r, from the bit below the MSB (bit 254) down to bit 0.
    for i in (0..=253usize).rev() {
        f = f.square();
        for pair in state.iter_mut() {
            pair.double_step(&mut f);
        }
        if (ORDER[i / 64] >> (i % 64)) & 1 == 1 {
            for pair in state.iter_mut() {
                pair.add_step(&mut f);
            }
        }
    }
    f
}

/// The reference final exponentiation `f ↦ f^((p¹²-1)/r)`: easy part plus
/// a plain variable-time power by the precomputed 1270-bit hard exponent
/// [`crate::constants::FINAL_EXP_HARD`]. Deliberately generic — it is
/// what the cyclotomic chain is property-tested against.
fn final_exponentiation_generic(f: &Fp12) -> Gt {
    let t0 = f.conjugate() * f.invert().expect("Miller output is non-zero");
    let t1 = t0.frobenius_p2() * t0;
    Gt(t1.pow_vartime(&FINAL_EXP_HARD))
}

/// The retained G1-side reduced Tate pairing `f_{r,P}(ψ(Q))^((p¹²-1)/r)`
/// — the seed engine, kept verbatim as the slow reference (the
/// `mul_schoolbook` of the pairing layer). Same bilinear map as
/// [`pairing`] up to a fixed (closed-form-free) change of `GT` generator.
pub fn pairing_tate(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation_generic(&miller_loop_tate(&[(p, q)]))
}

/// Multi-pairing form of the retained Tate reference.
pub fn multi_pairing_tate(pairs: &[(&G1Affine, &G2Affine)]) -> Gt {
    final_exponentiation_generic(&miller_loop_tate(pairs))
}

/// The swapped-argument reduced Tate pairing `f_{r,Q}(P)^((p¹²-1)/r)`:
/// a 255-bit Miller loop on the `G2` side with the *generic* line product
/// (full `Fp12` multiplications, no sparse path) and the generic-power
/// final exponentiation. This is the strict reference for the ate engine:
/// `pairing(P, Q) == pairing_tate_g2(P, Q)^ATE_TATE_EXP` exactly.
pub fn pairing_tate_g2(p: &G1Affine, q: &G2Affine) -> Gt {
    if p.is_identity() || q.is_identity() {
        return Gt::identity();
    }
    let (px, py) = (p.x(), p.y());
    // Full (non-sparse) line fold, independent of mul_by_014.
    let fold = |f: Fp12, c: LineCoeffs| -> Fp12 {
        let line = Fp12::new(
            Fp6::new(c.0, c.1.mul_by_fp(&px), Fp2::zero()),
            Fp6::new(Fp2::zero(), c.2.mul_by_fp(&py), Fp2::zero()),
        );
        f * line
    };
    let mut t = q.to_projective();
    let mut f = Fp12::one();
    for i in (0..=253usize).rev() {
        f = f.square();
        f = fold(f, g2_double_step(&mut t));
        if (ORDER[i / 64] >> (i % 64)) & 1 == 1 {
            f = fold(f, g2_add_step(&mut t, q));
        }
    }
    final_exponentiation_generic(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::ATE_TATE_EXP;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9a19)
    }

    #[test]
    fn non_degenerate() {
        let e = Gt::generator();
        assert!(!e.is_identity());
    }

    #[test]
    fn identity_inputs_map_to_one() {
        let q = G2Affine::generator();
        let p = G1Affine::generator();
        assert!(pairing(&G1Affine::identity(), &q).is_identity());
        assert!(pairing(&p, &G2Affine::identity()).is_identity());
    }

    #[test]
    fn bilinear_in_first_argument() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let p = G1Projective::generator();
        let q = G2Affine::generator();
        let lhs = pairing(&p.mul(&a).to_affine(), &q);
        let rhs = pairing(&p.to_affine(), &q).pow(&a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_second_argument() {
        let mut r = rng();
        let b = Fr::random(&mut r);
        let p = G1Affine::generator();
        let q = G2Projective::generator();
        let lhs = pairing(&p, &q.mul(&b).to_affine());
        let rhs = pairing(&p, &q.to_affine()).pow(&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn full_bilinearity() {
        let mut r = rng();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        let p = G1Projective::generator().mul(&a).to_affine();
        let q = G2Projective::generator().mul(&b).to_affine();
        assert_eq!(pairing(&p, &q), Gt::generator().pow(&(a * b)));
    }

    #[test]
    fn additive_in_first_argument() {
        let mut r = rng();
        let p1 = G1Projective::random(&mut r);
        let p2 = G1Projective::random(&mut r);
        let q = G2Projective::random(&mut r).to_affine();
        let lhs = pairing(&(p1 + p2).to_affine(), &q);
        let rhs = pairing(&p1.to_affine(), &q) * pairing(&p2.to_affine(), &q);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn negation_inverts() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G2Projective::random(&mut r).to_affine();
        let e = pairing(&p, &q);
        assert_eq!(pairing(&p.neg(), &q), e.inverse());
        assert!((pairing(&p, &q) * pairing(&p.neg(), &q)).is_identity());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut r = rng();
        let pairs_proj: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                (
                    G1Projective::random(&mut r).to_affine(),
                    G2Projective::random(&mut r).to_affine(),
                )
            })
            .collect();
        let refs: Vec<(&G1Affine, &G2Affine)> = pairs_proj.iter().map(|(p, q)| (p, q)).collect();
        let joint = multi_pairing(&refs);
        let mut separate = Gt::identity();
        for (p, q) in &pairs_proj {
            separate *= pairing(p, q);
        }
        assert_eq!(joint, separate);
    }

    #[test]
    fn multi_pairing_detects_cancellation() {
        // e(P,Q) * e(-P,Q) = 1 through the shared loop.
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G2Projective::random(&mut r).to_affine();
        let np = p.neg();
        assert!(multi_pairing(&[(&p, &q), (&np, &q)]).is_identity());
    }

    #[test]
    fn gt_has_order_r() {
        let e = Gt::generator();
        // e^r = 1: exponentiation by the group order.
        let r_minus_1 = Fr::zero() - Fr::one();
        assert_eq!(e.pow(&r_minus_1) * e, Gt::identity());
    }

    #[test]
    fn gt_pow_is_homomorphic() {
        let mut r = rng();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        let e = Gt::generator();
        assert_eq!(e.pow(&a) * e.pow(&b), e.pow(&(a + b)));
        assert_eq!(e.pow(&a).pow(&b), e.pow(&(a * b)));
    }

    #[test]
    fn gt_pow_edge_scalars() {
        let e = Gt::generator();
        assert!(e.pow(&Fr::zero()).is_identity());
        assert_eq!(e.pow(&Fr::one()), e);
        let r_minus_1 = Fr::zero() - Fr::one();
        assert_eq!(e.pow(&r_minus_1), e.inverse());
        assert!(Gt::identity().pow(&Fr::from_u64(12345)).is_identity());
    }

    #[test]
    fn prepared_matches_unprepared() {
        let mut r = rng();
        for _ in 0..3 {
            let p = G1Projective::random(&mut r).to_affine();
            let q = G2Projective::random(&mut r).to_affine();
            let prep = G2Prepared::new(&q);
            assert_eq!(multi_pairing_prepared(&[(&p, &prep)]), pairing(&p, &q));
        }
    }

    #[test]
    fn prepared_coeff_count_matches_loop() {
        let prep = G2Prepared::new(&G2Affine::generator());
        assert_eq!(prep.coeffs.len(), ate_coeff_count());
        assert!(!prep.is_identity());
        assert!(G2Prepared::new(&G2Affine::identity()).is_identity());
    }

    #[test]
    fn mixed_matches_unprepared_product() {
        let mut r = rng();
        let pairs_proj: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                (
                    G1Projective::random(&mut r).to_affine(),
                    G2Projective::random(&mut r).to_affine(),
                )
            })
            .collect();
        let refs: Vec<(&G1Affine, &G2Affine)> = pairs_proj.iter().map(|(p, q)| (p, q)).collect();
        let want = multi_pairing(&refs);
        // Prepare the second half, leave the first half live.
        let preps: Vec<G2Prepared> = pairs_proj[2..]
            .iter()
            .map(|(_, q)| G2Prepared::new(q))
            .collect();
        let prepared: Vec<(&G1Affine, &G2Prepared)> = pairs_proj[2..]
            .iter()
            .zip(preps.iter())
            .map(|((p, _), t)| (p, t))
            .collect();
        assert_eq!(multi_pairing_mixed(&refs[..2], &prepared), want);
        // Identity entries on both sides are skipped.
        let id1 = G1Affine::identity();
        let id_prep = G2Prepared::new(&G2Affine::identity());
        let mut with_ids = prepared.clone();
        with_ids.push((&id1, &preps[0]));
        with_ids.push((&pairs_proj[0].0, &id_prep));
        assert_eq!(multi_pairing_mixed(&refs[..2], &with_ids), want);
    }

    #[test]
    fn ate_equals_tate_g2_to_the_fixed_power() {
        let mut r = rng();
        let fr_exp = {
            // ATE_TATE_EXP as a scalar for Gt::pow.
            Fr::from_canonical_limbs(ATE_TATE_EXP)
        };
        for _ in 0..2 {
            let p = G1Projective::random(&mut r).to_affine();
            let q = G2Projective::random(&mut r).to_affine();
            assert_eq!(pairing(&p, &q), pairing_tate_g2(&p, &q).pow(&fr_exp));
        }
        // Edge inputs.
        let g1 = G1Affine::generator();
        let g2 = G2Affine::generator();
        assert_eq!(pairing(&g1, &g2), pairing_tate_g2(&g1, &g2).pow(&fr_exp));
        assert!(pairing_tate_g2(&G1Affine::identity(), &g2).is_identity());
        assert!(pairing_tate_g2(&g1, &G2Affine::identity()).is_identity());
    }

    #[test]
    fn tate_reference_still_bilinear() {
        let mut r = rng();
        let (a, b) = (Fr::random(&mut r), Fr::random(&mut r));
        let p = G1Projective::generator().mul(&a).to_affine();
        let q = G2Projective::generator().mul(&b).to_affine();
        let gen = pairing_tate(&G1Affine::generator(), &G2Affine::generator());
        assert_eq!(pairing_tate(&p, &q), gen.pow(&(a * b)));
        let np = p.neg();
        assert!(multi_pairing_tate(&[(&p, &q), (&np, &q)]).is_identity());
    }
}
