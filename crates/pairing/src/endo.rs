//! Endomorphism-accelerated subgroup membership checks.
//!
//! Decoding a compressed point must verify prime-order subgroup
//! membership, and with the wire codec on every transport hot path that
//! check *is* the cost of deserialization. The naive test multiplies by
//! the 255-bit group order; the standard BLS12-381 technique (M. Scott,
//! *A note on group membership tests for G1, G2 and GT on BLS
//! pairing-friendly curves*, ePrint 2021/1130) replaces it with one
//! cheap curve endomorphism evaluation plus a short scalar
//! multiplication:
//!
//! * **G2** — the untwist-Frobenius-twist endomorphism `ψ` acts on the
//!   order-`r` subgroup as multiplication by the BLS parameter
//!   `x = -BLS_X` (64 bits), so membership is `ψ(P) = [x]P`;
//! * **G1** — the GLV endomorphism `φ(x, y) = (βx, y)` (`β` a nontrivial
//!   cube root of unity in `Fp`) acts as multiplication by an eigenvalue
//!   `λ ∈ {x² − 1, −x²} (mod r)` (128 bits), so membership is
//!   `φ(P) = [λ]P`.
//!
//! Scott proves both conditions *equivalent* to `[r]P = O` on these
//! curves (the eigenvalues differ on every other component of the curve
//! group), and `tests` plus `pairing/tests/properties.rs` cross-check
//! against the retained [`crate::Projective::is_torsion_free`] reference
//! on subgroup, cofactor-torsion and random curve points.
//!
//! The endomorphism coefficients are derived *at first use* from the
//! curve constants alone (`ξ^{(p−1)/3}`, `ξ^{(p−1)/2}`, a cube root of
//! unity) and validated against the subgroup generator; an incoherent
//! derivation panics immediately rather than mis-verifying points. The
//! twist-sign and eigenvalue conventions are resolved by that generator
//! probe, so no hand-transcribed magic constants enter the codebase.

use crate::constants::{BLS_X, FP_MODULUS};
use crate::curve::{G1Affine, G1Projective, G2Affine, G2Projective};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::traits::Field;
use std::sync::OnceLock;

/// Divides a little-endian limb string by a small divisor, returning
/// quotient and remainder.
fn div_limbs(limbs: &[u64; 6], divisor: u64) -> ([u64; 6], u64) {
    let mut out = [0u64; 6];
    let mut rem: u128 = 0;
    for i in (0..6).rev() {
        let cur = (rem << 64) | limbs[i] as u128;
        out[i] = (cur / divisor as u128) as u64;
        rem = cur % divisor as u128;
    }
    (out, rem as u64)
}

/// `p − 1` as limbs (the modulus is odd, so no borrow).
fn p_minus_1() -> [u64; 6] {
    let mut limbs = FP_MODULUS;
    limbs[0] -= 1;
    limbs
}

/// `(p − 1) / 3` (exact: p ≡ 1 mod 3 on BLS12-381).
fn exp_third() -> [u64; 6] {
    let (q, r) = div_limbs(&p_minus_1(), 3);
    assert_eq!(r, 0, "p - 1 must be divisible by 3");
    q
}

/// `(p − 1) / 2`.
fn exp_half() -> [u64; 6] {
    let (q, _) = div_limbs(&p_minus_1(), 2);
    q
}

/// Negates an affine point without touching infinity handling.
fn neg_g1(p: &G1Affine) -> G1Affine {
    G1Affine {
        x: p.x,
        y: -p.y,
        infinity: p.infinity,
    }
}

fn neg_g2(p: &G2Affine) -> G2Affine {
    G2Affine {
        x: p.x,
        y: -p.y,
        infinity: p.infinity,
    }
}

// --- G2: untwist-Frobenius-twist ---

pub(crate) struct PsiG2 {
    /// Multiplier of the conjugated x-coordinate.
    pub(crate) cx: Fp2,
    /// Multiplier of the conjugated y-coordinate.
    pub(crate) cy: Fp2,
    /// `true` if the subgroup eigenvalue is `−BLS_X` (the BLS parameter
    /// is negative on this curve), resolved by the generator probe.
    pub(crate) negative_eigenvalue: bool,
}

impl PsiG2 {
    pub(crate) fn apply(&self, p: &G2Affine) -> G2Affine {
        G2Affine {
            x: p.x.frobenius_p() * self.cx,
            y: p.y.frobenius_p() * self.cy,
            infinity: p.infinity,
        }
    }

    /// `ψ(P) − [±BLS_X]P` vanishes exactly on the subgroup.
    fn holds_for(&self, p: &G2Affine) -> bool {
        let xp = p.to_projective().mul_vartime_limbs(&[BLS_X]);
        let xp = if self.negative_eigenvalue { -xp } else { xp };
        xp.add_affine(&neg_g2(&self.apply(p))).is_identity()
    }
}

pub(crate) fn psi_g2() -> &'static PsiG2 {
    static CELL: OnceLock<PsiG2> = OnceLock::new();
    CELL.get_or_init(|| {
        let xi = Fp2::new(Fp::one(), Fp::one());
        let gx = xi.pow_vartime(&exp_third());
        let gy = xi.pow_vartime(&exp_half());
        let gx_inv = gx.invert().expect("ξ^((p-1)/3) is invertible");
        let gy_inv = gy.invert().expect("ξ^((p-1)/2) is invertible");
        let generator = G2Projective::generator().to_affine();
        // Resolve the twist direction and eigenvalue sign on the
        // generator: exactly one combination is the genuine
        // endomorphism (the others do not even map onto the curve).
        for (cx, cy) in [(gx_inv, gy_inv), (gx, gy)] {
            for negative_eigenvalue in [true, false] {
                let candidate = PsiG2 {
                    cx,
                    cy,
                    negative_eigenvalue,
                };
                if candidate.apply(&generator).is_on_curve() && candidate.holds_for(&generator) {
                    return candidate;
                }
            }
        }
        panic!("no untwist-Frobenius-twist convention matches the G2 generator");
    })
}

/// Fast G2 subgroup membership: `ψ(P) = [x]P` (Scott, ePrint 2021/1130).
///
/// `p` must already be on the curve (the decoder established that);
/// the identity is vacuously a member.
pub fn g2_in_subgroup(p: &G2Affine) -> bool {
    if p.infinity {
        return true;
    }
    psi_g2().holds_for(p)
}

// --- G1: GLV ---

pub(crate) struct PhiG1 {
    /// Nontrivial cube root of unity in `Fp`.
    pub(crate) beta: Fp,
    /// `BLS_X²` as limbs (a 128-bit scalar).
    pub(crate) x_squared: [u64; 2],
    /// `true` if the subgroup eigenvalue is `x² − 1` (check
    /// `φ(P) + P = [x²]P`), `false` if it is `−x²` (check
    /// `φ(P) + [x²]P = O`) — which one depends on the β the derivation
    /// lands on; resolved by the generator probe.
    pub(crate) lambda_is_x2_minus_1: bool,
}

impl PhiG1 {
    pub(crate) fn apply(&self, p: &G1Affine) -> G1Affine {
        G1Affine {
            x: p.x * self.beta,
            y: p.y,
            infinity: p.infinity,
        }
    }

    fn holds_for(&self, p: &G1Affine) -> bool {
        let x2p = p.to_projective().mul_vartime_limbs(&self.x_squared);
        let phi = self.apply(p);
        if self.lambda_is_x2_minus_1 {
            // [x²]P − φ(P) − P = O.
            x2p.add_affine(&neg_g1(&phi))
                .add_affine(&neg_g1(p))
                .is_identity()
        } else {
            // [x²]P + φ(P) = O.
            x2p.add_affine(&phi).is_identity()
        }
    }
}

pub(crate) fn phi_g1() -> &'static PhiG1 {
    static CELL: OnceLock<PhiG1> = OnceLock::new();
    CELL.get_or_init(|| {
        let exp = exp_third();
        let beta = (2u64..)
            .map(|g| Fp::from_u64(g).pow_vartime(&exp))
            .find(|b| *b != Fp::one())
            .expect("Fp contains nontrivial cube roots of unity");
        let x2 = (BLS_X as u128) * (BLS_X as u128);
        let x_squared = [x2 as u64, (x2 >> 64) as u64];
        let generator = G1Projective::generator().to_affine();
        for lambda_is_x2_minus_1 in [true, false] {
            let candidate = PhiG1 {
                beta,
                x_squared,
                lambda_is_x2_minus_1,
            };
            if candidate.holds_for(&generator) {
                return candidate;
            }
        }
        panic!("no GLV eigenvalue convention matches the G1 generator");
    })
}

/// Fast G1 subgroup membership: `φ(P) = [λ]P` (Scott, ePrint 2021/1130).
///
/// `p` must already be on the curve; the identity is vacuously a member.
pub fn g1_in_subgroup(p: &G1Affine) -> bool {
    if p.infinity {
        return true;
    }
    phi_g1().holds_for(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xe2d0)
    }

    #[test]
    fn agrees_with_order_multiplication_on_subgroup_points() {
        let mut r = rng();
        for _ in 0..8 {
            let p1 = G1Projective::random(&mut r).to_affine();
            assert!(p1.to_projective().is_torsion_free());
            assert!(g1_in_subgroup(&p1));
            let p2 = G2Projective::random(&mut r).to_affine();
            assert!(p2.to_projective().is_torsion_free());
            assert!(g2_in_subgroup(&p2));
        }
        assert!(g1_in_subgroup(&G1Affine::identity()));
        assert!(g2_in_subgroup(&G2Affine::identity()));
    }

    /// Finds a curve point by x-coordinate sampling *without* clearing
    /// the cofactor — with overwhelming probability it lies outside the
    /// prime-order subgroup.
    fn random_g1_curve_point(r: &mut StdRng) -> G1Affine {
        loop {
            let x = Fp::random(r);
            let y2 = x.square() * x + Fp::from_u64(4);
            if let Some(y) = y2.sqrt() {
                let p = G1Affine {
                    x,
                    y,
                    infinity: false,
                };
                assert!(p.is_on_curve());
                return p;
            }
        }
    }

    fn random_g2_curve_point(r: &mut StdRng) -> G2Affine {
        loop {
            let x = Fp2::random(r);
            let y2 = x.square() * x + Fp2::new(Fp::from_u64(4), Fp::from_u64(4));
            if let Some(y) = y2.sqrt() {
                let p = G2Affine {
                    x,
                    y,
                    infinity: false,
                };
                assert!(p.is_on_curve());
                return p;
            }
        }
    }

    #[test]
    fn agrees_with_order_multiplication_off_subgroup() {
        let mut r = rng();
        let mut rejected = 0;
        for _ in 0..8 {
            let p1 = random_g1_curve_point(&mut r);
            let slow = p1.to_projective().is_torsion_free();
            assert_eq!(g1_in_subgroup(&p1), slow);
            let p2 = random_g2_curve_point(&mut r);
            let slow2 = p2.to_projective().is_torsion_free();
            assert_eq!(g2_in_subgroup(&p2), slow2);
            rejected += usize::from(!slow) + usize::from(!slow2);
        }
        // G1/G2 cofactors are huge: random curve points are (whp) not in
        // the subgroup, so the test must actually have exercised the
        // rejecting path.
        assert!(rejected >= 8, "expected mostly non-subgroup samples");
    }
}
