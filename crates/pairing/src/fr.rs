//! The BLS12-381 scalar field `Fr` (255-bit prime group order `r`).
//!
//! This is the exponent field of `G1`, `G2` and `GT`, and the coefficient
//! field for all secret sharing: private key shares, polynomial
//! coefficients and Lagrange multipliers are `Fr` elements.

use crate::arith::{adc, impl_montgomery_field, mac, sbb, wnaf_digits};
use crate::constants::*;
use crate::traits::Field;

impl_montgomery_field!(
    /// An element of the BLS12-381 scalar field (255-bit prime `r`).
    Fr,
    4,
    FR_MODULUS,
    FR_INV,
    FR_R,
    FR_R2,
    FR_R3,
    FR_INV_EXP,
    FR_TOP_MASK
);

impl Fr {
    /// Returns the scalar as 256 little-endian bits (canonical form),
    /// for use in double-and-add loops.
    pub fn to_le_bits(&self) -> [u64; 4] {
        self.to_canonical_limbs()
    }

    /// Recodes the scalar into width-`w` NAF signed digits (little-endian
    /// positions; non-zero digits are odd, `|d| < 2^(w-1)`), the form
    /// consumed by windowed scalar multiplication. See
    /// [`crate::Projective::mul`] for the consumer and the property tests
    /// for the equivalence with plain double-and-add.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= width <= 7`.
    pub fn to_wnaf(&self, width: usize) -> Vec<i8> {
        wnaf_digits(&self.to_canonical_limbs(), width)
    }

    /// Splits the scalar for the 2-dimensional G1 GLV ladder:
    /// `self ≡ k₁ + k₂·λ (mod r)` with both sub-scalar magnitudes below
    /// 2¹²⁹ (`λ` is [`crate::glv_lambda`]). Convenience
    /// re-exposure of [`crate::decompose_g1`] for callers that hold the
    /// scalar rather than a point.
    pub fn decompose_glv(&self) -> crate::glv::Decomposition {
        crate::glv::decompose_g1(self)
    }

    /// Splits the scalar for the 4-dimensional G2 GLS ladder:
    /// `self ≡ Σ aᵢ·eⁱ (mod r)` with 64-bit digits (`e` is
    /// [`crate::gls_eigenvalue`]). See [`crate::decompose_g2`].
    pub fn decompose_gls(&self) -> crate::glv::Decomposition {
        crate::glv::decompose_g2(self)
    }

    /// Samples a uniformly random *non-zero* scalar.
    pub fn random_nonzero<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let s = Self::random(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }
}

impl Field for Fr {
    fn zero() -> Self {
        Fr::zero()
    }
    fn one() -> Self {
        Fr::one()
    }
    fn is_zero(&self) -> bool {
        Fr::is_zero(self)
    }
    fn square(&self) -> Self {
        Fr::square(self)
    }
    fn double(&self) -> Self {
        Fr::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Fr::invert(self)
    }
    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Fr::random(rng)
    }
    fn pow_vartime(&self, exp: &[u64]) -> Self {
        Fr::pow_vartime(self, exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xf12e)
    }

    #[test]
    fn field_axioms_spot_checks() {
        let mut r = rng();
        for _ in 0..20 {
            let (a, b, c) = (Fr::random(&mut r), Fr::random(&mut r), Fr::random(&mut r));
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a + (-a), Fr::zero());
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fr::random_nonzero(&mut r);
            assert_eq!(a * a.invert().unwrap(), Fr::one());
        }
        assert!(Fr::zero().invert().is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        assert_eq!(Fr::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn from_u64_homomorphic() {
        assert_eq!(Fr::from_u64(100) - Fr::from_u64(58), Fr::from_u64(42));
        assert_eq!(Fr::from_u64(9) * Fr::from_u64(9), Fr::from_u64(81));
    }

    #[test]
    fn random_nonzero_is_nonzero() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(!Fr::random_nonzero(&mut r).is_zero());
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let mut r = rng();
        let a = Fr::random_nonzero(&mut r);
        let mut exp = FR_MODULUS;
        exp[0] -= 1;
        assert_eq!(a.pow_vartime(&exp), Fr::one());
    }

    #[test]
    fn serde_roundtrip_is_canonical() {
        // Fr serde goes through bytes; spot-check via Debug formatting too.
        let a = Fr::from_u64(123456789);
        let s = format!("{:?}", a);
        assert!(s.starts_with("Fr(0x"));
    }
}
