//! Fixed-base scalar-multiplication tables.
//!
//! A [`FixedBaseTable`] trades memory for speed on bases that are
//! multiplied by many different scalars over their lifetime: the two
//! curve generators, the per-scheme signing base `g` of the §4
//! standard-model scheme, and long-lived public keys. The table stores
//! every window-aligned multiple `j·2^(w·window)·B` in affine form
//! (normalized with one batched inversion at build time), so a 255-bit
//! scalar multiplication becomes ~64 *mixed additions and zero
//! doublings* — roughly a 4–6× speedup over the wNAF variable-base path,
//! which itself beats the schoolbook ladder. On the two curve groups the
//! table additionally exploits the GLV/GLS decomposition: it stores only
//! the sub-scalar window range (33 windows for `G1`, 16 for `G2`) and
//! reaches the remaining dimensions by applying the endomorphism to the
//! looked-up entries, shrinking build time and memory 2–4× at unchanged
//! multiplication cost.
//!
//! Equivalence with the schoolbook slow path is enforced by property
//! tests (`tests/scalar_mul_properties.rs`), including the edge scalars
//! `0`, `1` and `r - 1` and the identity base.
//!
//! The process-wide generator tables are built lazily on first use and
//! shared: [`g1_generator_table`] / [`g2_generator_table`], with the
//! convenience wrappers [`mul_g1_generator`] / [`mul_g2_generator`].

use crate::curve::{Affine, CurveParams, G1Params, G2Params, Projective};
use crate::fr::Fr;
use crate::msm::extract_bits;
use crate::pairing::G2Prepared;
use std::sync::OnceLock;

/// Precomputed window tables for one fixed base point.
///
/// `tables[w][j - 1] = j · 2^(w·window) · B` for `j in 1..2^window`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedBaseTable<C: CurveParams> {
    window: usize,
    tables: Vec<Vec<Affine<C>>>,
    base: Affine<C>,
}

/// Fixed-base table over `G1`.
pub type G1Table = FixedBaseTable<G1Params>;
/// Fixed-base table over `G2`.
pub type G2Table = FixedBaseTable<G2Params>;

impl<C: CurveParams> FixedBaseTable<C> {
    /// Window width used by [`Self::new`]. On a curve without
    /// endomorphism acceleration that is 64 windows of 15 entries; with
    /// GLV/GLS decomposition the table only spans the sub-scalar range —
    /// 33 windows (~23 KiB) in `G1`, 16 windows (~45 KiB) in `G2` — at
    /// the same per-mul cost, since the missing windows are reached
    /// through the endomorphism instead of storage.
    pub const DEFAULT_WINDOW: usize = 4;

    /// Builds the table for `base` with the default window width.
    pub fn new(base: &Projective<C>) -> Self {
        Self::with_window(base, Self::DEFAULT_WINDOW)
    }

    /// Builds the table with an explicit window width.
    ///
    /// Construction costs one pass of `2^window`-spaced additions
    /// (~`2^window · 256/window` group additions) plus batched
    /// inversion; amortized over many multiplications of the same base.
    /// With more than one thread configured
    /// ([`borndist_parallel::current`]), a short doubling ladder derives
    /// the window bases `2^(w·window)·B` up front and the per-window
    /// fills run in parallel; sequentially, the classic addition chain
    /// (each window's last addition is the next window's base) is kept,
    /// costing zero extra group operations. The stored points are
    /// affine (canonical coordinates), so both paths build the
    /// identical table — enforced by `tests/parallel_invariance.rs`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= window <= 8`.
    pub fn with_window(base: &Projective<C>, window: usize) -> Self {
        assert!((1..=8).contains(&window), "window width out of range");
        // With a decomposition the table only has to cover one
        // sub-scalar; [`Self::mul`] reaches the other dimensions by
        // applying the endomorphism to the looked-up entries.
        let total_bits = if C::endo_dimensions() > 1 {
            C::endo_sub_bits()
        } else {
            256
        };
        let num_windows = total_bits.div_ceil(window);
        let entries = (1usize << window) - 1;
        let mut flat: Vec<Projective<C>> = Vec::with_capacity(num_windows * entries);
        if borndist_parallel::current_threads() <= 1 {
            // Sequential: `window_base` walks through 2^(w·window)·B —
            // each window's final addition *is* the next window's base,
            // so the chain costs no extra group operations.
            let mut window_base = *base;
            for _ in 0..num_windows {
                let mut cur = window_base;
                for _ in 0..entries {
                    flat.push(cur);
                    cur = cur.add(&window_base);
                }
                // After `entries` additions, cur = 2^window · window_base.
                window_base = cur;
            }
        } else {
            // Parallel: a short serial doubling ladder derives every
            // window base up front (256 doublings — noise against the
            // ~entries·num_windows additions it unlocks), then each
            // window's multiples fill independently across threads.
            let mut window_bases = Vec::with_capacity(num_windows);
            let mut wb = *base;
            for _ in 0..num_windows {
                window_bases.push(wb);
                for _ in 0..window {
                    wb = wb.double();
                }
            }
            let per_window: Vec<Vec<Projective<C>>> =
                borndist_parallel::par_map(&window_bases, |window_base| {
                    let mut col = Vec::with_capacity(entries);
                    let mut cur = *window_base;
                    for _ in 0..entries {
                        col.push(cur);
                        cur = cur.add(window_base);
                    }
                    col
                });
            for col in per_window {
                flat.extend(col);
            }
        }
        let flat = Projective::batch_to_affine(&flat);
        FixedBaseTable {
            window,
            tables: flat.chunks(entries).map(<[_]>::to_vec).collect(),
            base: base.to_affine(),
        }
    }

    /// The base point this table multiplies.
    pub fn base(&self) -> Affine<C> {
        self.base
    }

    /// The window width of the table.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Fixed-base scalar multiplication: `scalar · base` using only
    /// table lookups and mixed additions (no doublings). On a curve with
    /// GLV/GLS the scalar is decomposed and each sub-scalar walks the
    /// (shorter) table with the matching endomorphism power applied to
    /// every looked-up entry — the total addition count is unchanged but
    /// the table is 2–4× smaller.
    pub fn mul(&self, scalar: &Fr) -> Projective<C> {
        if let Some(dec) = C::endo_decompose(scalar) {
            let mut acc = Projective::identity();
            for (i, part) in dec.parts[..dec.len].iter().enumerate() {
                let limbs = [part.limbs[0], part.limbs[1], part.limbs[2], 0];
                for (w, table) in self.tables.iter().enumerate() {
                    let idx = extract_bits(&limbs, w * self.window, self.window);
                    if idx > 0 {
                        let mut entry = C::endo_affine(&table[idx - 1], i);
                        if part.negative {
                            entry = entry.neg();
                        }
                        acc = acc.add_affine(&entry);
                    }
                }
            }
            return acc;
        }
        let limbs = scalar.to_le_bits();
        let mut acc = Projective::identity();
        for (w, table) in self.tables.iter().enumerate() {
            let idx = extract_bits(&limbs, w * self.window, self.window);
            if idx > 0 {
                acc = acc.add_affine(&table[idx - 1]);
            }
        }
        acc
    }
}

/// The shared fixed-base table for the `G1` generator (built on first
/// use, then reused process-wide).
pub fn g1_generator_table() -> &'static G1Table {
    static TABLE: OnceLock<G1Table> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::new(&Projective::generator()))
}

/// The shared fixed-base table for the `G2` generator.
pub fn g2_generator_table() -> &'static G2Table {
    static TABLE: OnceLock<G2Table> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::new(&Projective::generator()))
}

/// The shared [`G2Prepared`] form of the `G2` generator: Miller line
/// coefficients cached once per process, so every pairing against `g2`
/// (e.g. `e(g1, g2)`-style sanity equations) skips all `Fp2` point
/// arithmetic — the pairing analogue of the fixed-base tables above.
pub fn g2_generator_prepared() -> &'static G2Prepared {
    static PREP: OnceLock<G2Prepared> = OnceLock::new();
    PREP.get_or_init(|| G2Prepared::new(&Affine::generator()))
}

/// `scalar · g1` through the shared generator table.
pub fn mul_g1_generator(scalar: &Fr) -> Projective<G1Params> {
    g1_generator_table().mul(scalar)
}

/// `scalar · g2` through the shared generator table.
pub fn mul_g2_generator(scalar: &Fr) -> Projective<G2Params> {
    g2_generator_table().mul(scalar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xf1ba)
    }

    #[test]
    fn generator_tables_match_generic_mul() {
        let mut r = rng();
        for _ in 0..4 {
            let s = Fr::random(&mut r);
            assert_eq!(mul_g1_generator(&s), G1Projective::generator().mul(&s));
            assert_eq!(mul_g2_generator(&s), G2Projective::generator().mul(&s));
        }
    }

    #[test]
    fn arbitrary_base_and_windows() {
        let mut r = rng();
        let base = G1Projective::random(&mut r);
        let s = Fr::random(&mut r);
        let want = base.mul(&s);
        for window in [1usize, 3, 4, 5] {
            let table = FixedBaseTable::with_window(&base, window);
            assert_eq!(table.mul(&s), want, "window={}", window);
            assert_eq!(table.window(), window);
        }
    }

    #[test]
    fn shared_prepared_generator_matches_fresh() {
        assert_eq!(
            *g2_generator_prepared(),
            G2Prepared::new(&crate::curve::G2Affine::generator())
        );
    }

    #[test]
    fn identity_base_and_edge_scalars() {
        let table = FixedBaseTable::new(&G1Projective::identity());
        let mut r = rng();
        assert!(table.mul(&Fr::random(&mut r)).is_identity());
        let gen = g1_generator_table();
        assert!(gen.mul(&Fr::zero()).is_identity());
        assert_eq!(gen.mul(&Fr::one()), G1Projective::generator());
        assert_eq!(gen.base(), G1Projective::generator().to_affine());
    }
}
