//! Cubic extension `Fp6 = Fp2[v]/(v³ - ξ)` with `ξ = 1 + u`.

use crate::constants::FROB1_GAMMA;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::traits::Field;
use rand::RngCore;

/// The cached Frobenius coefficient `γ_i = ξ^(i(p-1)/6) ∈ Fp2`.
pub(crate) fn frob1_gamma(i: usize) -> Fp2 {
    Fp2::new(
        Fp::from_canonical_limbs(FROB1_GAMMA[i][0]),
        Fp::from_canonical_limbs(FROB1_GAMMA[i][1]),
    )
}

/// An element `c0 + c1·v + c2·v²` of `Fp6`, with `v³ = ξ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp6 {
    /// Coefficient of `1`.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v²`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Constructs an element from its three `Fp2` coefficients.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Fp6 { c0, c1, c2 }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Fp6::new(Fp2::zero(), Fp2::zero(), Fp2::zero())
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp6::new(Fp2::one(), Fp2::zero(), Fp2::zero())
    }

    /// Embeds an `Fp2` element in the constant coefficient.
    pub fn from_fp2(a: Fp2) -> Self {
        Fp6::new(a, Fp2::zero(), Fp2::zero())
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Multiplies by `v`: `(c0, c1, c2) ↦ (ξ·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Fp6::new(self.c2.mul_by_xi(), self.c0, self.c1)
    }

    /// Scales by an `Fp2` element.
    pub fn mul_by_fp2(&self, a: &Fp2) -> Self {
        Fp6::new(self.c0 * *a, self.c1 * *a, self.c2 * *a)
    }

    /// Scales by an `Fp` element.
    pub fn mul_by_fp(&self, a: &Fp) -> Self {
        Fp6::new(
            self.c0.mul_by_fp(a),
            self.c1.mul_by_fp(a),
            self.c2.mul_by_fp(a),
        )
    }

    /// The `p`-power Frobenius endomorphism: conjugate each `Fp2`
    /// coefficient, then scale the `v` and `v²` coefficients by
    /// `γ_2 = ξ^((p-1)/3)` and `γ_4 = ξ^(2(p-1)/3)` (from `v^p = γ_2·v`).
    pub fn frobenius_p(&self) -> Self {
        Fp6::new(
            self.c0.conjugate(),
            self.c1.conjugate() * frob1_gamma(2),
            self.c2.conjugate() * frob1_gamma(4),
        )
    }

    /// Sparse multiplication by an element `b1·v` (only the `v`
    /// coefficient non-zero) — 3 `Fp2` multiplications instead of the
    /// generic 6 (used by the Miller-loop line products).
    pub fn mul_by_1(&self, b1: &Fp2) -> Self {
        Fp6::new((self.c2 * *b1).mul_by_xi(), self.c0 * *b1, self.c1 * *b1)
    }

    /// Sparse multiplication by an element `b0 + b1·v` (the `v²`
    /// coefficient zero) — 5 `Fp2` multiplications via Karatsuba.
    pub fn mul_by_01(&self, b0: &Fp2, b1: &Fp2) -> Self {
        let a_a = self.c0 * *b0;
        let b_b = self.c1 * *b1;
        let t1 = ((self.c1 + self.c2) * *b1 - b_b).mul_by_xi() + a_a;
        let t2 = (*b0 + *b1) * (self.c0 + self.c1) - a_a - b_b;
        let t3 = (self.c0 + self.c2) * *b0 - a_a + b_b;
        Fp6::new(t1, t2, t3)
    }

    /// `self * self`.
    pub fn square(&self) -> Self {
        *self * *self
    }

    /// `self + self`.
    pub fn double(&self) -> Self {
        Fp6::new(self.c0.double(), self.c1.double(), self.c2.double())
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        // Standard formula: with A = c0² - ξ c1 c2, B = ξ c2² - c0 c1,
        // C = c1² - c0 c2, and  t = c0 A + ξ (c2 B + c1 C),
        // the inverse is (A + B v + C v²)/t.
        let a = self.c0.square() - (self.c1 * self.c2).mul_by_xi();
        let b = self.c2.square().mul_by_xi() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let t = self.c0 * a + ((self.c2 * b) + (self.c1 * c)).mul_by_xi();
        t.invert()
            .map(|t_inv| Fp6::new(a * t_inv, b * t_inv, c * t_inv))
    }
}

impl core::fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

impl core::ops::Add for Fp6 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp6::new(self.c0 + rhs.c0, self.c1 + rhs.c1, self.c2 + rhs.c2)
    }
}
impl core::ops::Sub for Fp6 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp6::new(self.c0 - rhs.c0, self.c1 - rhs.c1, self.c2 - rhs.c2)
    }
}
impl core::ops::Neg for Fp6 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp6::new(-self.c0, -self.c1, -self.c2)
    }
}
impl core::ops::Mul for Fp6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom/Karatsuba interpolation with reduction by v³ = ξ.
        let t0 = self.c0 * rhs.c0;
        let t1 = self.c1 * rhs.c1;
        let t2 = self.c2 * rhs.c2;
        let c0 = t0 + ((self.c1 + self.c2) * (rhs.c1 + rhs.c2) - t1 - t2).mul_by_xi();
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - t0 - t1 + t2.mul_by_xi();
        let c2 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - t0 - t2 + t1;
        Fp6::new(c0, c1, c2)
    }
}
impl core::ops::AddAssign for Fp6 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fp6 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fp6 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fp6 {
    fn zero() -> Self {
        Fp6::zero()
    }
    fn one() -> Self {
        Fp6::one()
    }
    fn is_zero(&self) -> bool {
        Fp6::is_zero(self)
    }
    fn square(&self) -> Self {
        Fp6::square(self)
    }
    fn double(&self) -> Self {
        Fp6::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Fp6::invert(self)
    }
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Fp6::new(Fp2::random(rng), Fp2::random(rng), Fp2::random(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6f6f)
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        let v3 = v * v * v;
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..10 {
            let (a, b, c) = (
                Fp6::random(&mut r),
                Fp6::random(&mut r),
                Fp6::random(&mut r),
            );
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp6::random(&mut r);
            assert_eq!(a * a.invert().unwrap(), Fp6::one());
        }
        assert!(Fp6::zero().invert().is_none());
    }

    #[test]
    fn mul_by_v_matches_mul() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(a.mul_by_v(), a * v);
    }

    #[test]
    fn sparse_muls_match_generic() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp6::random(&mut r);
            let b0 = Fp2::random(&mut r);
            let b1 = Fp2::random(&mut r);
            assert_eq!(a.mul_by_1(&b1), a * Fp6::new(Fp2::zero(), b1, Fp2::zero()));
            assert_eq!(a.mul_by_01(&b0, &b1), a * Fp6::new(b0, b1, Fp2::zero()));
        }
    }

    #[test]
    fn frobenius_p_is_field_homomorphism_of_order_six() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        let b = Fp6::random(&mut r);
        assert_eq!((a * b).frobenius_p(), a.frobenius_p() * b.frobenius_p());
        assert_eq!((a + b).frobenius_p(), a.frobenius_p() + b.frobenius_p());
        let mut c = a;
        for _ in 0..6 {
            c = c.frobenius_p();
        }
        assert_eq!(c, a);
        // Fixes the prime field.
        let e = Fp6::from_fp2(Fp2::from_fp(Fp::from_u64(11)));
        assert_eq!(e.frobenius_p(), e);
    }

    #[test]
    fn scalar_muls_consistent() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        let s2 = Fp2::random(&mut r);
        assert_eq!(a.mul_by_fp2(&s2), a * Fp6::from_fp2(s2));
        let s = Fp::from_u64(99);
        assert_eq!(a.mul_by_fp(&s), a * Fp6::from_fp2(Fp2::from_fp(s)));
    }
}
