//! Multi-scalar multiplication (Pippenger's bucket algorithm).
//!
//! Used to accelerate the `Combine` step of all threshold schemes
//! (Lagrange interpolation in the exponent, experiment E6), the public
//! computation of verification keys from broadcast commitments, and the
//! random-weight combinations of [`borndist-core`]'s batch verification.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fr::Fr;

/// Window width (bits) for an input of `n >= 4` points.
///
/// Inputs shorter than 4 never reach the bucket method — [`msm`] handles
/// them with naive per-point multiplication first — so every arm here is
/// reachable (the pre-fix table started at `0..=15`, leaving its first
/// arm partially dead behind that fallback). Thresholds follow the usual
/// `n ≈ 2^w` heuristic balancing `256/w` window passes against `2^w - 1`
/// buckets per pass; `window_table_is_reachable_and_monotone` and the
/// `matches_naive_*` tests cover every arm.
pub(crate) fn window_size(n: usize) -> usize {
    match n {
        0..=3 => unreachable!("inputs below 4 points take the naive fallback"),
        4..=15 => 3,
        16..=127 => 5,
        128..=1023 => 8,
        _ => 11,
    }
}

/// Inputs below this length never parallelize: a window pass over a
/// handful of points finishes faster than a thread spawns.
const PAR_MIN_POINTS: usize = 32;

/// The bucket accumulation of one window: `Σ_j j·bucket[j]` over the
/// `window`-bit digits starting at bit `lo`. A pure function of the
/// input, so windows can be computed sequentially or in parallel with
/// bit-identical results.
fn window_sum<C: CurveParams>(
    bases: &[Affine<C>],
    bits: &[[u64; 4]],
    lo: usize,
    window: usize,
) -> Projective<C> {
    let bucket_count = (1usize << window) - 1;
    let mut buckets = vec![Projective::<C>::identity(); bucket_count];
    for (base, limbs) in bases.iter().zip(bits.iter()) {
        let idx = extract_bits(limbs, lo, window);
        if idx > 0 {
            buckets[idx - 1] = buckets[idx - 1].add_affine(base);
        }
    }
    // Collapse the buckets into Σ_j j·bucket[j] by suffix sums, in
    // projective coordinates. Normalizing the buckets to affine first
    // (one `batch_invert` per window, mixed adds after) was measured
    // strictly slower at every input size on this substrate — one
    // Fermat inversion (~380 field mults) per window never amortizes
    // over at most 255 buckets saving ~5 mults each — so batched
    // inversion is reserved for the paths where it wins
    // (`batch_to_affine`, fixed-base table construction).
    let mut running = Projective::identity();
    let mut sum = Projective::identity();
    for b in buckets.iter().rev() {
        running += *b;
        sum += running;
    }
    sum
}

/// Computes `Σ scalars[i] · bases[i]` over any of the curve groups.
///
/// Uses a windowed bucket method with a window size chosen from the input
/// length; falls back to naive (wNAF) per-point multiplication for very
/// small inputs. The per-window bucket accumulations are independent, so
/// for inputs of [`PAR_MIN_POINTS`] or more points they run across the
/// configured threads ([`borndist_parallel::current`]); the cheap Horner
/// fold over the window sums (doublings plus one addition per window) is
/// identical either way, so the result does not depend on the thread
/// count.
///
/// # Panics
///
/// Panics if `bases` and `scalars` have different lengths.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm requires equal-length inputs"
    );
    if bases.is_empty() {
        return Projective::identity();
    }
    if bases.len() < 4 {
        let mut acc = Projective::identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc += b.mul(s);
        }
        return acc;
    }

    // GLV/GLS expansion: trade each point for `dims` endomorphism images
    // with sub-scalars of `endo_sub_bits()` bits, shrinking the doubling
    // chain (and the number of window passes) by the same factor. A
    // negative sub-scalar negates the image instead (one `Fp` negation).
    let dims = C::endo_dimensions();
    if dims > 1 {
        let mut exp_bases = Vec::with_capacity(bases.len() * dims);
        let mut exp_bits = Vec::with_capacity(bases.len() * dims);
        for (base, scalar) in bases.iter().zip(scalars.iter()) {
            let dec = C::endo_decompose(scalar).expect("dims > 1 implies a decomposition");
            for (i, part) in dec.parts[..dec.len].iter().enumerate() {
                if part.limbs == [0; 3] {
                    continue;
                }
                let image = C::endo_affine(base, i);
                exp_bases.push(if part.negative { image.neg() } else { image });
                exp_bits.push([part.limbs[0], part.limbs[1], part.limbs[2], 0]);
            }
        }
        return msm_bucketed(&exp_bases, &exp_bits, C::endo_sub_bits());
    }

    let bits: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_le_bits()).collect();
    msm_bucketed(bases, &bits, 256)
}

/// The windowed bucket core shared by the direct and endo-expanded
/// paths: `Σ bits[i]·bases[i]` where each `bits[i]` is a little-endian
/// integer of at most `total_bits` bits.
fn msm_bucketed<C: CurveParams>(
    bases: &[Affine<C>],
    bits: &[[u64; 4]],
    total_bits: usize,
) -> Projective<C> {
    if bases.is_empty() {
        return Projective::identity();
    }
    let window = window_size(bases.len().max(4));
    let num_windows = total_bits.div_ceil(window);

    let windows: Vec<usize> = (0..num_windows).collect();
    let compute = |w: &usize| window_sum(bases, bits, *w * window, window);
    let sums: Vec<Projective<C>> =
        if bases.len() >= PAR_MIN_POINTS && borndist_parallel::current_threads() > 1 {
            borndist_parallel::par_map(&windows, compute)
        } else {
            windows.iter().map(compute).collect()
        };

    let mut result = Projective::identity();
    for w in (0..num_windows).rev() {
        for _ in 0..window {
            result = result.double();
        }
        result += sums[w];
    }
    result
}

/// Extracts `count` bits of a 256-bit little-endian integer starting at
/// bit `lo` (values past bit 255 read as zero). Shared with the
/// fixed-base tables in [`crate::precompute`].
pub(crate) fn extract_bits(limbs: &[u64; 4], lo: usize, count: usize) -> usize {
    let mut out = 0usize;
    for i in 0..count {
        let bit = lo + i;
        if bit >= 256 {
            break;
        }
        let b = (limbs[bit / 64] >> (bit % 64)) & 1;
        out |= (b as usize) << i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x3533)
    }

    fn naive<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
        let mut acc = Projective::identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc += b.to_projective().mul_schoolbook(&s.to_le_bits());
        }
        acc
    }

    #[test]
    fn empty_is_identity() {
        let out: G1Projective = msm::<crate::curve::G1Params>(&[], &[]);
        assert!(out.is_identity());
    }

    #[test]
    fn window_table_is_reachable_and_monotone() {
        // Smallest bucketed input hits the 3-bit arm (the arm that was
        // dead when the naive fallback overlapped the first range).
        assert_eq!(window_size(4), 3);
        assert_eq!(window_size(15), 3);
        assert_eq!(window_size(16), 5);
        assert_eq!(window_size(127), 5);
        assert_eq!(window_size(128), 8);
        assert_eq!(window_size(1023), 8);
        assert_eq!(window_size(1024), 11);
        assert_eq!(window_size(1 << 20), 11);
        for n in 4..=2048usize {
            assert!(window_size(n) <= window_size(n + 1), "monotone at {}", n);
        }
    }

    #[test]
    fn matches_naive_small() {
        let mut r = rng();
        // n = 4 is the first input through the bucket path (3-bit
        // window); n < 4 exercises the naive fallback.
        for n in [1usize, 2, 3, 4, 5, 8, 15] {
            let bases: Vec<_> = (0..n)
                .map(|_| G1Projective::random(&mut r).to_affine())
                .collect();
            let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
            assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n={}", n);
        }
    }

    #[test]
    fn matches_naive_medium() {
        let mut r = rng();
        let n = 40;
        let bases: Vec<_> = (0..n)
            .map(|_| G1Projective::random(&mut r).to_affine())
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn works_on_g2() {
        let mut r = rng();
        let n = 6;
        let bases: Vec<_> = (0..n)
            .map(|_| G2Projective::random(&mut r).to_affine())
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn zero_scalars_and_identity_bases() {
        let mut r = rng();
        let bases = vec![
            G1Projective::random(&mut r).to_affine(),
            crate::curve::G1Affine::identity(),
            G1Projective::random(&mut r).to_affine(),
            G1Projective::random(&mut r).to_affine(),
            G1Projective::random(&mut r).to_affine(),
        ];
        let scalars = vec![
            Fr::zero(),
            Fr::random(&mut r),
            Fr::one(),
            Fr::random(&mut r),
            Fr::zero(),
        ];
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        let bases = vec![crate::curve::G1Affine::generator()];
        let scalars: Vec<Fr> = vec![];
        let _ = msm(&bases, &scalars);
    }
}
