//! Multi-scalar multiplication (Pippenger's bucket algorithm).
//!
//! Used to accelerate the `Combine` step of all threshold schemes
//! (Lagrange interpolation in the exponent, experiment E6) and the
//! public computation of verification keys from broadcast commitments.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fr::Fr;

/// Computes `Σ scalars[i] · bases[i]` over any of the curve groups.
///
/// Uses a windowed bucket method with a window size chosen from the input
/// length; falls back to naive double-and-add for very small inputs.
///
/// # Panics
///
/// Panics if `bases` and `scalars` have different lengths.
pub fn msm<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(
        bases.len(),
        scalars.len(),
        "msm requires equal-length inputs"
    );
    if bases.is_empty() {
        return Projective::identity();
    }
    if bases.len() < 4 {
        let mut acc = Projective::identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc += b.mul(s);
        }
        return acc;
    }

    let window = match bases.len() {
        0..=15 => 3,
        16..=127 => 5,
        128..=1023 => 8,
        _ => 11,
    };
    let num_windows = 256_usize.div_ceil(window);
    let bucket_count = (1usize << window) - 1;
    let bits: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_le_bits()).collect();

    let mut result = Projective::identity();
    for w in (0..num_windows).rev() {
        for _ in 0..window {
            result = result.double();
        }
        let mut buckets = vec![Projective::<C>::identity(); bucket_count];
        let lo = w * window;
        for (base, limbs) in bases.iter().zip(bits.iter()) {
            let idx = extract_bits(limbs, lo, window);
            if idx > 0 {
                buckets[idx - 1] = buckets[idx - 1].add_affine(base);
            }
        }
        // Suffix-sum the buckets: sum_j j * bucket[j].
        let mut running = Projective::identity();
        let mut window_sum = Projective::identity();
        for b in buckets.iter().rev() {
            running += *b;
            window_sum += running;
        }
        result += window_sum;
    }
    result
}

/// Extracts `count` bits of a 256-bit little-endian integer starting at
/// bit `lo` (values past bit 255 read as zero).
fn extract_bits(limbs: &[u64; 4], lo: usize, count: usize) -> usize {
    let mut out = 0usize;
    for i in 0..count {
        let bit = lo + i;
        if bit >= 256 {
            break;
        }
        let b = (limbs[bit / 64] >> (bit % 64)) & 1;
        out |= (b as usize) << i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x3533)
    }

    fn naive<C: CurveParams>(bases: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
        let mut acc = Projective::identity();
        for (b, s) in bases.iter().zip(scalars.iter()) {
            acc += b.mul(s);
        }
        acc
    }

    #[test]
    fn empty_is_identity() {
        let out: G1Projective = msm::<crate::curve::G1Params>(&[], &[]);
        assert!(out.is_identity());
    }

    #[test]
    fn matches_naive_small() {
        let mut r = rng();
        for n in [1usize, 2, 3, 5, 8] {
            let bases: Vec<_> = (0..n)
                .map(|_| G1Projective::random(&mut r).to_affine())
                .collect();
            let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
            assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars), "n={}", n);
        }
    }

    #[test]
    fn matches_naive_medium() {
        let mut r = rng();
        let n = 40;
        let bases: Vec<_> = (0..n)
            .map(|_| G1Projective::random(&mut r).to_affine())
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn works_on_g2() {
        let mut r = rng();
        let n = 6;
        let bases: Vec<_> = (0..n)
            .map(|_| G2Projective::random(&mut r).to_affine())
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r)).collect();
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    fn zero_scalars_and_identity_bases() {
        let mut r = rng();
        let bases = vec![
            G1Projective::random(&mut r).to_affine(),
            crate::curve::G1Affine::identity(),
            G1Projective::random(&mut r).to_affine(),
            G1Projective::random(&mut r).to_affine(),
            G1Projective::random(&mut r).to_affine(),
        ];
        let scalars = vec![
            Fr::zero(),
            Fr::random(&mut r),
            Fr::one(),
            Fr::random(&mut r),
            Fr::zero(),
        ];
        assert_eq!(msm(&bases, &scalars), naive(&bases, &scalars));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        let bases = vec![crate::curve::G1Affine::generator()];
        let scalars: Vec<Fr> = vec![];
        let _ = msm(&bases, &scalars);
    }
}
