//! Hashing byte strings to group elements (random oracles onto `G1`/`G2`)
//! and to scalars.
//!
//! The construction is *try-and-increment*: derive a counter-indexed
//! stream of candidate x-coordinates from the message, take the first one
//! that lands on the curve, pick the y-root by a derived sign bit, then
//! clear the cofactor. This is variable-time in the message (fine for the
//! public inputs it is used on here) and is a faithful stand-in for the
//! "hash-on-curve" operation the paper counts in its cost claims.
//!
//! All hashes are domain-separated; the paper's random oracles
//! `H : {0,1}* → G^k` are built by hashing with per-coordinate domain tags.

use crate::curve::{G1Affine, G1Projective, G2Affine, G2Projective};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::sha256::expand_message;

/// Hashes a message to a scalar in `Fr` (nearly uniform).
pub fn hash_to_fr(dst: &[u8], msg: &[u8]) -> Fr {
    let mut wide = [0u8; 64];
    expand_message(dst, msg, &mut wide);
    Fr::from_bytes_wide(&wide)
}

/// Hashes a message to a nearly-uniform element of `Fp`.
fn hash_to_fp(dst: &[u8], msg: &[u8], ctr: u64) -> Fp {
    let mut wide = [0u8; 96];
    let mut input = Vec::with_capacity(msg.len() + 8);
    input.extend_from_slice(msg);
    input.extend_from_slice(&ctr.to_be_bytes());
    expand_message(dst, &input, &mut wide);
    Fp::from_bytes_wide(&wide)
}

/// Hashes a message to a point of the prime-order subgroup `G1`.
pub fn hash_to_g1(dst: &[u8], msg: &[u8]) -> G1Projective {
    let mut ctr = 0u64;
    loop {
        let x = hash_to_fp(dst, msg, 2 * ctr);
        let sign_source = hash_to_fp(dst, msg, 2 * ctr + 1);
        let y2 = x.square() * x + Fp::from_u64(4);
        if let Some(mut y) = y2.sqrt() {
            // Derive the sign from the message so the map is deterministic
            // but unbiased between the two roots.
            if sign_source.is_odd() != y.is_odd() {
                y = -y;
            }
            let point = G1Affine {
                x,
                y,
                infinity: false,
            }
            .to_projective()
            .clear_cofactor();
            if !point.is_identity() {
                return point;
            }
        }
        ctr += 1;
    }
}

/// Hashes a message to a point of the prime-order subgroup `G2`.
pub fn hash_to_g2(dst: &[u8], msg: &[u8]) -> G2Projective {
    let mut ctr = 0u64;
    loop {
        let x = Fp2::new(
            hash_to_fp(dst, msg, 4 * ctr),
            hash_to_fp(dst, msg, 4 * ctr + 1),
        );
        let sign_source = hash_to_fp(dst, msg, 4 * ctr + 2);
        let y2 = x.square() * x + Fp2::new(Fp::from_u64(4), Fp::from_u64(4));
        if let Some(mut y) = y2.sqrt() {
            if sign_source.is_odd() != y.c0.is_odd() {
                y = -y;
            }
            let point = G2Affine {
                x,
                y,
                infinity: false,
            }
            .to_projective()
            .clear_cofactor();
            if !point.is_identity() {
                return point;
            }
        }
        ctr += 1;
    }
}

/// Hashes a message to a vector of `n` independent `G1` points — the
/// paper's random oracle `H : {0,1}* → G^n` (with `n = 2` for the §3
/// scheme and `n = 3` for the Appendix F variant).
pub fn hash_to_g1_vector(dst: &[u8], msg: &[u8], n: usize) -> Vec<G1Projective> {
    (0..n)
        .map(|k| {
            let mut tag = dst.to_vec();
            tag.extend_from_slice(b"/coord/");
            tag.extend_from_slice(&(k as u64).to_be_bytes());
            hash_to_g1(&tag, msg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g1_hash_is_deterministic_and_valid() {
        let p = hash_to_g1(b"test-dst", b"hello");
        let q = hash_to_g1(b"test-dst", b"hello");
        assert_eq!(p, q);
        assert!(p.is_on_curve());
        assert!(p.is_torsion_free());
        assert!(!p.is_identity());
    }

    #[test]
    fn g1_hash_separates_messages_and_domains() {
        let p = hash_to_g1(b"dst", b"m1");
        let q = hash_to_g1(b"dst", b"m2");
        let r = hash_to_g1(b"dst2", b"m1");
        assert_ne!(p, q);
        assert_ne!(p, r);
    }

    #[test]
    fn g2_hash_is_valid() {
        let p = hash_to_g2(b"test-dst", b"world");
        assert!(p.is_on_curve());
        assert!(p.is_torsion_free());
        assert!(!p.is_identity());
        assert_eq!(p, hash_to_g2(b"test-dst", b"world"));
        assert_ne!(p, hash_to_g2(b"test-dst", b"world2"));
    }

    #[test]
    fn vector_hash_coordinates_independent() {
        let v = hash_to_g1_vector(b"dst", b"msg", 2);
        assert_eq!(v.len(), 2);
        assert_ne!(v[0], v[1]);
        // Coordinate 0 must not equal the scalar hash of a different slot.
        let w = hash_to_g1_vector(b"dst", b"msg", 3);
        assert_eq!(v[0], w[0]);
        assert_eq!(v[1], w[1]);
    }

    #[test]
    fn hash_to_fr_deterministic() {
        let a = hash_to_fr(b"d", b"x");
        let b = hash_to_fr(b"d", b"x");
        assert_eq!(a, b);
        assert_ne!(a, hash_to_fr(b"d", b"y"));
        assert_ne!(a, hash_to_fr(b"e", b"x"));
    }
}
