//! # borndist-pairing
//!
//! A from-scratch implementation of the BLS12-381 pairing-friendly curve:
//! the cryptographic substrate for the *Born and Raised Distributively*
//! threshold-signature reproduction (Libert–Joye–Yung, PODC 2014).
//!
//! The paper assumes an asymmetric (type-3) bilinear group
//! `e : G × Ĝ → G_T` in which SXDH holds. This crate provides exactly that
//! interface:
//!
//! * [`Fp`], [`Fr`] — Montgomery-form base and scalar fields;
//! * [`Fp2`], [`Fp6`], [`Fp12`] — the tower used by the pairing;
//! * [`G1Projective`]/[`G1Affine`] — the group `G` (signatures, hashes);
//! * [`G2Projective`]/[`G2Affine`] — the group `Ĝ` (keys, commitments);
//! * [`Gt`], [`pairing`], [`multi_pairing`] — the target group and the
//!   optimal-ate pairing engine; [`G2Prepared`]/[`multi_pairing_prepared`]
//!   cache the Miller line coefficients of fixed second arguments;
//!   [`pairing_tate`] retains the Tate reference engine;
//! * [`hash_to_g1`], [`hash_to_g2`], [`hash_to_g1_vector`], [`hash_to_fr`]
//!   — the paper's random oracles;
//! * [`msm`] — multi-scalar multiplication ("Lagrange in the exponent");
//! * [`FixedBaseTable`], [`batch_invert`] — the precomputation and
//!   batching layer under the hot verify path (DESIGN.md §2);
//! * [`parallel`] — the multi-core execution layer: MSM window
//!   accumulation, Miller-loop sharding, and batched normalization all
//!   fan out across [`parallel::Parallelism`]-configured threads with
//!   bit-identical results at every thread count;
//! * [`Sha256`] — the only hash primitive, also written from scratch.
//!
//! ## Example
//!
//! ```rust
//! use borndist_pairing::{pairing, G1Projective, G2Projective, Fr, Gt};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let (a, b) = (Fr::random(&mut rng), Fr::random(&mut rng));
//! let p = (G1Projective::generator() * a).to_affine();
//! let q = (G2Projective::generator() * b).to_affine();
//! // Bilinearity: e(aP, bQ) = e(P, Q)^(ab).
//! assert_eq!(pairing(&p, &q), Gt::generator().pow(&(a * b)));
//! ```
//!
//! ## Security model
//!
//! All arithmetic is **variable-time**. This workspace is a research
//! reproduction executed on public or simulated data; it must not be used
//! to protect real keys against side-channel adversaries.

mod arith;
pub mod codec;
pub mod constants;
mod curve;
mod endo;
mod fp;
mod fp12;
mod fp2;
mod fp6;
mod fr;
mod glv;
mod hash_to_curve;
mod msm;
mod pairing;
pub mod precompute;
mod sha256;
mod traits;

pub use codec::{CodecError, Wire};
pub use curve::{
    Affine, CurveParams, DecodePointError, G1Affine, G1Params, G1Projective, G2Affine, G2Params,
    G2Projective, Projective,
};
pub use endo::{g1_in_subgroup, g2_in_subgroup};
pub use fp::Fp;
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use fr::Fr;
pub use glv::{decompose_g1, decompose_g2, gls_eigenvalue, glv_lambda, Decomposition, SubScalar};
pub use hash_to_curve::{hash_to_fr, hash_to_g1, hash_to_g1_vector, hash_to_g2};
pub use msm::msm;
pub use pairing::{
    final_exponentiation, multi_miller_loop, multi_miller_loop_mixed, multi_pairing,
    multi_pairing_mixed, multi_pairing_prepared, multi_pairing_tate, pairing, pairing_tate,
    pairing_tate_g2, G2Prepared, Gt,
};
pub use precompute::{
    g1_generator_table, g2_generator_prepared, g2_generator_table, mul_g1_generator,
    mul_g2_generator, FixedBaseTable, G1Table, G2Table,
};
pub use sha256::{expand_message, sha256, sha256_tagged, Sha256};
pub use traits::{batch_invert, Field};

/// The multi-core execution layer (re-export of `borndist_parallel`):
/// [`parallel::Parallelism`], [`parallel::with_parallelism`],
/// [`parallel::par_map`] / [`parallel::par_chunks`], and the
/// `BORNDIST_THREADS` environment override.
pub use borndist_parallel as parallel;
