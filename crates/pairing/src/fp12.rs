//! Sextic-over-quadratic extension `Fp12 = Fp6[w]/(w² - v)`.
//!
//! Pairing values live here (before being wrapped in [`crate::Gt`]).
//! The optimal-ate engine uses the full `p`-power Frobenius ladder
//! ([`Fp12::frobenius_p`], [`Fp12::frobenius_p2`], [`Fp12::frobenius_p3`]),
//! Granger–Scott squaring in the cyclotomic subgroup
//! ([`Fp12::cyclotomic_square`]) and the sparse line product
//! ([`Fp12::mul_by_014`]); the retained Tate reference only needs `p²`.

use crate::constants::FROB2_GAMMA;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::{frob1_gamma, Fp6};
use crate::traits::Field;
use rand::RngCore;

/// One square in the degree-4 subtower `Fp4 = Fp2[t]/(t² - v)`
/// (represented by its two `Fp2` coordinates), the kernel of
/// Granger–Scott cyclotomic squaring.
#[inline]
fn fp4_square(a: Fp2, b: Fp2) -> (Fp2, Fp2) {
    let t0 = a.square();
    let t1 = b.square();
    let c0 = t1.mul_by_xi() + t0;
    let c1 = (a + b).square() - t0 - t1;
    (c0, c1)
}

/// An element `c0 + c1·w` of `Fp12`, with `w² = v`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp12 {
    /// Coefficient of `1` (even powers of `w`).
    pub c0: Fp6,
    /// Coefficient of `w` (odd powers of `w`).
    pub c1: Fp6,
}

impl Fp12 {
    /// Constructs an element from its two `Fp6` coefficients.
    pub const fn new(c0: Fp6, c1: Fp6) -> Self {
        Fp12 { c0, c1 }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Fp12::new(Fp6::zero(), Fp6::zero())
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp12::new(Fp6::one(), Fp6::zero())
    }

    /// Embeds an `Fp6` element (the subfield of even `w`-powers).
    pub fn from_fp6(a: Fp6) -> Self {
        Fp12::new(a, Fp6::zero())
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Returns `true` for the multiplicative identity.
    pub fn is_one(&self) -> bool {
        *self == Fp12::one()
    }

    /// The conjugate over `Fp6`, which equals the `p⁶`-power Frobenius.
    /// For elements of the cyclotomic subgroup this is the inverse.
    pub fn conjugate(&self) -> Self {
        Fp12::new(self.c0, -self.c1)
    }

    /// The `p`-power Frobenius endomorphism: apply `Fp6::frobenius_p`
    /// coefficient-wise and scale the odd (`w`) part by
    /// `γ_1 = ξ^((p-1)/6) ∈ Fp2` (from `w^p = γ_1·w`).
    pub fn frobenius_p(&self) -> Self {
        Fp12::new(
            self.c0.frobenius_p(),
            self.c1.frobenius_p().mul_by_fp2(&frob1_gamma(1)),
        )
    }

    /// The `p³`-power Frobenius endomorphism (composition of the `p` and
    /// `p²` maps; used by the hard part of the final exponentiation).
    pub fn frobenius_p3(&self) -> Self {
        self.frobenius_p2().frobenius_p()
    }

    /// The `p²`-power Frobenius endomorphism.
    pub fn frobenius_p2(&self) -> Self {
        // With f = sum a_i w^i (a_i in Fp2), f^(p^2) = sum a_i gamma_i w^i
        // where gamma_i = xi^(i(p^2-1)/6) happens to lie in Fp.
        let g: Vec<Fp> = FROB2_GAMMA
            .iter()
            .map(|l| Fp::from_canonical_limbs(*l))
            .collect();
        Fp12::new(
            Fp6::new(
                self.c0.c0.mul_by_fp(&g[0]),
                self.c0.c1.mul_by_fp(&g[2]),
                self.c0.c2.mul_by_fp(&g[4]),
            ),
            Fp6::new(
                self.c1.c0.mul_by_fp(&g[1]),
                self.c1.c1.mul_by_fp(&g[3]),
                self.c1.c2.mul_by_fp(&g[5]),
            ),
        )
    }

    /// `self * self` using complex squaring over `Fp6`.
    pub fn square(&self) -> Self {
        // (c0 + c1 w)^2 = c0^2 + v c1^2 + 2 c0 c1 w
        let t = self.c0 * self.c1;
        let c0 = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_v()) - t - t.mul_by_v();
        Fp12::new(c0, t.double())
    }

    /// `self + self`.
    pub fn double(&self) -> Self {
        Fp12::new(self.c0.double(), self.c1.double())
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        // 1/(c0 + c1 w) = (c0 - c1 w)/(c0^2 - v c1^2)
        let denom = self.c0.square() - self.c1.square().mul_by_v();
        denom
            .invert()
            .map(|d| Fp12::new(self.c0 * d, -(self.c1 * d)))
    }

    /// Multiplies by a sparse line element with non-zero entries
    /// `a ∈ Fp` (constant), `b ∈ Fp2` (at `v²` of the even part) and
    /// `c ∈ Fp2` (at `v·w` of the odd part) — the shape produced by the
    /// Tate Miller-loop line evaluations (see [`crate::pairing`]).
    pub fn mul_by_line(&self, a: &Fp, b: &Fp2, c: &Fp2) -> Self {
        let line = Fp12::new(
            Fp6::new(Fp2::from_fp(*a), Fp2::zero(), *b),
            Fp6::new(Fp2::zero(), *c, Fp2::zero()),
        );
        *self * line
    }

    /// Multiplies by a sparse element `c0 + c1·v + c4·v·w` — the shape
    /// produced by the optimal-ate line evaluations. Costs 8 `Fp2`
    /// multiplications via the sparse `Fp6` products instead of the
    /// generic 18.
    pub fn mul_by_014(&self, c0: &Fp2, c1: &Fp2, c4: &Fp2) -> Self {
        let aa = self.c0.mul_by_01(c0, c1);
        let bb = self.c1.mul_by_1(c4);
        let o = *c1 + *c4;
        let new_c1 = (self.c1 + self.c0).mul_by_01(c0, &o) - aa - bb;
        Fp12::new(bb.mul_by_v() + aa, new_c1)
    }

    /// Squaring in the cyclotomic subgroup (elements with
    /// `f^(p⁶+1) = 1`, i.e. unitary outputs of the easy part of the
    /// final exponentiation) via Granger–Scott compressed `Fp4` squares:
    /// three `Fp4` squarings instead of a full `Fp12` squaring.
    ///
    /// The result is **only** meaningful for cyclotomic-subgroup inputs;
    /// equivalence with [`Fp12::square`] on that subgroup is enforced by
    /// the `pairing_engine` property suite.
    pub fn cyclotomic_square(&self) -> Self {
        let z0 = self.c0.c0;
        let z4 = self.c0.c1;
        let z3 = self.c0.c2;
        let z2 = self.c1.c0;
        let z1 = self.c1.c1;
        let z5 = self.c1.c2;

        let (t0, t1) = fp4_square(z0, z1);
        let z0 = (t0 - z0).double() + t0;
        let z1 = (t1 + z1).double() + t1;

        let (t0, t1) = fp4_square(z2, z3);
        let (t2, t3) = fp4_square(z4, z5);
        let z4 = (t0 - z4).double() + t0;
        let z5 = (t1 + z5).double() + t1;

        let t0 = t3.mul_by_xi();
        let z2 = (t0 + z2).double() + t0;
        let z3 = (t2 - z3).double() + t2;

        Fp12::new(Fp6::new(z0, z4, z3), Fp6::new(z2, z1, z5))
    }
}

impl core::fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp12({:?} + ({:?})*w)", self.c0, self.c1)
    }
}

impl core::ops::Add for Fp12 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp12::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}
impl core::ops::Sub for Fp12 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp12::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}
impl core::ops::Neg for Fp12 {
    type Output = Self;
    fn neg(self) -> Self {
        Fp12::new(-self.c0, -self.c1)
    }
}
impl core::ops::Mul for Fp12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba over Fp6 with reduction w² = v.
        let t0 = self.c0 * rhs.c0;
        let t1 = self.c1 * rhs.c1;
        let cross = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Fp12::new(t0 + t1.mul_by_v(), cross - t0 - t1)
    }
}
impl core::ops::AddAssign for Fp12 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fp12 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fp12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Fp12::zero()
    }
    fn one() -> Self {
        Fp12::one()
    }
    fn is_zero(&self) -> bool {
        Fp12::is_zero(self)
    }
    fn square(&self) -> Self {
        Fp12::square(self)
    }
    fn double(&self) -> Self {
        Fp12::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Fp12::invert(self)
    }
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Fp12::new(Fp6::random(rng), Fp6::random(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::FP_MODULUS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x1212)
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::zero(), Fp6::one());
        let v = Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero());
        assert_eq!(w.square(), Fp12::from_fp6(v));
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..5 {
            let (a, b, c) = (
                Fp12::random(&mut r),
                Fp12::random(&mut r),
                Fp12::random(&mut r),
            );
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a * a.invert().unwrap(), Fp12::one());
        assert!(Fp12::zero().invert().is_none());
    }

    #[test]
    fn frobenius_p2_is_field_homomorphism() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let b = Fp12::random(&mut r);
        assert_eq!((a * b).frobenius_p2(), a.frobenius_p2() * b.frobenius_p2());
        assert_eq!((a + b).frobenius_p2(), a.frobenius_p2() + b.frobenius_p2());
    }

    #[test]
    fn frobenius_p2_matches_pow() {
        // f^(p^2) via repeated pow: compute f^p^2 as (f^p)^p is unavailable
        // (we don't implement p-power), so check order: applying the map six
        // times must be the identity (p^12-power fixes Fp12).
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut b = a;
        for _ in 0..6 {
            b = b.frobenius_p2();
        }
        assert_eq!(a, b);
        // And the map must fix the prime field.
        let c = Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(Fp::from_u64(42))));
        assert_eq!(c.frobenius_p2(), c);
    }

    #[test]
    fn frobenius_p2_matches_exponentiation_on_fp2_embedding() {
        // For x in Fp2 ⊂ Fp12 (constant coefficient), x^(p^2) = x.
        let mut r = rng();
        let x = Fp2::random(&mut r);
        let emb = Fp12::from_fp6(Fp6::from_fp2(x));
        assert_eq!(emb.frobenius_p2(), emb);
    }

    #[test]
    fn conjugate_is_p6_frobenius() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        // conj = frob2 applied three times
        let b = a.frobenius_p2().frobenius_p2().frobenius_p2();
        assert_eq!(a.conjugate(), b);
    }

    #[test]
    fn frobenius_p_is_field_homomorphism_of_order_twelve() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let b = Fp12::random(&mut r);
        assert_eq!((a * b).frobenius_p(), a.frobenius_p() * b.frobenius_p());
        assert_eq!((a + b).frobenius_p(), a.frobenius_p() + b.frobenius_p());
        let mut c = a;
        for _ in 0..12 {
            c = c.frobenius_p();
        }
        assert_eq!(c, a);
        // Fixes the prime field.
        let e = Fp12::from_fp6(Fp6::from_fp2(Fp2::from_fp(Fp::from_u64(5))));
        assert_eq!(e.frobenius_p(), e);
    }

    #[test]
    fn frobenius_powers_compose() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a.frobenius_p().frobenius_p(), a.frobenius_p2());
        assert_eq!(a.frobenius_p2().frobenius_p(), a.frobenius_p3());
        assert_eq!(
            a.frobenius_p3().frobenius_p3(),
            a.conjugate(),
            "p^6-power is conjugation"
        );
    }

    #[test]
    fn mul_by_014_matches_full_mul() {
        let mut r = rng();
        for _ in 0..5 {
            let f = Fp12::random(&mut r);
            let c0 = Fp2::random(&mut r);
            let c1 = Fp2::random(&mut r);
            let c4 = Fp2::random(&mut r);
            let sparse = Fp12::new(
                Fp6::new(c0, c1, Fp2::zero()),
                Fp6::new(Fp2::zero(), c4, Fp2::zero()),
            );
            assert_eq!(f.mul_by_014(&c0, &c1, &c4), f * sparse);
        }
    }

    #[test]
    fn cyclotomic_square_matches_square_on_unitary_elements() {
        // Map random elements into the cyclotomic subgroup with the easy
        // part of the final exponentiation: f ↦ f^((p^6-1)(p^2+1)).
        let mut r = rng();
        for _ in 0..5 {
            let f = Fp12::random(&mut r);
            let t = f.conjugate() * f.invert().unwrap();
            let u = t.frobenius_p2() * t;
            assert_eq!(u.cyclotomic_square(), u.square());
        }
        assert_eq!(Fp12::one().cyclotomic_square(), Fp12::one());
    }

    #[test]
    fn mul_by_line_matches_full_mul() {
        let mut r = rng();
        let f = Fp12::random(&mut r);
        let a = Fp::random(&mut r);
        let b = Fp2::random(&mut r);
        let c = Fp2::random(&mut r);
        let line = Fp12::new(
            Fp6::new(Fp2::from_fp(a), Fp2::zero(), b),
            Fp6::new(Fp2::zero(), c, Fp2::zero()),
        );
        assert_eq!(f.mul_by_line(&a, &b, &c), f * line);
    }

    #[test]
    fn fp_subfield_killed_by_unitary_exponent() {
        // For c in Fp*, c^(p-1) = 1; sanity for denominator elimination.
        let c = Fp::from_u64(123456);
        let mut exp = FP_MODULUS;
        exp[0] -= 1;
        assert_eq!(c.pow_vartime(&exp), Fp::one());
    }
}
