//! Plain (single-signer) Boneh–Lynn–Shacham signatures — the primitive
//! underlying the Boldyreva baseline, and the shortest-signature
//! single-signer reference point for the size table (E1).

use borndist_pairing::{hash_to_g1, multi_pairing, Fr, G1Affine, G2Affine, G2Projective};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A BLS key pair: `sk = x ∈ Zp`, `pk = ĝ^x ∈ Ĝ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlsKeyPair {
    /// Secret exponent.
    pub sk: Fr,
    /// Public key.
    pub pk: G2Affine,
}

/// A BLS signature `σ = H(M)^x ∈ G`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlsSignature(pub G1Affine);

/// Domain tag for the BLS message hash.
const DST: &[u8] = b"borndist/baseline-bls";

impl BlsKeyPair {
    /// Samples a key pair.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let sk = Fr::random_nonzero(rng);
        BlsKeyPair {
            sk,
            pk: (G2Projective::generator() * sk).to_affine(),
        }
    }

    /// Signs a message: one hash-on-curve plus one exponentiation.
    pub fn sign(&self, msg: &[u8]) -> BlsSignature {
        BlsSignature((hash_to_g1(DST, msg) * self.sk).to_affine())
    }
}

/// Verifies `e(σ, ĝ) = e(H(M), pk)` (as a 2-pairing product).
pub fn bls_verify(pk: &G2Affine, msg: &[u8], sig: &BlsSignature) -> bool {
    let h = hash_to_g1(DST, msg).to_affine();
    let neg_sig = sig.0.neg();
    let g2 = G2Affine::generator();
    multi_pairing(&[(&neg_sig, &g2), (&h, pk)]).is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify() {
        let mut r = StdRng::seed_from_u64(1);
        let kp = BlsKeyPair::generate(&mut r);
        let sig = kp.sign(b"hello");
        assert!(bls_verify(&kp.pk, b"hello", &sig));
        assert!(!bls_verify(&kp.pk, b"world", &sig));
    }

    #[test]
    fn signatures_bound_to_keys() {
        let mut r = StdRng::seed_from_u64(2);
        let kp1 = BlsKeyPair::generate(&mut r);
        let kp2 = BlsKeyPair::generate(&mut r);
        let sig = kp1.sign(b"msg");
        assert!(!bls_verify(&kp2.pk, b"msg", &sig));
    }

    #[test]
    fn deterministic() {
        let mut r = StdRng::seed_from_u64(3);
        let kp = BlsKeyPair::generate(&mut r);
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }
}
