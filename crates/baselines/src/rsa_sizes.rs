//! Size constants for the RSA-based threshold signatures the paper
//! compares against (§3.1). These schemes are not re-implemented —
//! DESIGN.md documents the substitution — but their *sizes* appear in
//! the E1 size table exactly as the paper quotes them.

/// Bits per signature for Shoup's practical threshold RSA (Eurocrypt
/// 2000) at the 128-bit security level, as quoted by the paper (§3.1):
/// a 3072-bit RSA value plus a 4-bit index disambiguation — "3076 bits".
pub const SHOUP_RSA_SIGNATURE_BITS: usize = 3076;

/// Bits per signature for Almansa–Damgård–Nielsen threshold RSA
/// (Eurocrypt 2006), same modulus size (the paper groups it with \[67\]).
pub const ADN_RSA_SIGNATURE_BITS: usize = 3076;

/// RSA modulus bits at the 128-bit level (NIST equivalence).
pub const RSA_MODULUS_BITS: usize = 3072;

/// Bits per *share* for Shoup's scheme: one exponent share modulo
/// `m = p'q'` (modulus-sized).
pub const SHOUP_RSA_SHARE_BITS: usize = 3072;

/// Bits per share for the ADN scheme at `n` players: the own additive
/// share plus `n` polynomial backup shares (the Θ(n) storage the paper
/// criticizes).
pub fn adn_rsa_share_bits(n: usize) -> usize {
    RSA_MODULUS_BITS * (n + 1)
}

/// Paper-quoted §3 signature size on BN254 ("512 bits").
pub const PAPER_BN254_SIGNATURE_BITS: usize = 512;

/// Our measured §3 signature size on BLS12-381 (2 × 48-byte compressed).
pub const BLS12_381_SIGNATURE_BITS: usize = 2 * 48 * 8;

/// Paper-quoted §4 standard-model signature size on BN254 ("2048 bits").
pub const PAPER_BN254_STD_SIGNATURE_BITS: usize = 2048;

/// Our §4 size on BLS12-381: 4 G1 + 2 G2 compressed.
pub const BLS12_381_STD_SIGNATURE_BITS: usize = (4 * 48 + 2 * 96) * 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_paper_claims() {
        // RSA signatures are ~6x larger than the paper's scheme on BN254
        // and ~4x larger than ours on BLS12-381.
        assert_eq!(SHOUP_RSA_SIGNATURE_BITS / PAPER_BN254_SIGNATURE_BITS, 6);
        const { assert!(SHOUP_RSA_SIGNATURE_BITS > 4 * BLS12_381_SIGNATURE_BITS / 8 * 8 / 2) };
        // ADN shares grow linearly; ours are constant.
        assert_eq!(adn_rsa_share_bits(16), 17 * 3072);
        assert!(adn_rsa_share_bits(64) > 64 * PAPER_BN254_SIGNATURE_BITS);
        // Standard model costs 4x the ROM scheme in signature size.
        assert_eq!(
            PAPER_BN254_STD_SIGNATURE_BITS / PAPER_BN254_SIGNATURE_BITS,
            4
        );
        assert_eq!(BLS12_381_STD_SIGNATURE_BITS / BLS12_381_SIGNATURE_BITS, 4);
    }
}
