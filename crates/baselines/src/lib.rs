//! # borndist-baselines
//!
//! The comparison points the paper measures itself against (§1, §3.1):
//!
//! * [`bls`] — plain single-signer BLS (shortest signatures, no
//!   threshold);
//! * [`boldyreva`] — Boldyreva's threshold BLS (PKC 2003): the same
//!   non-interactive flow as the paper's scheme but only **statically**
//!   secure, with half-size shares and signatures;
//! * [`additive`] — a Rabin/Almansa–Damgård–Nielsen-style additive
//!   `(n,n)` sharing with per-piece `(t,n)` backups, instantiated over the
//!   same pairing group: exhibits the **Θ(n) per-player storage** and the
//!   **extra reconstruction round under faults** that the paper
//!   eliminates;
//! * [`rsa_sizes`] — the RSA size constants quoted by the paper for the
//!   E1 size table (RSA schemes are not re-implemented; see DESIGN.md).

pub mod additive;
pub mod bls;
pub mod boldyreva;
pub mod rsa_sizes;

pub use bls::{bls_verify, BlsKeyPair, BlsSignature};
