//! Boldyreva's threshold BLS (PKC 2003) — the closest prior
//! non-interactive threshold signature and the paper's *statically
//! secure* comparison point.
//!
//! Identical interaction pattern to the §3 scheme (hash, partial-sign,
//! Lagrange-combine) but: single generator, single polynomial, 1-element
//! signatures, and — crucially — only *static* security: its simulation
//! strategy must decide the corrupted set before the public key exists,
//! and the standard Feldman-based DKG it relies on (Gennaro et al.)
//! forces extra communication to fix the key distribution. The paper's
//! scheme pays 2× in signature size and share size for adaptive security
//! with Pedersen's cheaper DKG.

use borndist_pairing::{hash_to_g1, multi_pairing, Fr, G1Affine, G2Affine, G2Projective};
use borndist_shamir::{
    lagrange_coefficients_at_zero, FeldmanCommitment, Polynomial, ThresholdParams,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Domain tag for the message hash.
const DST: &[u8] = b"borndist/boldyreva";

/// The threshold-BLS public key `pk = ĝ^x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblsPublicKey(pub G2Affine);

/// A share `x_i = P(i)` (one scalar — half the paper's share size,
/// the price being static-only security).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblsKeyShare {
    /// Server index.
    pub index: u32,
    /// `P(i)`.
    pub value: Fr,
}

/// Verification key `vk_i = ĝ^{x_i}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblsVerificationKey {
    /// Server index.
    pub index: u32,
    /// `ĝ^{x_i}`.
    pub v: G2Affine,
}

/// A partial signature `σ_i = H(M)^{x_i}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblsPartialSignature {
    /// Producing server.
    pub index: u32,
    /// The share signature.
    pub sig: G1Affine,
}

/// A combined signature `σ = H(M)^x ∈ G` (one element).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TblsSignature(pub G1Affine);

/// Key material bundle.
#[derive(Clone, Debug)]
pub struct TblsKeyMaterial {
    /// Threshold parameters.
    pub params: ThresholdParams,
    /// Public key.
    pub public_key: TblsPublicKey,
    /// Shares (simulation only).
    pub shares: BTreeMap<u32, TblsKeyShare>,
    /// Verification keys.
    pub verification_keys: BTreeMap<u32, TblsVerificationKey>,
}

/// Dealer key generation (Boldyreva assumes a trusted dealer or a
/// Gennaro-et-al. DKG; we provide the dealer and an honest-path
/// Feldman-sum DKG below).
pub fn dealer_keygen<R: RngCore + ?Sized>(params: ThresholdParams, rng: &mut R) -> TblsKeyMaterial {
    let poly = Polynomial::random(params.t, rng);
    assemble(params, &[poly])
}

/// Honest-path distributed keygen: every player deals a Feldman-verified
/// sharing and shares are summed (the optimistic path of the
/// Joint-Feldman DKG — the very protocol whose key bias forced Gennaro
/// et al. to add rounds; recorded here for the E5 comparison).
pub fn honest_dist_keygen<R: RngCore + ?Sized>(
    params: ThresholdParams,
    rng: &mut R,
) -> TblsKeyMaterial {
    let polys: Vec<Polynomial> = (0..params.n)
        .map(|_| Polynomial::random(params.t, rng))
        .collect();
    // All players verify all shares against the broadcast commitments.
    let g = G2Projective::generator();
    for p in &polys {
        let com = FeldmanCommitment::commit(p, &g);
        for i in 1..=params.n as u32 {
            assert!(com.verify_share(i, p.evaluate_at_index(i), &g));
        }
    }
    assemble(params, &polys)
}

fn assemble(params: ThresholdParams, polys: &[Polynomial]) -> TblsKeyMaterial {
    let joint = polys
        .iter()
        .cloned()
        .reduce(|a, b| a.add(&b))
        .expect("at least one dealer");
    let g = G2Projective::generator();
    let public_key = TblsPublicKey(g.mul(&joint.constant_term()).to_affine());
    let mut shares = BTreeMap::new();
    let mut verification_keys = BTreeMap::new();
    for i in 1..=params.n as u32 {
        let v = joint.evaluate_at_index(i);
        shares.insert(i, TblsKeyShare { index: i, value: v });
        verification_keys.insert(
            i,
            TblsVerificationKey {
                index: i,
                v: g.mul(&v).to_affine(),
            },
        );
    }
    TblsKeyMaterial {
        params,
        public_key,
        shares,
        verification_keys,
    }
}

/// `Share-Sign`: one hash-on-curve and one exponentiation.
pub fn share_sign(share: &TblsKeyShare, msg: &[u8]) -> TblsPartialSignature {
    TblsPartialSignature {
        index: share.index,
        sig: (hash_to_g1(DST, msg) * share.value).to_affine(),
    }
}

/// `Share-Verify`: a 2-pairing product.
pub fn share_verify(vk: &TblsVerificationKey, msg: &[u8], psig: &TblsPartialSignature) -> bool {
    if vk.index != psig.index {
        return false;
    }
    let h = hash_to_g1(DST, msg).to_affine();
    let neg = psig.sig.neg();
    let g2 = G2Affine::generator();
    multi_pairing(&[(&neg, &g2), (&h, &vk.v)]).is_identity()
}

/// `Combine`: Lagrange interpolation in the exponent.
///
/// # Errors
///
/// Returns `None` when fewer than `t+1` shares are given or indices are
/// invalid.
pub fn combine(
    params: &ThresholdParams,
    partials: &[TblsPartialSignature],
) -> Option<TblsSignature> {
    if partials.len() < params.reconstruction_size() {
        return None;
    }
    let indices: Vec<u32> = partials.iter().map(|p| p.index).collect();
    let coeffs = lagrange_coefficients_at_zero(&indices).ok()?;
    let bases: Vec<G1Affine> = partials.iter().map(|p| p.sig).collect();
    Some(TblsSignature(
        borndist_pairing::msm(&bases, &coeffs).to_affine(),
    ))
}

/// `Verify`: the BLS equation.
pub fn verify(pk: &TblsPublicKey, msg: &[u8], sig: &TblsSignature) -> bool {
    let h = hash_to_g1(DST, msg).to_affine();
    let neg = sig.0.neg();
    let g2 = G2Affine::generator();
    multi_pairing(&[(&neg, &g2), (&h, &pk.0)]).is_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> TblsKeyMaterial {
        let mut r = StdRng::seed_from_u64(0xb01d);
        dealer_keygen(ThresholdParams::new(t, n).unwrap(), &mut r)
    }

    #[test]
    fn sign_combine_verify() {
        let km = setup(2, 5);
        let msg = b"boldyreva";
        let partials: Vec<TblsPartialSignature> = (1..=3u32)
            .map(|i| share_sign(&km.shares[&i], msg))
            .collect();
        for p in &partials {
            assert!(share_verify(&km.verification_keys[&p.index], msg, p));
        }
        let sig = combine(&km.params, &partials).unwrap();
        assert!(verify(&km.public_key, msg, &sig));
        assert!(!verify(&km.public_key, b"other", &sig));
    }

    #[test]
    fn quorum_independence() {
        let km = setup(1, 5);
        let msg = b"unique";
        let all: BTreeMap<u32, TblsPartialSignature> = (1..=5u32)
            .map(|i| (i, share_sign(&km.shares[&i], msg)))
            .collect();
        let s1 = combine(&km.params, &[all[&1], all[&2]]).unwrap();
        let s2 = combine(&km.params, &[all[&3], all[&5]]).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn distributed_keygen() {
        let mut r = StdRng::seed_from_u64(0xfe1d);
        let km = honest_dist_keygen(ThresholdParams::new(1, 4).unwrap(), &mut r);
        let msg = b"joint feldman";
        let partials: Vec<TblsPartialSignature> = [1u32, 3]
            .iter()
            .map(|i| share_sign(&km.shares[i], msg))
            .collect();
        let sig = combine(&km.params, &partials).unwrap();
        assert!(verify(&km.public_key, msg, &sig));
    }

    #[test]
    fn below_threshold_fails() {
        let km = setup(2, 5);
        let partials: Vec<TblsPartialSignature> = (1..=2u32)
            .map(|i| share_sign(&km.shares[&i], b"x"))
            .collect();
        assert!(combine(&km.params, &partials).is_none());
    }

    #[test]
    fn corrupted_partial_detected() {
        let km = setup(1, 4);
        let msg = b"m";
        let mut p = share_sign(&km.shares[&2], msg);
        p.sig = p.sig.neg();
        assert!(!share_verify(&km.verification_keys[&2], msg, &p));
    }
}
