//! A Rabin / Almansa–Damgård–Nielsen-style **additive-reshare** threshold
//! scheme — the interaction/storage shape the paper improves on.
//!
//! The secret key is split additively, `x = Σ_i d_i`, and each additive
//! piece `d_i` is *backed up* with a `(t, n)` Feldman-verified Shamir
//! sharing whose share `d_i(j)` is stored by every other player `j`.
//! Consequences the paper calls out (§1):
//!
//! * **Θ(n) storage per player** — each player keeps its own `d_i` plus
//!   one backup share of every other player's piece (experiment E4);
//! * **signing needs a second round on any fault** — if player `i` fails
//!   to contribute `H(M)^{d_i}`, the others must run a reconstruction
//!   round, interpolating `H(M)^{d_i}` from backup shares in the exponent
//!   (experiment E3). The paper's scheme has neither problem.
//!
//! The paper's actual references (Rabin \[63\], Almansa et al. \[4\]) are RSA-based; we instantiate
//! the identical protocol skeleton over our pairing group so that every
//! scheme in the benchmark suite shares a substrate (see DESIGN.md,
//! "Substitutions").

use borndist_pairing::{hash_to_g1, msm, multi_pairing, Fr, G1Affine, G2Affine, G2Projective};
use borndist_shamir::{
    lagrange_coefficients_at_zero, FeldmanCommitment, Polynomial, ThresholdParams,
};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Domain tag for the message hash.
const DST: &[u8] = b"borndist/additive";

/// Public key `pk = ĝ^x` with `x = Σ d_i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddPublicKey(pub G2Affine);

/// The full per-player state — note the `backups` map growing with `n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddPlayerState {
    /// This player's index.
    pub index: u32,
    /// Own additive piece `d_index`.
    pub own_piece: Fr,
    /// Backup shares `d_j(index)` for every player `j` — Θ(n) scalars.
    pub backups: BTreeMap<u32, Fr>,
}

impl AddPlayerState {
    /// Bytes of secret storage this player carries: its own piece plus
    /// one backup share per player (32-byte scalars). Linear in `n` — the
    /// measured half of experiment E4.
    pub fn storage_bytes(&self) -> usize {
        32 + 32 * self.backups.len()
    }
}

/// A round-1 contribution `H(M)^{d_i}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddContribution {
    /// Contributing player.
    pub index: u32,
    /// `H(M)^{d_i}`.
    pub value: G1Affine,
}

/// A round-2 reconstruction share `H(M)^{d_i(j)}` for a missing player
/// `i`, produced by backup holder `j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackupContribution {
    /// The missing player whose piece is being reconstructed.
    pub missing: u32,
    /// The backup holder.
    pub holder: u32,
    /// `H(M)^{d_missing(holder)}`.
    pub value: G1Affine,
}

/// Key material: public key, per-player states, public verification data.
#[derive(Clone, Debug)]
pub struct AddKeyMaterial {
    /// Threshold parameters.
    pub params: ThresholdParams,
    /// Public key.
    pub public_key: AddPublicKey,
    /// Per-player state (simulation only).
    pub players: BTreeMap<u32, AddPlayerState>,
    /// Feldman commitments to each player's backup polynomial (public).
    pub commitments: BTreeMap<u32, FeldmanCommitment<borndist_pairing::G2Params>>,
    /// Public `ĝ^{d_i}` per player (to verify round-1 contributions).
    pub piece_keys: BTreeMap<u32, G2Affine>,
}

/// Full signature `σ = H(M)^x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddSignature(pub G1Affine);

/// Key generation: each player picks `d_i` and backs it up with a
/// `(t, n)` Feldman-verified sharing distributed to all players.
pub fn keygen<R: RngCore + ?Sized>(params: ThresholdParams, rng: &mut R) -> AddKeyMaterial {
    let g = G2Projective::generator();
    let mut players: BTreeMap<u32, AddPlayerState> = (1..=params.n as u32)
        .map(|i| {
            (
                i,
                AddPlayerState {
                    index: i,
                    own_piece: Fr::zero(),
                    backups: BTreeMap::new(),
                },
            )
        })
        .collect();
    let mut commitments = BTreeMap::new();
    let mut piece_keys = BTreeMap::new();
    let mut secret = Fr::zero();
    for i in 1..=params.n as u32 {
        let d_i = Fr::random(rng);
        secret += d_i;
        let poly = Polynomial::random_with_constant(d_i, params.t, rng);
        let com = FeldmanCommitment::commit(&poly, &g);
        for j in 1..=params.n as u32 {
            let share = poly.evaluate_at_index(j);
            debug_assert!(com.verify_share(j, share, &g));
            players.get_mut(&j).unwrap().backups.insert(i, share);
        }
        players.get_mut(&i).unwrap().own_piece = d_i;
        piece_keys.insert(i, g.mul(&d_i).to_affine());
        commitments.insert(i, com);
    }
    AddKeyMaterial {
        params,
        public_key: AddPublicKey(g.mul(&secret).to_affine()),
        players,
        commitments,
        piece_keys,
    }
}

/// Round 1: an available player contributes `H(M)^{d_i}`.
pub fn contribute(state: &AddPlayerState, msg: &[u8]) -> AddContribution {
    AddContribution {
        index: state.index,
        value: (hash_to_g1(DST, msg) * state.own_piece).to_affine(),
    }
}

/// Verifies a round-1 contribution against the public `ĝ^{d_i}`.
pub fn contribution_valid(km: &AddKeyMaterial, msg: &[u8], c: &AddContribution) -> bool {
    let Some(pk_i) = km.piece_keys.get(&c.index) else {
        return false;
    };
    let h = hash_to_g1(DST, msg).to_affine();
    let neg = c.value.neg();
    let g2 = G2Affine::generator();
    multi_pairing(&[(&neg, &g2), (&h, pk_i)]).is_identity()
}

/// Round 2 (only on faults): backup holder `j` emits `H(M)^{d_i(j)}` for
/// the missing player `i`.
pub fn backup_contribute(
    state: &AddPlayerState,
    missing: u32,
    msg: &[u8],
) -> Option<BackupContribution> {
    let share = state.backups.get(&missing)?;
    Some(BackupContribution {
        missing,
        holder: state.index,
        value: (hash_to_g1(DST, msg) * *share).to_affine(),
    })
}

/// Reconstructs a missing player's contribution from `t+1` backup
/// contributions by Lagrange interpolation in the exponent.
///
/// Returns `None` on insufficient or inconsistent input.
pub fn reconstruct_missing(
    params: &ThresholdParams,
    backups: &[BackupContribution],
) -> Option<AddContribution> {
    if backups.len() < params.reconstruction_size() {
        return None;
    }
    let missing = backups[0].missing;
    if backups.iter().any(|b| b.missing != missing) {
        return None;
    }
    let indices: Vec<u32> = backups.iter().map(|b| b.holder).collect();
    let coeffs = lagrange_coefficients_at_zero(&indices).ok()?;
    let bases: Vec<G1Affine> = backups.iter().map(|b| b.value).collect();
    Some(AddContribution {
        index: missing,
        value: msm(&bases, &coeffs).to_affine(),
    })
}

/// Combines a complete set of `n` contributions into the signature
/// `σ = Π H^{d_i} = H^x`.
///
/// Returns `None` unless exactly one contribution per player is present.
pub fn combine(km: &AddKeyMaterial, contributions: &[AddContribution]) -> Option<AddSignature> {
    let mut seen: BTreeMap<u32, G1Affine> = BTreeMap::new();
    for c in contributions {
        if seen.insert(c.index, c.value).is_some() {
            return None;
        }
    }
    if seen.len() != km.params.n {
        return None;
    }
    let ones = vec![Fr::one(); seen.len()];
    let bases: Vec<G1Affine> = seen.values().copied().collect();
    Some(AddSignature(msm(&bases, &ones).to_affine()))
}

/// Verifies the combined signature.
pub fn verify(pk: &AddPublicKey, msg: &[u8], sig: &AddSignature) -> bool {
    let h = hash_to_g1(DST, msg).to_affine();
    let neg = sig.0.neg();
    let g2 = G2Affine::generator();
    multi_pairing(&[(&neg, &g2), (&h, &pk.0)]).is_identity()
}

/// Number of signing rounds given the set of absent players: the paper's
/// E3 comparison in one function. Zero absences: 1 round; any absence:
/// 2 rounds (reconstruction).
pub fn signing_rounds(absent: usize) -> usize {
    if absent == 0 {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(t: usize, n: usize) -> AddKeyMaterial {
        let mut r = StdRng::seed_from_u64(0xadd);
        keygen(ThresholdParams::new(t, n).unwrap(), &mut r)
    }

    #[test]
    fn all_present_single_round() {
        let km = setup(1, 4);
        let msg = b"everyone showed up";
        let contributions: Vec<AddContribution> =
            km.players.values().map(|p| contribute(p, msg)).collect();
        for c in &contributions {
            assert!(contribution_valid(&km, msg, c));
        }
        let sig = combine(&km, &contributions).unwrap();
        assert!(verify(&km.public_key, msg, &sig));
        assert_eq!(signing_rounds(0), 1);
    }

    #[test]
    fn missing_player_needs_reconstruction_round() {
        let km = setup(1, 4);
        let msg = b"player 3 crashed";
        // Round 1: players 1, 2, 4 contribute.
        let mut contributions: Vec<AddContribution> = [1u32, 2, 4]
            .iter()
            .map(|i| contribute(&km.players[i], msg))
            .collect();
        assert!(combine(&km, &contributions).is_none(), "incomplete set");
        // Round 2: reconstruct player 3's contribution from backups.
        let backups: Vec<BackupContribution> = [1u32, 2]
            .iter()
            .map(|j| backup_contribute(&km.players[j], 3, msg).unwrap())
            .collect();
        let rec = reconstruct_missing(&km.params, &backups).unwrap();
        assert!(contribution_valid(&km, msg, &rec));
        contributions.push(rec);
        let sig = combine(&km, &contributions).unwrap();
        assert!(verify(&km.public_key, msg, &sig));
        assert_eq!(signing_rounds(1), 2);
    }

    #[test]
    fn reconstruction_needs_threshold_backups() {
        let km = setup(2, 5);
        let msg = b"m";
        let backups: Vec<BackupContribution> = [1u32, 2]
            .iter()
            .map(|j| backup_contribute(&km.players[j], 4, msg).unwrap())
            .collect();
        assert!(reconstruct_missing(&km.params, &backups).is_none());
    }

    #[test]
    fn storage_grows_linearly() {
        for n in [4usize, 8, 16] {
            let km = setup(1, n);
            let bytes = km.players[&1].storage_bytes();
            assert_eq!(bytes, 32 + 32 * n);
        }
    }

    #[test]
    fn bad_contribution_detected() {
        let km = setup(1, 4);
        let msg = b"m";
        let mut c = contribute(&km.players[&2], msg);
        c.value = c.value.neg();
        assert!(!contribution_valid(&km, msg, &c));
    }

    #[test]
    fn duplicate_contributions_rejected() {
        let km = setup(1, 4);
        let msg = b"dup";
        let mut contributions: Vec<AddContribution> =
            km.players.values().map(|p| contribute(p, msg)).collect();
        contributions.push(contributions[0]);
        assert!(combine(&km, &contributions).is_none());
    }
}
