//! Cross-dealer batched VSS share verification.
//!
//! In an `n`-player DKG every receiver checks one share bundle per
//! dealer, and each check is its own `(t+1)`-point multi-scalar
//! multiplication — `n` small MSMs per player, `O(n²·t)` group work per
//! run. This module folds all of a receiver's per-dealer checks into
//! **one** MSM with random weights: for Pedersen checks
//! `ĝ_z^{a_j} ĝ_r^{b_j} = Π_ℓ Ŵ_{jℓ}^{x_j^ℓ}` and weights `ρ_j`,
//!
//! ```text
//!   ĝ_z^{Σ_j ρ_j a_j} · ĝ_r^{Σ_j ρ_j b_j} · Π_j Π_ℓ Ŵ_{jℓ}^{-ρ_j x_j^ℓ} = 1
//! ```
//!
//! holds iff every individual check holds, except with probability
//! `≈ |checks| / r` over the weights (the standard small-exponent
//! batching argument; `r` is the group order, so the slack is
//! negligible). One big MSM is both asymptotically and practically
//! cheaper than `n` small ones: Pippenger's bucket width grows with the
//! point count, and the `dkg_scaling` release gate records the measured
//! ratio at committee scale.
//!
//! The verdict functions ([`pedersen_check_verdicts`],
//! [`feldman_check_verdicts`]) preserve *exact* per-check accept/reject
//! semantics: a passing batch accepts everything, a failing batch
//! bisects, and every leaf is decided by the plain per-dealer check —
//! so a forged share hidden among hundreds of honest dealers is still
//! pinpointed, at `O(log n)` extra batch evaluations.

use crate::feldman::FeldmanCommitment;
use crate::pedersen::{PedersenBases, PedersenCommitment, PedersenShare};
use borndist_pairing::{msm, Affine, CurveParams, Fr, Projective};
use rand::RngCore;

/// One Pedersen share check: does `share` open `commitment` at
/// `share.index`? (§3.1 equation (1), one dealer's column.)
#[derive(Clone, Copy, Debug)]
pub struct PedersenCheck<'a> {
    /// The dealer's broadcast commitment vector.
    pub commitment: &'a PedersenCommitment,
    /// The share pair to check against it.
    pub share: PedersenShare,
}

/// One Feldman share check: does `g^{share}` equal the commitment
/// evaluated at `index`?
#[derive(Clone, Copy, Debug)]
pub struct FeldmanCheck<'a, C: CurveParams> {
    /// The dealer's broadcast commitment vector.
    pub commitment: &'a FeldmanCommitment<C>,
    /// Recipient index (1-based).
    pub index: u32,
    /// The share value to check.
    pub share: Fr,
}

/// Evaluates the folded Pedersen equation over `checks[idxs]`.
fn pedersen_subset_holds(
    bases: &PedersenBases,
    checks: &[PedersenCheck<'_>],
    idxs: &[usize],
    rng: &mut dyn RngCore,
) -> bool {
    let width: usize = idxs.iter().map(|&i| checks[i].commitment.len()).sum();
    let mut points = Vec::with_capacity(width + 2);
    let mut scalars = Vec::with_capacity(width + 2);
    let mut s_z = Fr::zero();
    let mut s_r = Fr::zero();
    for &i in idxs {
        let check = &checks[i];
        let rho = Fr::random_nonzero(rng);
        s_z += rho * check.share.a;
        s_r += rho * check.share.b;
        let x = Fr::from_u64(check.share.index as u64);
        // Running scalar ρ_j · x_j^ℓ, negated so the whole equation
        // folds into one identity test.
        let mut pow = rho;
        for w in check.commitment.elements() {
            points.push(*w);
            scalars.push(Fr::zero() - pow);
            pow *= x;
        }
    }
    points.push(bases.g_z);
    scalars.push(s_z);
    points.push(bases.g_r);
    scalars.push(s_r);
    msm(&points, &scalars).is_identity()
}

/// Evaluates the folded Feldman equation over `checks[idxs]`.
fn feldman_subset_holds<C: CurveParams>(
    g: &Projective<C>,
    checks: &[FeldmanCheck<'_, C>],
    idxs: &[usize],
    rng: &mut dyn RngCore,
) -> bool {
    let width: usize = idxs.iter().map(|&i| checks[i].commitment.len()).sum();
    let mut points: Vec<Affine<C>> = Vec::with_capacity(width + 1);
    let mut scalars = Vec::with_capacity(width + 1);
    let mut s = Fr::zero();
    for &i in idxs {
        let check = &checks[i];
        let rho = Fr::random_nonzero(rng);
        s += rho * check.share;
        let x = Fr::from_u64(check.index as u64);
        let mut pow = rho;
        for c in check.commitment.elements() {
            points.push(*c);
            scalars.push(Fr::zero() - pow);
            pow *= x;
        }
    }
    points.push(g.to_affine());
    scalars.push(s);
    msm(&points, &scalars).is_identity()
}

/// `true` iff (whp over the weights) every Pedersen check holds — the
/// one-MSM fast path for the all-honest case.
pub fn pedersen_batch_verify(
    bases: &PedersenBases,
    checks: &[PedersenCheck<'_>],
    rng: &mut dyn RngCore,
) -> bool {
    if checks.is_empty() {
        return true;
    }
    let all: Vec<usize> = (0..checks.len()).collect();
    pedersen_subset_holds(bases, checks, &all, rng)
}

/// `true` iff (whp over the weights) every Feldman check holds.
pub fn feldman_batch_verify<C: CurveParams>(
    g: &Projective<C>,
    checks: &[FeldmanCheck<'_, C>],
    rng: &mut dyn RngCore,
) -> bool {
    if checks.is_empty() {
        return true;
    }
    let all: Vec<usize> = (0..checks.len()).collect();
    feldman_subset_holds(g, checks, &all, rng)
}

/// Per-check verdicts via batch-then-bisect: identical accept/reject
/// behavior to calling [`PedersenCommitment::verify_share`] per check
/// (a failing subset bisects down to plain per-check leaves; only a
/// `≈ |checks|/r` weight collision could mask a forgery).
pub fn pedersen_check_verdicts(
    bases: &PedersenBases,
    checks: &[PedersenCheck<'_>],
    rng: &mut dyn RngCore,
) -> Vec<bool> {
    let mut verdicts = vec![true; checks.len()];
    let mut stack: Vec<Vec<usize>> = vec![(0..checks.len()).collect()];
    while let Some(idxs) = stack.pop() {
        match idxs.len() {
            0 => {}
            1 => {
                let check = &checks[idxs[0]];
                verdicts[idxs[0]] = check.commitment.verify_share(bases, &check.share);
            }
            _ => {
                if !pedersen_subset_holds(bases, checks, &idxs, rng) {
                    let mid = idxs.len() / 2;
                    stack.push(idxs[mid..].to_vec());
                    stack.push(idxs[..mid].to_vec());
                }
            }
        }
    }
    verdicts
}

/// Per-check verdicts via batch-then-bisect — the Feldman analogue of
/// [`pedersen_check_verdicts`], with the same exactness contract
/// relative to [`FeldmanCommitment::verify_share`].
pub fn feldman_check_verdicts<C: CurveParams>(
    g: &Projective<C>,
    checks: &[FeldmanCheck<'_, C>],
    rng: &mut dyn RngCore,
) -> Vec<bool> {
    let mut verdicts = vec![true; checks.len()];
    let mut stack: Vec<Vec<usize>> = vec![(0..checks.len()).collect()];
    while let Some(idxs) = stack.pop() {
        match idxs.len() {
            0 => {}
            1 => {
                let check = &checks[idxs[0]];
                verdicts[idxs[0]] = check.commitment.verify_share(check.index, check.share, g);
            }
            _ => {
                if !feldman_subset_holds(g, checks, &idxs, rng) {
                    let mid = idxs.len() / 2;
                    stack.push(idxs[mid..].to_vec());
                    stack.push(idxs[..mid].to_vec());
                }
            }
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pedersen::PedersenSharing;
    use crate::polynomial::Polynomial;
    use borndist_pairing::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xba7c)
    }

    fn bases(r: &mut StdRng) -> PedersenBases {
        PedersenBases {
            g_z: G2Projective::random(r).to_affine(),
            g_r: G2Projective::random(r).to_affine(),
        }
    }

    #[test]
    fn honest_batch_accepts() {
        let mut r = rng();
        let b = bases(&mut r);
        let sharings: Vec<PedersenSharing> = (0..9)
            .map(|_| PedersenSharing::deal_random(&b, 3, &mut r))
            .collect();
        let checks: Vec<PedersenCheck<'_>> = sharings
            .iter()
            .map(|s| PedersenCheck {
                commitment: &s.commitment,
                share: s.share_for(4),
            })
            .collect();
        assert!(pedersen_batch_verify(&b, &checks, &mut r));
        assert!(pedersen_check_verdicts(&b, &checks, &mut r)
            .iter()
            .all(|&v| v));
    }

    #[test]
    fn single_forgery_located() {
        let mut r = rng();
        let b = bases(&mut r);
        let sharings: Vec<PedersenSharing> = (0..13)
            .map(|_| PedersenSharing::deal_random(&b, 2, &mut r))
            .collect();
        let mut checks: Vec<PedersenCheck<'_>> = sharings
            .iter()
            .map(|s| PedersenCheck {
                commitment: &s.commitment,
                share: s.share_for(2),
            })
            .collect();
        checks[7].share.a += Fr::one();
        assert!(!pedersen_batch_verify(&b, &checks, &mut r));
        let verdicts = pedersen_check_verdicts(&b, &checks, &mut r);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, i != 7, "verdict {} wrong", i);
        }
    }

    #[test]
    fn mixed_indices_batch() {
        // Complaint answers check shares for *other* indices; the fold
        // must track a per-check evaluation point.
        let mut r = rng();
        let b = bases(&mut r);
        let sharings: Vec<PedersenSharing> = (0..6)
            .map(|_| PedersenSharing::deal_random(&b, 2, &mut r))
            .collect();
        let checks: Vec<PedersenCheck<'_>> = sharings
            .iter()
            .enumerate()
            .map(|(i, s)| PedersenCheck {
                commitment: &s.commitment,
                share: s.share_for(i as u32 + 1),
            })
            .collect();
        assert!(pedersen_batch_verify(&b, &checks, &mut r));
    }

    #[test]
    fn empty_batch_accepts() {
        let mut r = rng();
        let b = bases(&mut r);
        assert!(pedersen_batch_verify(&b, &[], &mut r));
        assert!(pedersen_check_verdicts(&b, &[], &mut r).is_empty());
        let g = G1Projective::generator();
        assert!(feldman_batch_verify::<borndist_pairing::G1Params>(
            &g,
            &[],
            &mut r
        ));
    }

    #[test]
    fn feldman_batch_and_bisect() {
        let mut r = rng();
        let g = G1Projective::generator();
        let polys: Vec<Polynomial> = (0..10).map(|_| Polynomial::random(3, &mut r)).collect();
        let commitments: Vec<FeldmanCommitment<borndist_pairing::G1Params>> = polys
            .iter()
            .map(|p| FeldmanCommitment::commit(p, &g))
            .collect();
        let mut checks: Vec<FeldmanCheck<'_, _>> = polys
            .iter()
            .zip(commitments.iter())
            .map(|(p, c)| FeldmanCheck {
                commitment: c,
                index: 5,
                share: p.evaluate_at_index(5),
            })
            .collect();
        assert!(feldman_batch_verify(&g, &checks, &mut r));
        checks[3].share += Fr::one();
        checks[8].share -= Fr::one();
        assert!(!feldman_batch_verify(&g, &checks, &mut r));
        let verdicts = feldman_check_verdicts(&g, &checks, &mut r);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, i != 3 && i != 8, "verdict {} wrong", i);
        }
    }
}
