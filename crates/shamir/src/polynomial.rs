//! Polynomials over the scalar field `Fr`.
//!
//! Every secret in the paper is shared by evaluating a degree-`t`
//! polynomial at the player indices `1..=n` (index `0` holds the secret).

use borndist_pairing::Fr;
use rand::RngCore;

/// A polynomial `c₀ + c₁·X + … + c_t·X^t` over `Fr`, stored by
/// coefficients in ascending degree order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Fr>,
}

impl Polynomial {
    /// Builds a polynomial from ascending-degree coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty (the zero polynomial is `[0]`).
    pub fn from_coefficients(coeffs: Vec<Fr>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of exactly the given degree
    /// bound (i.e. with `degree + 1` random coefficients).
    pub fn random<R: RngCore + ?Sized>(degree: usize, rng: &mut R) -> Self {
        Polynomial {
            coeffs: (0..=degree).map(|_| Fr::random(rng)).collect(),
        }
    }

    /// Samples a random degree-`degree` polynomial with a prescribed
    /// constant term — the "share this secret" constructor.
    pub fn random_with_constant<R: RngCore + ?Sized>(
        secret: Fr,
        degree: usize,
        rng: &mut R,
    ) -> Self {
        let mut coeffs = vec![secret];
        coeffs.extend((0..degree).map(|_| Fr::random(rng)));
        Polynomial { coeffs }
    }

    /// Samples a random degree-`degree` polynomial with constant term zero.
    /// Used for proactive refresh (§3.3: re-sharing the secret `0`).
    pub fn random_zero_constant<R: RngCore + ?Sized>(degree: usize, rng: &mut R) -> Self {
        Self::random_with_constant(Fr::zero(), degree, rng)
    }

    /// Samples a random degree-`degree` polynomial that *evaluates to zero*
    /// at `x = at` — the masking polynomials of Herzberg-style share
    /// recovery.
    pub fn random_vanishing_at<R: RngCore + ?Sized>(at: Fr, degree: usize, rng: &mut R) -> Self {
        // Sample all but the constant coefficient, then solve for c0 so
        // that P(at) = 0.
        let mut coeffs = vec![Fr::zero()];
        coeffs.extend((0..degree).map(|_| Fr::random(rng)));
        let mut acc = Fr::zero();
        let mut x_pow = Fr::one();
        for c in coeffs.iter() {
            acc += *c * x_pow;
            x_pow *= at;
        }
        coeffs[0] = -acc;
        Polynomial { coeffs }
    }

    /// The degree bound (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients in ascending degree order.
    pub fn coefficients(&self) -> &[Fr] {
        &self.coeffs
    }

    /// The constant term `P(0)` — the shared secret.
    pub fn constant_term(&self) -> Fr {
        self.coeffs[0]
    }

    /// Horner evaluation at an arbitrary point.
    pub fn evaluate(&self, x: Fr) -> Fr {
        let mut acc = Fr::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Evaluation at a (1-based) player index.
    pub fn evaluate_at_index(&self, index: u32) -> Fr {
        self.evaluate(Fr::from_u64(index as u64))
    }

    /// Pointwise sum of two polynomials (degrees may differ).
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = core::cmp::max(self.coeffs.len(), other.coeffs.len());
        let mut coeffs = vec![Fr::zero(); n];
        for (i, c) in self.coeffs.iter().enumerate() {
            coeffs[i] += *c;
        }
        for (i, c) in other.coeffs.iter().enumerate() {
            coeffs[i] += *c;
        }
        Polynomial { coeffs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x901)
    }

    #[test]
    fn evaluate_known_polynomial() {
        // P(X) = 3 + 2X + X^2
        let p =
            Polynomial::from_coefficients(vec![Fr::from_u64(3), Fr::from_u64(2), Fr::from_u64(1)]);
        assert_eq!(p.evaluate(Fr::from_u64(0)), Fr::from_u64(3));
        assert_eq!(p.evaluate(Fr::from_u64(1)), Fr::from_u64(6));
        assert_eq!(p.evaluate(Fr::from_u64(2)), Fr::from_u64(11));
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn constant_term_is_secret() {
        let mut r = rng();
        let secret = Fr::random(&mut r);
        let p = Polynomial::random_with_constant(secret, 5, &mut r);
        assert_eq!(p.constant_term(), secret);
        assert_eq!(p.evaluate(Fr::zero()), secret);
        assert_eq!(p.degree(), 5);
    }

    #[test]
    fn zero_constant_polynomial() {
        let mut r = rng();
        let p = Polynomial::random_zero_constant(3, &mut r);
        assert_eq!(p.evaluate(Fr::zero()), Fr::zero());
        // Non-trivial away from zero (with overwhelming probability).
        assert_ne!(p.evaluate(Fr::one()), Fr::zero());
    }

    #[test]
    fn vanishing_polynomial_vanishes() {
        let mut r = rng();
        let at = Fr::from_u64(7);
        let p = Polynomial::random_vanishing_at(at, 4, &mut r);
        assert_eq!(p.evaluate(at), Fr::zero());
        assert_eq!(p.degree(), 4);
        assert_ne!(p.evaluate(Fr::from_u64(8)), Fr::zero());
    }

    #[test]
    fn addition_is_pointwise() {
        let mut r = rng();
        let p = Polynomial::random(3, &mut r);
        let q = Polynomial::random(5, &mut r);
        let s = p.add(&q);
        let x = Fr::random(&mut r);
        assert_eq!(s.evaluate(x), p.evaluate(x) + q.evaluate(x));
        assert_eq!(s.degree(), 5);
    }

    #[test]
    fn index_evaluation_matches() {
        let mut r = rng();
        let p = Polynomial::random(2, &mut r);
        assert_eq!(p.evaluate_at_index(9), p.evaluate(Fr::from_u64(9)));
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_coefficients_panic() {
        let _ = Polynomial::from_coefficients(vec![]);
    }
}
