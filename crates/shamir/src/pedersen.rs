//! Two-generator Pedersen verifiable secret sharing — the exact VSS used
//! by the paper's `Dist-Keygen` (§3.1, equation (1)).
//!
//! A dealer shares a *pair* `(a, b)` with polynomials `A[X], B[X]` of
//! degree `t` and broadcasts, for each coefficient index `ℓ`,
//!
//! ```text
//!     Ŵ_ℓ = ĝ_z^{a_ℓ} · ĝ_r^{b_ℓ}   ∈ Ĝ
//! ```
//!
//! Receiver `i` checks its share pair `(A(i), B(i))` against
//! `ĝ_z^{A(i)} ĝ_r^{B(i)} = Π_ℓ Ŵ_ℓ^{i^ℓ}`. Unlike Feldman VSS, the
//! commitment is perfectly hiding in `a` (it is a Pedersen commitment with
//! bases `ĝ_z, ĝ_r`), which is what lets the scheme tolerate Pedersen-DKG
//! key bias while remaining adaptively secure.

use crate::polynomial::Polynomial;
use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{msm, Fr, G2Affine, G2Projective};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The pair of public generators `(ĝ_z, ĝ_r)` of `Ĝ`.
///
/// In the paper these come from the common parameters; no party may know
/// `log_{ĝ_z}(ĝ_r)`, so they are derived by hashing (see the core crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PedersenBases {
    /// First generator `ĝ_z`.
    pub g_z: G2Affine,
    /// Second generator `ĝ_r`.
    pub g_r: G2Affine,
}

impl PedersenBases {
    /// Commits to a scalar pair: `ĝ_z^a · ĝ_r^b`.
    pub fn commit(&self, a: &Fr, b: &Fr) -> G2Projective {
        msm(&[self.g_z, self.g_r], &[*a, *b])
    }
}

/// A dealer's sharing of one secret pair `(a, b)`: the two polynomials
/// plus the broadcast commitment vector.
#[derive(Clone, Debug)]
pub struct PedersenSharing {
    /// Polynomial `A[X]` with `A(0) = a`.
    pub poly_a: Polynomial,
    /// Polynomial `B[X]` with `B(0) = b`.
    pub poly_b: Polynomial,
    /// Broadcast commitments `Ŵ_ℓ`.
    pub commitment: PedersenCommitment,
}

/// The broadcast part of a Pedersen sharing: `Ŵ_ℓ = ĝ_z^{a_ℓ} ĝ_r^{b_ℓ}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PedersenCommitment {
    w: Vec<G2Affine>,
}

/// A share pair `(A(i), B(i))` sent privately to player `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PedersenShare {
    /// Recipient index (1-based).
    pub index: u32,
    /// `A(index)`.
    pub a: Fr,
    /// `B(index)`.
    pub b: Fr,
}

impl PedersenSharing {
    /// Deals a fresh random pair `(a, b)` with threshold `t`.
    pub fn deal_random<R: RngCore + ?Sized>(bases: &PedersenBases, t: usize, rng: &mut R) -> Self {
        let poly_a = Polynomial::random(t, rng);
        let poly_b = Polynomial::random(t, rng);
        Self::from_polynomials(bases, poly_a, poly_b)
    }

    /// Deals the pair `(0, 0)` — a *refresh* sharing (§3.3): the constant
    /// commitment is forced to the identity, which receivers must check.
    pub fn deal_zero<R: RngCore + ?Sized>(bases: &PedersenBases, t: usize, rng: &mut R) -> Self {
        let poly_a = Polynomial::random_zero_constant(t, rng);
        let poly_b = Polynomial::random_zero_constant(t, rng);
        Self::from_polynomials(bases, poly_a, poly_b)
    }

    /// Deals specific secrets `(a, b)`.
    pub fn deal_pair<R: RngCore + ?Sized>(
        bases: &PedersenBases,
        a: Fr,
        b: Fr,
        t: usize,
        rng: &mut R,
    ) -> Self {
        let poly_a = Polynomial::random_with_constant(a, t, rng);
        let poly_b = Polynomial::random_with_constant(b, t, rng);
        Self::from_polynomials(bases, poly_a, poly_b)
    }

    /// Builds the sharing from explicit polynomials (degrees must match).
    pub fn from_polynomials(bases: &PedersenBases, poly_a: Polynomial, poly_b: Polynomial) -> Self {
        assert_eq!(
            poly_a.degree(),
            poly_b.degree(),
            "A and B polynomials must have equal degree"
        );
        let points: Vec<G2Projective> = poly_a
            .coefficients()
            .iter()
            .zip(poly_b.coefficients().iter())
            .map(|(a, b)| bases.commit(a, b))
            .collect();
        PedersenSharing {
            poly_a,
            poly_b,
            commitment: PedersenCommitment {
                w: G2Projective::batch_to_affine(&points),
            },
        }
    }

    /// The private share for player `index`.
    pub fn share_for(&self, index: u32) -> PedersenShare {
        PedersenShare {
            index,
            a: self.poly_a.evaluate_at_index(index),
            b: self.poly_b.evaluate_at_index(index),
        }
    }

    /// The dealer's own additive contribution `(a, b) = (A(0), B(0))`.
    pub fn secret_pair(&self) -> (Fr, Fr) {
        (self.poly_a.constant_term(), self.poly_b.constant_term())
    }
}

impl PedersenCommitment {
    /// Constructs from raw broadcast elements (adversarial dealers may
    /// send anything; verification happens per share).
    pub fn from_elements(w: Vec<G2Affine>) -> Self {
        PedersenCommitment { w }
    }

    /// Number of committed coefficients (`t + 1`).
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` if the broadcast vector is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// The raw broadcast elements `Ŵ_ℓ` (coefficient order) — what the
    /// cross-dealer batch verifier folds into its single MSM.
    pub fn elements(&self) -> &[G2Affine] {
        &self.w
    }

    /// The commitment to the constant coefficients,
    /// `Ŵ_0 = ĝ_z^{a} ĝ_r^{b}` — the dealer's public-key contribution.
    pub fn constant_commitment(&self) -> G2Affine {
        self.w[0]
    }

    /// Evaluates the commitment in the exponent at player index `i`:
    /// `Π_ℓ Ŵ_ℓ^{i^ℓ} = ĝ_z^{A(i)} ĝ_r^{B(i)}`.
    pub fn evaluate_at_index(&self, index: u32) -> G2Projective {
        let x = Fr::from_u64(index as u64);
        let mut scalars = Vec::with_capacity(self.w.len());
        let mut pow = Fr::one();
        for _ in 0..self.w.len() {
            scalars.push(pow);
            pow *= x;
        }
        msm(&self.w, &scalars)
    }

    /// The paper's check (1): does `(A(i), B(i))` open this commitment at
    /// index `i`?
    pub fn verify_share(&self, bases: &PedersenBases, share: &PedersenShare) -> bool {
        bases.commit(&share.a, &share.b) == self.evaluate_at_index(share.index)
    }

    /// Componentwise product, committing to the coefficient-wise sums of
    /// the underlying polynomial pairs. Used to assemble verification keys
    /// and refreshed commitments.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "mismatched commitment degrees");
        let sums: Vec<G2Projective> = self
            .w
            .iter()
            .zip(other.w.iter())
            .map(|(a, b)| a.to_projective().add_affine(b))
            .collect();
        PedersenCommitment {
            w: G2Projective::batch_to_affine(&sums),
        }
    }

    /// `true` iff the constant commitment is the identity — the required
    /// shape of a refresh sharing (secret pair `(0,0)`).
    pub fn is_zero_sharing(&self) -> bool {
        self.constant_commitment().is_identity()
    }
}

impl Wire for PedersenCommitment {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.w.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(PedersenCommitment {
            w: Vec::decode(input)?,
        })
    }
}

impl Wire for PedersenShare {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.index.encode_to(out);
        self.a.encode_to(out);
        self.b.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(PedersenShare {
            index: u32::decode(input)?,
            a: Fr::decode(input)?,
            b: Fr::decode(input)?,
        })
    }
}

impl Wire for PedersenBases {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.g_z.encode_to(out);
        self.g_r.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(PedersenBases {
            g_z: G2Affine::decode(input)?,
            g_r: G2Affine::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbed0)
    }

    fn bases(r: &mut StdRng) -> PedersenBases {
        PedersenBases {
            g_z: G2Projective::random(r).to_affine(),
            g_r: G2Projective::random(r).to_affine(),
        }
    }

    #[test]
    fn honest_shares_verify() {
        let mut r = rng();
        let b = bases(&mut r);
        let sharing = PedersenSharing::deal_random(&b, 3, &mut r);
        for i in 1u32..=7 {
            let share = sharing.share_for(i);
            assert!(sharing.commitment.verify_share(&b, &share));
        }
    }

    #[test]
    fn tampered_shares_rejected() {
        let mut r = rng();
        let b = bases(&mut r);
        let sharing = PedersenSharing::deal_random(&b, 2, &mut r);
        let mut share = sharing.share_for(4);
        share.a += Fr::one();
        assert!(!sharing.commitment.verify_share(&b, &share));
        let mut share2 = sharing.share_for(4);
        share2.b += Fr::one();
        assert!(!sharing.commitment.verify_share(&b, &share2));
        // Correct values at the wrong index also fail.
        let mut share3 = sharing.share_for(4);
        share3.index = 5;
        assert!(!sharing.commitment.verify_share(&b, &share3));
    }

    #[test]
    fn zero_sharing_detected() {
        let mut r = rng();
        let b = bases(&mut r);
        let zero = PedersenSharing::deal_zero(&b, 3, &mut r);
        assert!(zero.commitment.is_zero_sharing());
        assert_eq!(zero.secret_pair(), (Fr::zero(), Fr::zero()));
        // Shares of the zero sharing still verify.
        let share = zero.share_for(2);
        assert!(zero.commitment.verify_share(&b, &share));
        // A random sharing is (whp) not a zero sharing.
        let nz = PedersenSharing::deal_random(&b, 3, &mut r);
        assert!(!nz.commitment.is_zero_sharing());
    }

    #[test]
    fn combine_commits_to_sums() {
        let mut r = rng();
        let b = bases(&mut r);
        let s1 = PedersenSharing::deal_random(&b, 2, &mut r);
        let s2 = PedersenSharing::deal_random(&b, 2, &mut r);
        let combined = s1.commitment.combine(&s2.commitment);
        for i in 1u32..=5 {
            let sh1 = s1.share_for(i);
            let sh2 = s2.share_for(i);
            let sum_share = PedersenShare {
                index: i,
                a: sh1.a + sh2.a,
                b: sh1.b + sh2.b,
            };
            assert!(combined.verify_share(&b, &sum_share));
        }
    }

    #[test]
    fn specific_pair_commitment_shape() {
        let mut r = rng();
        let b = bases(&mut r);
        let (a_sec, b_sec) = (Fr::random(&mut r), Fr::random(&mut r));
        let sharing = PedersenSharing::deal_pair(&b, a_sec, b_sec, 2, &mut r);
        assert_eq!(sharing.secret_pair(), (a_sec, b_sec));
        assert_eq!(
            sharing.commitment.constant_commitment().to_projective(),
            b.commit(&a_sec, &b_sec)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let b = bases(&mut r);
        let sharing = PedersenSharing::deal_random(&b, 2, &mut r);
        let enc = serde_json::to_string(&sharing.commitment).unwrap();
        let dec: PedersenCommitment = serde_json::from_str(&enc).unwrap();
        assert_eq!(dec, sharing.commitment);
        let share = sharing.share_for(1);
        let enc2 = serde_json::to_string(&share).unwrap();
        let dec2: PedersenShare = serde_json::from_str(&enc2).unwrap();
        assert_eq!(dec2, share);
    }

    #[test]
    #[should_panic(expected = "equal degree")]
    fn mismatched_degrees_panic() {
        let mut r = rng();
        let b = bases(&mut r);
        let pa = Polynomial::random(2, &mut r);
        let pb = Polynomial::random(3, &mut r);
        let _ = PedersenSharing::from_polynomials(&b, pa, pb);
    }
}
