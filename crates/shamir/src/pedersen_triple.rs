//! Four-generator Pedersen VSS for *triples* — the commitment scheme of
//! the Appendix F (DLIN-based) construction.
//!
//! A dealer shares a triple `(a, b, c)` with polynomials `A, B, C` and
//! broadcasts, per coefficient `ℓ`, the two commitments
//!
//! ```text
//!     V̂_ℓ = ĝ_z^{a_ℓ} ĝ_r^{b_ℓ}        Ŵ_ℓ = ĥ_z^{a_ℓ} ĥ_u^{c_ℓ}
//! ```
//!
//! Receiver `i` checks its share triple against both equations (12).

use crate::polynomial::Polynomial;
use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{msm, Fr, G2Affine, G2Projective};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The four public generators `(ĝ_z, ĝ_r, ĥ_z, ĥ_u)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleBases {
    /// `ĝ_z`.
    pub g_z: G2Affine,
    /// `ĝ_r`.
    pub g_r: G2Affine,
    /// `ĥ_z`.
    pub h_z: G2Affine,
    /// `ĥ_u`.
    pub h_u: G2Affine,
}

/// A dealer's sharing of one triple.
#[derive(Clone, Debug)]
pub struct TripleSharing {
    /// `A[X]` with `A(0) = a`.
    pub poly_a: Polynomial,
    /// `B[X]` with `B(0) = b`.
    pub poly_b: Polynomial,
    /// `C[X]` with `C(0) = c`.
    pub poly_c: Polynomial,
    /// The broadcast commitments.
    pub commitment: TripleCommitment,
}

/// Broadcast commitments `{(V̂_ℓ, Ŵ_ℓ)}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleCommitment {
    v: Vec<G2Affine>,
    w: Vec<G2Affine>,
}

/// A private share triple `(A(i), B(i), C(i))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleShare {
    /// Recipient index.
    pub index: u32,
    /// `A(index)`.
    pub a: Fr,
    /// `B(index)`.
    pub b: Fr,
    /// `C(index)`.
    pub c: Fr,
}

impl TripleSharing {
    /// Deals a fresh random triple with threshold `t`.
    pub fn deal_random<R: RngCore + ?Sized>(bases: &TripleBases, t: usize, rng: &mut R) -> Self {
        Self::from_polynomials(
            bases,
            Polynomial::random(t, rng),
            Polynomial::random(t, rng),
            Polynomial::random(t, rng),
        )
    }

    /// Deals the zero triple (proactive refresh).
    pub fn deal_zero<R: RngCore + ?Sized>(bases: &TripleBases, t: usize, rng: &mut R) -> Self {
        Self::from_polynomials(
            bases,
            Polynomial::random_zero_constant(t, rng),
            Polynomial::random_zero_constant(t, rng),
            Polynomial::random_zero_constant(t, rng),
        )
    }

    /// Builds a sharing from explicit polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial degrees differ.
    pub fn from_polynomials(
        bases: &TripleBases,
        poly_a: Polynomial,
        poly_b: Polynomial,
        poly_c: Polynomial,
    ) -> Self {
        assert!(
            poly_a.degree() == poly_b.degree() && poly_b.degree() == poly_c.degree(),
            "polynomial degrees must match"
        );
        let v: Vec<G2Projective> = poly_a
            .coefficients()
            .iter()
            .zip(poly_b.coefficients().iter())
            .map(|(a, b)| msm(&[bases.g_z, bases.g_r], &[*a, *b]))
            .collect();
        let w: Vec<G2Projective> = poly_a
            .coefficients()
            .iter()
            .zip(poly_c.coefficients().iter())
            .map(|(a, c)| msm(&[bases.h_z, bases.h_u], &[*a, *c]))
            .collect();
        TripleSharing {
            commitment: TripleCommitment {
                v: G2Projective::batch_to_affine(&v),
                w: G2Projective::batch_to_affine(&w),
            },
            poly_a,
            poly_b,
            poly_c,
        }
    }

    /// The share triple for player `index`.
    pub fn share_for(&self, index: u32) -> TripleShare {
        TripleShare {
            index,
            a: self.poly_a.evaluate_at_index(index),
            b: self.poly_b.evaluate_at_index(index),
            c: self.poly_c.evaluate_at_index(index),
        }
    }

    /// The dealer's additive secret `(a, b, c)`.
    pub fn secret_triple(&self) -> (Fr, Fr, Fr) {
        (
            self.poly_a.constant_term(),
            self.poly_b.constant_term(),
            self.poly_c.constant_term(),
        )
    }
}

impl TripleCommitment {
    /// Number of committed coefficients (`t + 1`).
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The constant commitments `(V̂_0, Ŵ_0)` — the dealer's public key
    /// contribution pair.
    pub fn constant_commitment(&self) -> (G2Affine, G2Affine) {
        (self.v[0], self.w[0])
    }

    /// Evaluates both commitment vectors in the exponent at `index`.
    pub fn evaluate_at_index(&self, index: u32) -> (G2Projective, G2Projective) {
        let x = Fr::from_u64(index as u64);
        let mut scalars = Vec::with_capacity(self.v.len());
        let mut pow = Fr::one();
        for _ in 0..self.v.len() {
            scalars.push(pow);
            pow *= x;
        }
        (msm(&self.v, &scalars), msm(&self.w, &scalars))
    }

    /// The Appendix F check (12) on a share triple.
    pub fn verify_share(&self, bases: &TripleBases, share: &TripleShare) -> bool {
        let (ev, ew) = self.evaluate_at_index(share.index);
        msm(&[bases.g_z, bases.g_r], &[share.a, share.b]) == ev
            && msm(&[bases.h_z, bases.h_u], &[share.a, share.c]) == ew
    }

    /// Componentwise product (commits to summed polynomials).
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "mismatched commitment degrees");
        let comb = |a: &[G2Affine], b: &[G2Affine]| {
            let pts: Vec<G2Projective> = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| x.to_projective().add_affine(y))
                .collect();
            G2Projective::batch_to_affine(&pts)
        };
        TripleCommitment {
            v: comb(&self.v, &other.v),
            w: comb(&self.w, &other.w),
        }
    }
}

impl Wire for TripleCommitment {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.v.encode_to(out);
        self.w.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TripleCommitment {
            v: Vec::decode(input)?,
            w: Vec::decode(input)?,
        })
    }
}

impl Wire for TripleShare {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.index.encode_to(out);
        self.a.encode_to(out);
        self.b.encode_to(out);
        self.c.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TripleShare {
            index: u32::decode(input)?,
            a: Fr::decode(input)?,
            b: Fr::decode(input)?,
            c: Fr::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x3b1)
    }

    fn bases(r: &mut StdRng) -> TripleBases {
        TripleBases {
            g_z: G2Projective::random(r).to_affine(),
            g_r: G2Projective::random(r).to_affine(),
            h_z: G2Projective::random(r).to_affine(),
            h_u: G2Projective::random(r).to_affine(),
        }
    }

    #[test]
    fn honest_triples_verify() {
        let mut r = rng();
        let b = bases(&mut r);
        let s = TripleSharing::deal_random(&b, 2, &mut r);
        for i in 1u32..=5 {
            assert!(s.commitment.verify_share(&b, &s.share_for(i)));
        }
    }

    #[test]
    fn each_component_checked() {
        let mut r = rng();
        let b = bases(&mut r);
        let s = TripleSharing::deal_random(&b, 2, &mut r);
        for field in 0..3 {
            let mut share = s.share_for(2);
            match field {
                0 => share.a += Fr::one(),
                1 => share.b += Fr::one(),
                _ => share.c += Fr::one(),
            }
            assert!(!s.commitment.verify_share(&b, &share), "field {}", field);
        }
    }

    #[test]
    fn combine_commits_to_sums() {
        let mut r = rng();
        let b = bases(&mut r);
        let s1 = TripleSharing::deal_random(&b, 2, &mut r);
        let s2 = TripleSharing::deal_random(&b, 2, &mut r);
        let combined = s1.commitment.combine(&s2.commitment);
        for i in 1u32..=4 {
            let (x, y) = (s1.share_for(i), s2.share_for(i));
            let sum = TripleShare {
                index: i,
                a: x.a + y.a,
                b: x.b + y.b,
                c: x.c + y.c,
            };
            assert!(combined.verify_share(&b, &sum));
        }
    }

    #[test]
    fn zero_sharing_constant_is_identity() {
        let mut r = rng();
        let b = bases(&mut r);
        let s = TripleSharing::deal_zero(&b, 2, &mut r);
        let (v0, w0) = s.commitment.constant_commitment();
        assert!(v0.is_identity());
        assert!(w0.is_identity());
    }
}
