//! Feldman verifiable secret sharing (FOCS '87).
//!
//! The dealer broadcasts `C_ℓ = g^{c_ℓ}` for every polynomial coefficient;
//! each party checks its share against `g^{P(i)} = Π C_ℓ^{i^ℓ}`. Used by
//! the static-secure Boldyreva baseline (single-generator DKG); the
//! paper's own protocol uses the two-generator Pedersen variant in
//! [`crate::pedersen`].

use crate::polynomial::Polynomial;
use borndist_pairing::codec::{CodecError, Wire};
use borndist_pairing::{msm, Affine, CurveParams, Fr, Projective};
use serde::{Deserialize, Serialize};

/// A broadcast Feldman commitment to a sharing polynomial: one group
/// element per coefficient.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct FeldmanCommitment<C: CurveParams> {
    commitments: Vec<Affine<C>>,
}

impl<C: CurveParams> FeldmanCommitment<C> {
    /// Commits to `poly` under the generator `g`.
    pub fn commit(poly: &Polynomial, g: &Projective<C>) -> Self {
        let points: Vec<Projective<C>> = poly.coefficients().iter().map(|c| g.mul(c)).collect();
        FeldmanCommitment {
            commitments: Projective::batch_to_affine(&points),
        }
    }

    /// Number of committed coefficients (`t + 1`).
    pub fn len(&self) -> usize {
        self.commitments.len()
    }

    /// `true` if the commitment is empty (never for honest dealers).
    pub fn is_empty(&self) -> bool {
        self.commitments.is_empty()
    }

    /// The raw broadcast elements `C_ℓ` (coefficient order) — what the
    /// cross-dealer batch verifier folds into its single MSM.
    pub fn elements(&self) -> &[Affine<C>] {
        &self.commitments
    }

    /// The commitment to the constant term, `g^{P(0)}` — the public key
    /// contribution in Feldman-based DKGs.
    pub fn constant_commitment(&self) -> Affine<C> {
        self.commitments[0]
    }

    /// Evaluates the commitment "in the exponent" at index `i`:
    /// `g^{P(i)} = Π C_ℓ^{i^ℓ}`.
    pub fn evaluate_at_index(&self, index: u32) -> Projective<C> {
        let x = Fr::from_u64(index as u64);
        let mut scalars = Vec::with_capacity(self.commitments.len());
        let mut pow = Fr::one();
        for _ in 0..self.commitments.len() {
            scalars.push(pow);
            pow *= x;
        }
        msm(&self.commitments, &scalars)
    }

    /// Verifies that `share` is the correct evaluation for `index`.
    pub fn verify_share(&self, index: u32, share: Fr, g: &Projective<C>) -> bool {
        g.mul(&share) == self.evaluate_at_index(index)
    }

    /// Componentwise product with another commitment (commits to the sum
    /// of the underlying polynomials). Degrees must match.
    pub fn combine(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "mismatched commitment degrees");
        let sums: Vec<Projective<C>> = self
            .commitments
            .iter()
            .zip(other.commitments.iter())
            .map(|(a, b)| a.to_projective().add_affine(b))
            .collect();
        FeldmanCommitment {
            commitments: Projective::batch_to_affine(&sums),
        }
    }
}

impl<C: CurveParams> Wire for FeldmanCommitment<C> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.commitments.encode_to(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(FeldmanCommitment {
            commitments: Vec::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borndist_pairing::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfe1d)
    }

    #[test]
    fn valid_shares_verify() {
        let mut r = rng();
        let poly = Polynomial::random(3, &mut r);
        let g = G2Projective::generator();
        let com = FeldmanCommitment::commit(&poly, &g);
        for i in 1u32..=7 {
            assert!(com.verify_share(i, poly.evaluate_at_index(i), &g));
        }
    }

    #[test]
    fn wrong_shares_rejected() {
        let mut r = rng();
        let poly = Polynomial::random(2, &mut r);
        let g = G1Projective::generator();
        let com = FeldmanCommitment::commit(&poly, &g);
        let bad = poly.evaluate_at_index(3) + Fr::one();
        assert!(!com.verify_share(3, bad, &g));
        // Right value, wrong index.
        assert!(!com.verify_share(4, poly.evaluate_at_index(3), &g));
    }

    #[test]
    fn constant_commitment_is_public_key_contribution() {
        let mut r = rng();
        let poly = Polynomial::random(2, &mut r);
        let g = G2Projective::generator();
        let com = FeldmanCommitment::commit(&poly, &g);
        assert_eq!(
            com.constant_commitment().to_projective(),
            g.mul(&poly.constant_term())
        );
    }

    #[test]
    fn combine_commits_to_sum() {
        let mut r = rng();
        let p = Polynomial::random(2, &mut r);
        let q = Polynomial::random(2, &mut r);
        let g = G1Projective::generator();
        let cp = FeldmanCommitment::commit(&p, &g);
        let cq = FeldmanCommitment::commit(&q, &g);
        let sum_com = cp.combine(&cq);
        let sum_poly = p.add(&q);
        for i in 1u32..=5 {
            assert!(sum_com.verify_share(i, sum_poly.evaluate_at_index(i), &g));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let poly = Polynomial::random(2, &mut r);
        let g = G2Projective::generator();
        let com = FeldmanCommitment::commit(&poly, &g);
        let encoded = serde_json::to_string(&com).unwrap();
        let decoded: FeldmanCommitment<borndist_pairing::G2Params> =
            serde_json::from_str(&encoded).unwrap();
        assert_eq!(decoded, com);
    }
}
