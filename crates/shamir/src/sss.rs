//! Plain Shamir secret sharing.

use crate::lagrange::{interpolate_at, LagrangeError};
use crate::polynomial::Polynomial;
use borndist_pairing::Fr;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One party's share of a secret: the polynomial evaluation at its index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// The 1-based party index.
    pub index: u32,
    /// The share value `P(index)`.
    pub value: Fr,
}

/// Parameters of a `(t, n)` sharing: any `t+1` shares reconstruct, any
/// `t` reveal nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdParams {
    /// Corruption threshold `t`.
    pub t: usize,
    /// Number of parties `n`.
    pub n: usize,
}

impl ThresholdParams {
    /// Validates and constructs `(t, n)` parameters.
    ///
    /// # Errors
    ///
    /// Rejects `n == 0`, `t + 1 > n` (unreconstructable) and `n` too large
    /// to index with `u32`.
    pub fn new(t: usize, n: usize) -> Result<Self, InvalidParams> {
        if n == 0 || t + 1 > n || n > u32::MAX as usize {
            return Err(InvalidParams { t, n });
        }
        Ok(ThresholdParams { t, n })
    }

    /// Number of shares needed to reconstruct (`t + 1`).
    pub fn reconstruction_size(&self) -> usize {
        self.t + 1
    }

    /// `true` when `n ≥ 2t + 1`, the honest-majority condition the
    /// paper's DKG requires.
    pub fn honest_majority(&self) -> bool {
        self.n > 2 * self.t
    }
}

/// Error for malformed `(t, n)` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidParams {
    /// Offered threshold.
    pub t: usize,
    /// Offered party count.
    pub n: usize,
}

impl core::fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid threshold parameters t={}, n={}", self.t, self.n)
    }
}
impl std::error::Error for InvalidParams {}

/// Splits `secret` into `n` shares with threshold `t`, returning the
/// shares and the sharing polynomial (callers that need verifiability
/// commit to the polynomial; plain users may drop it).
pub fn share<R: RngCore + ?Sized>(
    secret: Fr,
    params: ThresholdParams,
    rng: &mut R,
) -> (Vec<Share>, Polynomial) {
    let poly = Polynomial::random_with_constant(secret, params.t, rng);
    let shares = (1..=params.n as u32)
        .map(|i| Share {
            index: i,
            value: poly.evaluate_at_index(i),
        })
        .collect();
    (shares, poly)
}

/// Reconstructs the secret from at least `t+1` shares.
///
/// # Errors
///
/// Propagates index validation failures (duplicates, zero, empty set).
/// With fewer than `t+1` *valid* shares the result is well-defined but
/// (whp) not the original secret — threshold enforcement is the caller's
/// responsibility, as in the paper's `Combine`.
pub fn reconstruct(shares: &[Share]) -> Result<Fr, LagrangeError> {
    let pts: Vec<(u32, Fr)> = shares.iter().map(|s| (s.index, s.value)).collect();
    interpolate_at(&pts, Fr::zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x55)
    }

    #[test]
    fn share_then_reconstruct() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 5).unwrap();
        let secret = Fr::random(&mut r);
        let (shares, _) = share(secret, params, &mut r);
        assert_eq!(shares.len(), 5);
        assert_eq!(reconstruct(&shares[..3]).unwrap(), secret);
        assert_eq!(reconstruct(&shares[2..]).unwrap(), secret);
        assert_eq!(reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn noncontiguous_subsets() {
        let mut r = rng();
        let params = ThresholdParams::new(3, 9).unwrap();
        let secret = Fr::random(&mut r);
        let (shares, _) = share(secret, params, &mut r);
        let subset = [&shares[0], &shares[3], &shares[5], &shares[8]];
        let owned: Vec<Share> = subset.iter().map(|s| **s).collect();
        assert_eq!(reconstruct(&owned).unwrap(), secret);
    }

    #[test]
    fn too_few_shares_yield_garbage() {
        let mut r = rng();
        let params = ThresholdParams::new(3, 7).unwrap();
        let secret = Fr::random(&mut r);
        let (shares, _) = share(secret, params, &mut r);
        assert_ne!(reconstruct(&shares[..3]).unwrap(), secret);
    }

    #[test]
    fn param_validation() {
        assert!(ThresholdParams::new(0, 1).is_ok());
        assert!(ThresholdParams::new(1, 1).is_err());
        assert!(ThresholdParams::new(0, 0).is_err());
        assert!(ThresholdParams::new(2, 5).unwrap().honest_majority());
        assert!(!ThresholdParams::new(3, 5).unwrap().honest_majority());
        assert_eq!(ThresholdParams::new(2, 5).unwrap().reconstruction_size(), 3);
    }

    #[test]
    fn shares_are_polynomial_evaluations() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 4).unwrap();
        let secret = Fr::random(&mut r);
        let (shares, poly) = share(secret, params, &mut r);
        for s in &shares {
            assert_eq!(s.value, poly.evaluate_at_index(s.index));
        }
        assert_eq!(poly.constant_term(), secret);
    }
}
