//! Lagrange interpolation — plain and "in the exponent".
//!
//! The `Combine` algorithm of every threshold scheme in this workspace is
//! Lagrange interpolation at `x = 0` performed in a group: given partial
//! signatures `σ_i = g^{P(i)}` for `i ∈ S`, the full signature is
//! `Π σ_i^{Δ_{i,S}(0)} = g^{P(0)}`.

use borndist_pairing::{msm, Affine, CurveParams, Fr, Projective};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Errors arising from interpolation inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagrangeError {
    /// An index appears twice in the evaluation set.
    DuplicateIndex(u32),
    /// The index `0` is reserved for the secret and cannot be a share index.
    ZeroIndex,
    /// The input set is empty.
    Empty,
}

impl core::fmt::Display for LagrangeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LagrangeError::DuplicateIndex(i) => write!(f, "duplicate share index {}", i),
            LagrangeError::ZeroIndex => f.write_str("share index 0 is reserved for the secret"),
            LagrangeError::Empty => f.write_str("empty interpolation set"),
        }
    }
}

impl std::error::Error for LagrangeError {}

/// Computes the Lagrange coefficients `Δ_{i,S}(x)` for every `i ∈ S`,
/// in the order of `indices`.
///
/// `Δ_{i,S}(x) = Π_{j ∈ S, j≠i} (x - j)/(i - j)`.
pub fn lagrange_coefficients_at(indices: &[u32], x: Fr) -> Result<Vec<Fr>, LagrangeError> {
    if indices.is_empty() {
        return Err(LagrangeError::Empty);
    }
    let mut seen = std::collections::HashSet::new();
    for &i in indices {
        if i == 0 {
            return Err(LagrangeError::ZeroIndex);
        }
        if !seen.insert(i) {
            return Err(LagrangeError::DuplicateIndex(i));
        }
    }
    let xs: Vec<Fr> = indices.iter().map(|&i| Fr::from_u64(i as u64)).collect();
    let mut out = Vec::with_capacity(indices.len());
    for (a, &xi) in xs.iter().enumerate() {
        let mut num = Fr::one();
        let mut den = Fr::one();
        for (b, &xj) in xs.iter().enumerate() {
            if a == b {
                continue;
            }
            num *= x - xj;
            den *= xi - xj;
        }
        let den_inv = den
            .invert()
            .expect("distinct non-zero indices give non-zero denominator");
        out.push(num * den_inv);
    }
    Ok(out)
}

/// Lagrange coefficients at `x = 0` (secret recovery position).
pub fn lagrange_coefficients_at_zero(indices: &[u32]) -> Result<Vec<Fr>, LagrangeError> {
    lagrange_coefficients_at(indices, Fr::zero())
}

/// Memoizes [`lagrange_coefficients_at_zero`] per *ordered* index set.
///
/// At committee scale, `Combine` recomputes the same `O(k²)`-field-op
/// coefficient vector for every signature as soon as the qualified
/// signer set stabilizes; the cache makes every repeat lookup a hash
/// probe. Keys are the exact index sequence (coefficients are returned
/// in input order, so order is part of the identity). Bounded: at
/// [`LagrangeCache::MAX_SETS`] distinct sets the cache resets — a
/// workload churning through that many distinct qualified sets was not
/// amortizing anyway.
///
/// Cloning shares the underlying storage, so a scheme and its clones
/// warm one another across threads.
#[derive(Clone, Debug, Default)]
pub struct LagrangeCache {
    sets: Arc<Mutex<CoefficientSets>>,
}

/// Shared storage of [`LagrangeCache`]: ordered index set → coefficients.
type CoefficientSets = HashMap<Vec<u32>, Arc<Vec<Fr>>>;

impl LagrangeCache {
    /// Number of distinct index sets retained before the cache resets.
    pub const MAX_SETS: usize = 512;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`lagrange_coefficients_at_zero`] through the cache. Errors are
    /// never cached (they are cheap to rediscover and carry no work).
    pub fn at_zero(&self, indices: &[u32]) -> Result<Arc<Vec<Fr>>, LagrangeError> {
        if let Some(hit) = self
            .sets
            .lock()
            .expect("lagrange cache poisoned")
            .get(indices)
        {
            return Ok(Arc::clone(hit));
        }
        let fresh = Arc::new(lagrange_coefficients_at_zero(indices)?);
        let mut sets = self.sets.lock().expect("lagrange cache poisoned");
        if sets.len() >= Self::MAX_SETS {
            sets.clear();
        }
        sets.insert(indices.to_vec(), Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Number of coefficient sets currently cached.
    pub fn cached_sets(&self) -> usize {
        self.sets.lock().expect("lagrange cache poisoned").len()
    }

    /// Drops every cached set (cold-start measurements, tests).
    pub fn clear(&self) {
        self.sets.lock().expect("lagrange cache poisoned").clear();
    }
}

/// Two caches always compare equal: contents are a performance
/// artifact, not part of the identity of any scheme embedding one —
/// this is what lets scheme types keep their derived `PartialEq`.
impl PartialEq for LagrangeCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for LagrangeCache {}

/// Interpolates the unique degree-`|points|-1` polynomial through
/// `points = [(i, y_i)]` and evaluates it at `x`.
pub fn interpolate_at(points: &[(u32, Fr)], x: Fr) -> Result<Fr, LagrangeError> {
    let indices: Vec<u32> = points.iter().map(|(i, _)| *i).collect();
    let coeffs = lagrange_coefficients_at(&indices, x)?;
    Ok(points
        .iter()
        .zip(coeffs.iter())
        .fold(Fr::zero(), |acc, ((_, y), c)| acc + *y * *c))
}

/// Interpolation *in the exponent* at `x = 0`: given group elements
/// `Y_i = P(i)·G`, recovers `P(0)·G` via a multi-scalar multiplication.
///
/// This is the paper's `Combine` primitive.
pub fn interpolate_in_exponent<C: CurveParams>(
    points: &[(u32, Affine<C>)],
) -> Result<Projective<C>, LagrangeError> {
    let indices: Vec<u32> = points.iter().map(|(i, _)| *i).collect();
    let coeffs = lagrange_coefficients_at_zero(&indices)?;
    let bases: Vec<Affine<C>> = points.iter().map(|(_, p)| *p).collect();
    Ok(msm(&bases, &coeffs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::Polynomial;
    use borndist_pairing::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x1a91)
    }

    #[test]
    fn coefficients_sum_property() {
        // Interpolating the constant polynomial 1: coefficients sum to 1.
        let coeffs = lagrange_coefficients_at_zero(&[1, 3, 7, 9]).unwrap();
        let sum = coeffs.iter().fold(Fr::zero(), |a, c| a + *c);
        assert_eq!(sum, Fr::one());
    }

    #[test]
    fn interpolation_recovers_polynomial_values() {
        let mut r = rng();
        let p = Polynomial::random(4, &mut r);
        let points: Vec<(u32, Fr)> = [2u32, 5, 6, 8, 11]
            .iter()
            .map(|&i| (i, p.evaluate_at_index(i)))
            .collect();
        assert_eq!(
            interpolate_at(&points, Fr::zero()).unwrap(),
            p.constant_term()
        );
        // Interpolation at an arbitrary point also matches.
        let x = Fr::from_u64(31337);
        assert_eq!(interpolate_at(&points, x).unwrap(), p.evaluate(x));
    }

    #[test]
    fn subset_independence() {
        let mut r = rng();
        let p = Polynomial::random(2, &mut r);
        let eval = |s: &[u32]| {
            let pts: Vec<(u32, Fr)> = s.iter().map(|&i| (i, p.evaluate_at_index(i))).collect();
            interpolate_at(&pts, Fr::zero()).unwrap()
        };
        assert_eq!(eval(&[1, 2, 3]), eval(&[4, 5, 6]));
        assert_eq!(eval(&[1, 2, 3]), eval(&[2, 5, 9]));
    }

    #[test]
    fn exponent_interpolation_matches_plain_g1() {
        let mut r = rng();
        let p = Polynomial::random(3, &mut r);
        let g = G1Projective::generator();
        let points: Vec<_> = [1u32, 2, 4, 6]
            .iter()
            .map(|&i| (i, g.mul(&p.evaluate_at_index(i)).to_affine()))
            .collect();
        let combined = interpolate_in_exponent(&points).unwrap();
        assert_eq!(combined, g.mul(&p.constant_term()));
    }

    #[test]
    fn exponent_interpolation_matches_plain_g2() {
        let mut r = rng();
        let p = Polynomial::random(2, &mut r);
        let g = G2Projective::generator();
        let points: Vec<_> = [3u32, 5, 9]
            .iter()
            .map(|&i| (i, g.mul(&p.evaluate_at_index(i)).to_affine()))
            .collect();
        let combined = interpolate_in_exponent(&points).unwrap();
        assert_eq!(combined, g.mul(&p.constant_term()));
    }

    #[test]
    fn too_few_points_give_wrong_secret() {
        // t+1 points determine a degree-t polynomial; t points interpolate
        // a DIFFERENT polynomial and (whp) the wrong secret.
        let mut r = rng();
        let p = Polynomial::random(3, &mut r);
        let pts: Vec<(u32, Fr)> = [1u32, 2, 3]
            .iter()
            .map(|&i| (i, p.evaluate_at_index(i)))
            .collect();
        assert_ne!(interpolate_at(&pts, Fr::zero()).unwrap(), p.constant_term());
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            lagrange_coefficients_at_zero(&[]),
            Err(LagrangeError::Empty)
        );
        assert_eq!(
            lagrange_coefficients_at_zero(&[1, 2, 1]),
            Err(LagrangeError::DuplicateIndex(1))
        );
        assert_eq!(
            lagrange_coefficients_at_zero(&[0, 1]),
            Err(LagrangeError::ZeroIndex)
        );
    }
}
