//! # borndist-shamir
//!
//! Polynomial secret sharing for the *Born and Raised Distributively*
//! reproduction: Shamir sharing over the scalar field, Lagrange
//! interpolation both in the field and "in the exponent", Feldman VSS,
//! and the two-generator Pedersen VSS that underlies the paper's
//! distributed key generation (§3.1, Eq. (1)).
//!
//! ## Example
//!
//! ```rust
//! use borndist_shamir::{share, reconstruct, ThresholdParams};
//! use borndist_pairing::Fr;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let secret = Fr::random(&mut rng);
//! let params = ThresholdParams::new(2, 5).unwrap();
//! let (shares, _poly) = share(secret, params, &mut rng);
//! // Any t+1 = 3 shares reconstruct the secret.
//! assert_eq!(reconstruct(&shares[1..4]).unwrap(), secret);
//! ```

mod batch;
mod feldman;
mod lagrange;
mod pedersen;
mod pedersen_triple;
mod polynomial;
mod sss;

pub use batch::{
    feldman_batch_verify, feldman_check_verdicts, pedersen_batch_verify, pedersen_check_verdicts,
    FeldmanCheck, PedersenCheck,
};
pub use feldman::FeldmanCommitment;
pub use lagrange::{
    interpolate_at, interpolate_in_exponent, lagrange_coefficients_at,
    lagrange_coefficients_at_zero, LagrangeCache, LagrangeError,
};
pub use pedersen::{PedersenBases, PedersenCommitment, PedersenShare, PedersenSharing};
pub use pedersen_triple::{TripleBases, TripleCommitment, TripleShare, TripleSharing};
pub use polynomial::Polynomial;
pub use sss::{reconstruct, share, InvalidParams, Share, ThresholdParams};
