//! Property-based tests for the cross-dealer batched check layer: the
//! randomized single-MSM verdicts must agree with the per-dealer
//! `verify_share` loop on every input — all-honest, sparsely corrupted,
//! and with a single forged share hidden among 128 dealers — and the
//! Lagrange cache must be a pure memoization of the fresh computation.

use borndist_pairing::{Fr, G1Projective, G2Projective};
use borndist_shamir::{
    feldman_check_verdicts, lagrange_coefficients_at_zero, pedersen_batch_verify,
    pedersen_check_verdicts, FeldmanCheck, FeldmanCommitment, LagrangeCache, PedersenBases,
    PedersenCheck, PedersenShare, PedersenSharing, Polynomial,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bases(rng: &mut StdRng) -> PedersenBases {
    PedersenBases {
        g_z: G2Projective::random(rng).to_affine(),
        g_r: G2Projective::random(rng).to_affine(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched Pedersen verdicts equal the per-dealer loop when some
    /// random subset of shares is perturbed.
    #[test]
    fn pedersen_batch_matches_per_dealer(
        seed in any::<u64>(),
        dealers in 1usize..20,
        t in 0usize..4,
        corrupt_mask in any::<u32>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let sharings: Vec<PedersenSharing> =
            (0..dealers).map(|_| PedersenSharing::deal_random(&b, t, &mut rng)).collect();
        let checks: Vec<PedersenCheck<'_>> = sharings.iter().enumerate().map(|(j, s)| {
            let mut share = s.share_for(3);
            if corrupt_mask & (1 << (j % 32)) != 0 {
                share = PedersenShare {
                    index: share.index,
                    a: share.a + Fr::random_nonzero(&mut rng),
                    b: share.b,
                };
            }
            PedersenCheck { commitment: &s.commitment, share }
        }).collect();
        let per_dealer: Vec<bool> = checks.iter()
            .map(|c| c.commitment.verify_share(&b, &c.share))
            .collect();
        let batched = pedersen_check_verdicts(&b, &checks, &mut rng);
        prop_assert_eq!(batched, per_dealer.clone());
        let accept = pedersen_batch_verify(&b, &checks, &mut rng);
        prop_assert_eq!(accept, per_dealer.iter().all(|v| *v));
    }

    /// One forged share hidden among 128 honest dealers is isolated by
    /// the bisection with exactly the per-dealer verdict vector.
    #[test]
    fn pedersen_batch_isolates_one_forgery_in_128(seed in any::<u64>(), victim in 0usize..128) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let sharings: Vec<PedersenSharing> =
            (0..128).map(|_| PedersenSharing::deal_random(&b, 2, &mut rng)).collect();
        let delta = Fr::random_nonzero(&mut rng);
        let checks: Vec<PedersenCheck<'_>> = sharings.iter().enumerate().map(|(j, s)| {
            let mut share = s.share_for(9);
            if j == victim {
                share = PedersenShare { index: share.index, a: share.a, b: share.b + delta };
            }
            PedersenCheck { commitment: &s.commitment, share }
        }).collect();
        let batched = pedersen_check_verdicts(&b, &checks, &mut rng);
        prop_assert!(!batched[victim]);
        prop_assert_eq!(batched.iter().filter(|v| **v).count(), 127);
    }

    /// Batched Feldman verdicts equal the per-check loop under random
    /// corruption.
    #[test]
    fn feldman_batch_matches_per_check(
        seed in any::<u64>(),
        dealers in 1usize..12,
        t in 0usize..4,
        corrupt_mask in any::<u32>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = G1Projective::random(&mut rng);
        let polys: Vec<Polynomial> =
            (0..dealers).map(|_| Polynomial::random(t, &mut rng)).collect();
        let commitments: Vec<FeldmanCommitment<_>> =
            polys.iter().map(|p| FeldmanCommitment::commit(p, &g)).collect();
        let mut shares: Vec<Fr> = polys.iter().map(|p| p.evaluate_at_index(5)).collect();
        for (j, s) in shares.iter_mut().enumerate() {
            if corrupt_mask & (1 << (j % 32)) != 0 {
                *s += Fr::random_nonzero(&mut rng);
            }
        }
        let checks: Vec<FeldmanCheck<'_, _>> = commitments.iter().zip(&shares)
            .map(|(c, share)| FeldmanCheck { commitment: c, index: 5, share: *share })
            .collect();
        let per_check: Vec<bool> = commitments.iter().zip(&shares)
            .map(|(c, share)| c.verify_share(5, *share, &g))
            .collect();
        let batched = feldman_check_verdicts(&g, &checks, &mut rng);
        prop_assert_eq!(batched, per_check);
    }

    /// The Lagrange cache returns exactly what the fresh computation
    /// returns, for random qualified sets, warm or cold.
    #[test]
    fn lagrange_cache_matches_fresh(seed in any::<u64>(), k in 1usize..24, spread in 2u32..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cache = LagrangeCache::new();
        // A random strictly-increasing index set (distinct, non-zero).
        let mut indices: Vec<u32> = Vec::with_capacity(k);
        let mut next = 1u32;
        for _ in 0..k {
            next += 1 + (rand::RngCore::next_u32(&mut rng) % spread);
            indices.push(next);
        }
        let fresh = lagrange_coefficients_at_zero(&indices).unwrap();
        let cold = cache.at_zero(&indices).unwrap();
        prop_assert_eq!(&*cold, &fresh);
        // Warm hit: same Arc contents, no recompute divergence.
        let warm = cache.at_zero(&indices).unwrap();
        prop_assert_eq!(&*warm, &fresh);
        prop_assert_eq!(cache.cached_sets(), 1);
        // Order is part of the identity: a permuted set is a new entry
        // whose coefficients are the permuted fresh coefficients.
        if indices.len() > 1 {
            let mut rev = indices.clone();
            rev.reverse();
            let rev_coeffs = cache.at_zero(&rev).unwrap();
            let mut expect = fresh.clone();
            expect.reverse();
            prop_assert_eq!(&*rev_coeffs, &expect);
            prop_assert_eq!(cache.cached_sets(), 2);
        }
    }
}
