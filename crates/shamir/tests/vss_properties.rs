//! Property-based tests for the secret-sharing layer: VSS soundness and
//! completeness, homomorphic combination, interpolation identities.

use borndist_pairing::{Fr, G2Projective};
use borndist_shamir::{
    interpolate_in_exponent, lagrange_coefficients_at, PedersenBases, PedersenShare,
    PedersenSharing, Polynomial, TripleBases, TripleSharing,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bases(rng: &mut StdRng) -> PedersenBases {
    PedersenBases {
        g_z: G2Projective::random(rng).to_affine(),
        g_r: G2Projective::random(rng).to_affine(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Completeness: every honestly dealt share verifies, for all degrees.
    #[test]
    fn pedersen_completeness(seed in any::<u64>(), t in 0usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let sharing = PedersenSharing::deal_random(&b, t, &mut rng);
        for i in 1..=(2 * t as u32 + 3) {
            prop_assert!(sharing.commitment.verify_share(&b, &sharing.share_for(i)));
        }
    }

    /// Soundness: any perturbation of a share is rejected.
    #[test]
    fn pedersen_soundness(seed in any::<u64>(), t in 0usize..5, idx in 1u32..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let sharing = PedersenSharing::deal_random(&b, t, &mut rng);
        let delta = Fr::random_nonzero(&mut rng);
        let good = sharing.share_for(idx);
        let bad_a = PedersenShare { index: idx, a: good.a + delta, b: good.b };
        let bad_b = PedersenShare { index: idx, a: good.a, b: good.b + delta };
        prop_assert!(!sharing.commitment.verify_share(&b, &bad_a));
        prop_assert!(!sharing.commitment.verify_share(&b, &bad_b));
    }

    /// Homomorphism: sums of sharings verify against combined commitments
    /// for arbitrarily many dealers.
    #[test]
    fn pedersen_combination(seed in any::<u64>(), dealers in 1usize..6, t in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let sharings: Vec<PedersenSharing> =
            (0..dealers).map(|_| PedersenSharing::deal_random(&b, t, &mut rng)).collect();
        let combined = sharings.iter()
            .map(|s| s.commitment.clone())
            .reduce(|x, y| x.combine(&y))
            .unwrap();
        for i in 1..=4u32 {
            let (mut a, mut bb) = (Fr::zero(), Fr::zero());
            for s in &sharings {
                let sh = s.share_for(i);
                a += sh.a;
                bb += sh.b;
            }
            let sum_share = PedersenShare { index: i, a, b: bb };
            prop_assert!(combined.verify_share(&b, &sum_share));
        }
    }

    /// Triple VSS completeness + soundness on the `c` component (the one
    /// only the second equation checks).
    #[test]
    fn triple_vss_checks_both_equations(seed in any::<u64>(), t in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tb = TripleBases {
            g_z: G2Projective::random(&mut rng).to_affine(),
            g_r: G2Projective::random(&mut rng).to_affine(),
            h_z: G2Projective::random(&mut rng).to_affine(),
            h_u: G2Projective::random(&mut rng).to_affine(),
        };
        let s = TripleSharing::deal_random(&tb, t, &mut rng);
        for i in 1..=3u32 {
            let mut sh = s.share_for(i);
            prop_assert!(s.commitment.verify_share(&tb, &sh));
            sh.c += Fr::one();
            prop_assert!(!s.commitment.verify_share(&tb, &sh));
        }
    }

    /// Lagrange basis: Δ_{i,S}(j) = [i == j] for j ∈ S (Kronecker
    /// property), which underlies both Combine and share recovery.
    #[test]
    fn lagrange_kronecker(indices in proptest::collection::btree_set(1u32..64, 2..6)) {
        let v: Vec<u32> = indices.iter().copied().collect();
        for (pos, &j) in v.iter().enumerate() {
            let coeffs = lagrange_coefficients_at(&v, Fr::from_u64(j as u64)).unwrap();
            for (k, c) in coeffs.iter().enumerate() {
                if k == pos {
                    prop_assert_eq!(*c, Fr::one());
                } else {
                    prop_assert_eq!(*c, Fr::zero());
                }
            }
        }
    }

    /// Interpolation in the exponent agrees with interpolation in the
    /// field (the soundness of "Lagrange in the exponent").
    #[test]
    fn exponent_interpolation_agrees(seed in any::<u64>(), t in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = Polynomial::random(t, &mut rng);
        let g = G2Projective::generator();
        let pts: Vec<(u32, _)> = (1..=(t as u32 + 1))
            .map(|i| (i, g.mul(&poly.evaluate_at_index(i)).to_affine()))
            .collect();
        let in_exponent = interpolate_in_exponent(&pts).unwrap();
        prop_assert_eq!(in_exponent, g.mul(&poly.constant_term()));
    }

    /// A zero-constant (refresh) sharing never moves the constant
    /// commitment, for any degree.
    #[test]
    fn refresh_sharing_shape(seed in any::<u64>(), t in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = bases(&mut rng);
        let z = PedersenSharing::deal_zero(&b, t, &mut rng);
        prop_assert!(z.commitment.is_zero_sharing());
        let fresh = PedersenSharing::deal_random(&b, t, &mut rng);
        let refreshed = fresh.commitment.combine(&z.commitment);
        prop_assert_eq!(
            refreshed.constant_commitment(),
            fresh.commitment.constant_commitment()
        );
    }
}
