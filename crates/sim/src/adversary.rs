//! The adaptive adversary: broadcast observation, corruption decisions,
//! and the player wrapper that enacts them.

use borndist_dkg::{Behavior, DkgAbort, DkgConfig, DkgMessage, DkgOutput, DkgPlayer};
use borndist_net::{BoxedPlayer, Delivered, Outgoing, PlayerId, Protocol, Recipient, RoundAction};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// When (and whom) the adversary corrupts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorruptionRule {
    /// At the start of `at_round`, corrupt the players that sent the
    /// most broadcast frames so far (ties broken by ascending id) — the
    /// "go after the loudest" heuristic; with everyone dealing once it
    /// degenerates to the lowest ids, which keeps it deterministic.
    TopBroadcasters {
        /// The round at which the corruption fires.
        at_round: usize,
    },
    /// At the start of `at_round`, corrupt the players accused by the
    /// most distinct complainers so far (ties by ascending id; players
    /// with zero accusations are never picked) — the adversary reads
    /// the complaint round and piles onto dealers already under
    /// suspicion.
    MostAccused {
        /// The round at which the corruption fires.
        at_round: usize,
    },
    /// Corrupt fixed players at fixed rounds (the fully scripted case).
    Scripted(Vec<(usize, PlayerId)>),
}

/// What a corrupted player does from its corruption round on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptAction {
    /// Send nothing at all (adaptive crash).
    Silence,
    /// In the complaint round, broadcast a complaint against **every**
    /// other player (the colluding complaint flood). Other rounds run
    /// honestly, so the flood is pure noise the complaint machinery
    /// must absorb.
    FloodComplaints,
    /// Withhold complaint answers (a corrupted dealer that lets itself
    /// be disqualified rather than expose its sharing).
    RefuseAnswers,
}

/// A scripted adversary strategy: a corruption budget (the model's `t`),
/// a rule for picking victims from observed traffic, and the behavior
/// the victims switch to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversaryScript {
    /// Maximum number of corruptions (never exceeds the scheme's `t`).
    pub budget: usize,
    /// Victim-selection rule.
    pub rule: CorruptionRule,
    /// Post-corruption behavior.
    pub action: CorruptAction,
}

/// Everything the adversary has seen and decided. Shared (behind a
/// mutex) by all player wrappers of one run; keyed observations are
/// deduplicated first-reporter-wins, which is sound because the
/// broadcast channel is reliable — every reporter carries the identical
/// record.
#[derive(Debug, Default)]
struct AdversaryState {
    /// Deduplication key: one count per `(round, sender)` broadcast.
    seen: BTreeSet<(usize, PlayerId)>,
    /// Broadcast frames observed per sender.
    broadcast_counts: BTreeMap<PlayerId, usize>,
    /// Accused dealer → distinct complainers observed.
    accusations: BTreeMap<PlayerId, BTreeSet<PlayerId>>,
    /// Rounds for which the corruption decision has been taken.
    decided: BTreeSet<usize>,
    /// The corrupted set (monotone, `≤ budget`).
    corrupted: BTreeSet<PlayerId>,
}

/// The adaptive adversary of one DKG run.
///
/// Observes broadcast traffic through every [`AdaptiveDkgPlayer`]'s
/// inbox, decides corruptions per [`AdversaryScript`], and rewrites the
/// outgoing traffic of corrupted players. All mutation is behind one
/// mutex; decisions are taken once per round by whichever wrapper gets
/// there first (their views of the broadcast record are identical).
#[derive(Debug)]
pub struct Adversary {
    script: AdversaryScript,
    state: Mutex<AdversaryState>,
}

impl Adversary {
    /// Creates the adversary for one run.
    pub fn new(script: AdversaryScript) -> Arc<Self> {
        Arc::new(Adversary {
            script,
            state: Mutex::new(AdversaryState::default()),
        })
    }

    /// The players corrupted so far (ascending).
    pub fn corrupted(&self) -> Vec<PlayerId> {
        self.lock().corrupted.iter().copied().collect()
    }

    /// `true` if `id` is currently corrupted.
    pub fn is_corrupted(&self, id: PlayerId) -> bool {
        self.lock().corrupted.contains(&id)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdversaryState> {
        self.state.lock().expect("adversary state poisoned")
    }

    /// Records the broadcast frames of `inbox` (private traffic is
    /// invisible to the adversary — authenticated private channels).
    fn observe(&self, round: usize, inbox: &[Delivered<DkgMessage>]) {
        let mut st = self.lock();
        for d in inbox {
            if !d.broadcast || !st.seen.insert((round, d.from)) {
                continue;
            }
            *st.broadcast_counts.entry(d.from).or_insert(0) += 1;
            if let Ok(DkgMessage::Complaints { against }) = &d.msg {
                for accused in against {
                    st.accusations.entry(*accused).or_default().insert(d.from);
                }
            }
        }
    }

    /// Takes the corruption decision for `round` (idempotent).
    fn decide(&self, round: usize) {
        let mut st = self.lock();
        if !st.decided.insert(round) {
            return;
        }
        let mut victims: Vec<PlayerId> = Vec::new();
        match &self.script.rule {
            CorruptionRule::TopBroadcasters { at_round } if *at_round == round => {
                let mut ranked: Vec<(PlayerId, usize)> = st
                    .broadcast_counts
                    .iter()
                    .map(|(id, n)| (*id, *n))
                    .collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                victims.extend(ranked.into_iter().map(|(id, _)| id));
            }
            CorruptionRule::MostAccused { at_round } if *at_round == round => {
                let mut ranked: Vec<(PlayerId, usize)> = st
                    .accusations
                    .iter()
                    .map(|(id, who)| (*id, who.len()))
                    .collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                victims.extend(ranked.into_iter().map(|(id, _)| id));
            }
            CorruptionRule::Scripted(plan) => {
                victims.extend(plan.iter().filter(|(r, _)| *r == round).map(|(_, id)| *id));
            }
            _ => {}
        }
        for v in victims {
            if st.corrupted.len() >= self.script.budget {
                break;
            }
            st.corrupted.insert(v);
        }
    }

    /// Rewrites a corrupted player's outgoing traffic per the script's
    /// [`CorruptAction`].
    fn rewrite(
        &self,
        id: PlayerId,
        round: usize,
        n: usize,
        out: Vec<Outgoing<DkgMessage>>,
    ) -> Vec<Outgoing<DkgMessage>> {
        match self.script.action {
            CorruptAction::Silence => vec![],
            CorruptAction::FloodComplaints => {
                // Round 1 is the complaint round of the 4-round DKG.
                if round == 1 {
                    let against: Vec<PlayerId> = (1..=n as PlayerId).filter(|p| *p != id).collect();
                    vec![Outgoing {
                        to: Recipient::Broadcast,
                        msg: DkgMessage::Complaints { against },
                    }]
                } else {
                    out
                }
            }
            CorruptAction::RefuseAnswers => {
                if round == 2 {
                    // Drop the answer broadcast, keep anything else.
                    out.into_iter()
                        .filter(|o| !matches!(o.msg, DkgMessage::ComplaintAnswers { .. }))
                        .collect()
                } else {
                    out
                }
            }
        }
    }
}

/// A [`DkgPlayer`] under adaptive-adversary observation: feeds its inbox
/// to the shared [`Adversary`], and — once corrupted — has its outgoing
/// traffic rewritten by the script. Until the corruption round the
/// player is byte-for-byte the honest player, which is exactly the
/// "behaved honestly, then fell" trace an adaptive adversary produces.
pub struct AdaptiveDkgPlayer {
    id: PlayerId,
    n: usize,
    inner: DkgPlayer,
    adversary: Arc<Adversary>,
}

impl AdaptiveDkgPlayer {
    /// Wraps a DKG player under the given adversary.
    pub fn new(
        id: PlayerId,
        cfg: DkgConfig,
        behavior: Behavior,
        seed: u64,
        adversary: Arc<Adversary>,
    ) -> Self {
        let n = cfg.params.n;
        AdaptiveDkgPlayer {
            id,
            n,
            inner: DkgPlayer::new(id, cfg, behavior, seed),
            adversary,
        }
    }
}

impl Protocol for AdaptiveDkgPlayer {
    type Message = DkgMessage;
    type Output = Result<DkgOutput, DkgAbort>;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<DkgMessage>],
    ) -> RoundAction<DkgMessage, Self::Output> {
        self.adversary.observe(round, inbox);
        self.adversary.decide(round);
        let action = self.inner.round(round, inbox);
        if !self.adversary.is_corrupted(self.id) {
            return action;
        }
        match action {
            RoundAction::Finish(out) => RoundAction::Finish(out),
            RoundAction::Continue(msgs) => {
                RoundAction::Continue(self.adversary.rewrite(self.id, round, self.n, msgs))
            }
        }
    }

    fn id(&self) -> PlayerId {
        self.id
    }
}

/// Builds the full player set of one adversarial DKG run: every player
/// wrapped by the same [`Adversary`], ready for
/// [`borndist_net::run_protocol`].
pub fn adaptive_dkg_players(
    cfg: &DkgConfig,
    behaviors: &BTreeMap<PlayerId, Behavior>,
    seed: u64,
    adversary: &Arc<Adversary>,
) -> Vec<BoxedPlayer<DkgMessage, Result<DkgOutput, DkgAbort>>> {
    (1..=cfg.params.n as PlayerId)
        .map(|id| {
            let behavior = behaviors.get(&id).cloned().unwrap_or_default();
            Box::new(AdaptiveDkgPlayer::new(
                id,
                cfg.clone(),
                behavior,
                seed,
                Arc::clone(adversary),
            )) as _
        })
        .collect()
}
