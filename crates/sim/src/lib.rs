//! # borndist-sim
//!
//! Scripted **adaptive-adversary** scenarios for the DKG: an
//! [`Adversary`] watches the reliable broadcast channel as the protocol
//! runs and picks up to `t` players to corrupt *mid-protocol*, based on
//! what it observed — the adversary model under which the paper proves
//! the §3 scheme secure ("adaptive corruptions in the erasure-free
//! model"). The simulation counterpart of that claim is a matrix of
//! machine-checkable scenarios ([`run_scenario`], [`SCENARIOS`]): each
//! one runs a full DKG with a scripted adaptive corruption pattern over
//! the fault-injection transports and reports pass/fail criteria
//! (protocol completes, honest players agree, honest shares verify,
//! corruption budget respected, traffic parity where determinism is
//! promised) that CI gates on per scenario.
//!
//! Adaptivity is implemented without breaking determinism: every
//! observation the adversary conditions on comes from the broadcast
//! channel, which is reliable — all players see the identical record —
//! so the corruption decision is a pure function of public traffic and
//! replays identically across transports, seeds and thread counts.
//!
//! ## Example
//!
//! ```rust
//! use borndist_sim::run_scenario;
//!
//! let report = run_scenario("complaint-flood", 7).unwrap();
//! assert!(report.all_pass(), "{}", report);
//! ```

mod adversary;
mod scenario;

pub use adversary::{
    adaptive_dkg_players, AdaptiveDkgPlayer, Adversary, AdversaryScript, CorruptAction,
    CorruptionRule,
};
pub use scenario::{run_scenario, Criterion, ScenarioReport, SCENARIOS};
