//! The scenario matrix: named adversarial DKG runs with
//! machine-checkable success criteria, one CI gate per scenario.

use crate::adversary::{
    adaptive_dkg_players, Adversary, AdversaryScript, CorruptAction, CorruptionRule,
};
use borndist_dkg::{dkg_session, standard_config, Behavior, DkgAbort, DkgConfig, DkgOutput};
use borndist_net::{run_protocol, DeliveryPolicy, Metrics, Outage, PlayerId, TransportKind};
use borndist_pairing::G2Affine;
use borndist_shamir::{PedersenShare, ThresholdParams};
use std::collections::{BTreeMap, BTreeSet};

/// Every scenario of the matrix, in CI order.
pub const SCENARIOS: &[&str] = &[
    "equivocation",
    "adaptive-corruption",
    "complaint-flood",
    "churn",
];

/// One machine-checked success criterion of a scenario run.
#[derive(Clone, Debug)]
pub struct Criterion {
    /// Stable criterion name (what CI logs key on).
    pub name: &'static str,
    /// Whether the run satisfied it.
    pub pass: bool,
    /// Human-readable evidence (counts, sets, byte totals).
    pub detail: String,
}

/// The outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name (one of [`SCENARIOS`]).
    pub name: String,
    /// Committee size.
    pub n: usize,
    /// Corruption threshold.
    pub t: usize,
    /// Players the adversary corrupted mid-protocol (empty for the
    /// statically scripted scenarios).
    pub corrupted: Vec<PlayerId>,
    /// The qualified dealer set the honest players agreed on.
    pub qualified: Vec<PlayerId>,
    /// All criteria with their verdicts.
    pub criteria: Vec<Criterion>,
}

impl ScenarioReport {
    /// `true` iff every criterion passed.
    pub fn all_pass(&self) -> bool {
        self.criteria.iter().all(|c| c.pass)
    }
}

impl core::fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "scenario {} (n={}, t={}): corrupted={:?} qualified={:?}",
            self.name, self.n, self.t, self.corrupted, self.qualified
        )?;
        for c in &self.criteria {
            writeln!(
                f,
                "  [{}] {:<24} {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        Ok(())
    }
}

fn cfg_for(t: usize, n: usize) -> DkgConfig {
    let params = ThresholdParams::new(t, n).expect("valid scenario parameters");
    standard_config(params, 2, b"borndist/sim/scenario", false)
}

type Outputs = BTreeMap<PlayerId, Result<DkgOutput, DkgAbort>>;

/// The honest players' `(qualified, public key)` agreement value, if
/// they all completed and agree; `None` otherwise.
fn agreement(
    outputs: &Outputs,
    honest: &BTreeSet<PlayerId>,
) -> Option<(BTreeSet<PlayerId>, Vec<G2Affine>)> {
    let mut value: Option<(BTreeSet<PlayerId>, Vec<G2Affine>)> = None;
    for id in honest {
        let out = outputs.get(id)?.as_ref().ok()?;
        let this = (out.qualified.clone(), out.public_key_coordinates());
        match &value {
            None => value = Some(this),
            Some(v) if *v == this => {}
            Some(_) => return None,
        }
    }
    value
}

/// `true` if `id`'s final share opens every combined commitment at its
/// index — the paper's share-correctness guarantee.
fn shares_verify(cfg: &DkgConfig, id: PlayerId, out: &DkgOutput) -> bool {
    out.share.len() == out.combined_commitments.len()
        && out
            .share
            .iter()
            .zip(out.combined_commitments.iter())
            .all(|(&(a, b), com)| com.verify_share(&cfg.bases, &PedersenShare { index: id, a, b }))
}

fn completes(outputs: &Outputs, honest: &BTreeSet<PlayerId>) -> Criterion {
    let failed: Vec<PlayerId> = honest
        .iter()
        .filter(|id| !matches!(outputs.get(id), Some(Ok(_))))
        .copied()
        .collect();
    Criterion {
        name: "completes",
        pass: failed.is_empty(),
        detail: if failed.is_empty() {
            format!("all {} honest players finished with a share", honest.len())
        } else {
            format!("honest players without output: {:?}", failed)
        },
    }
}

fn honest_shares_verify(
    cfg: &DkgConfig,
    outputs: &Outputs,
    honest: &BTreeSet<PlayerId>,
) -> Criterion {
    let bad: Vec<PlayerId> = honest
        .iter()
        .filter(|id| match outputs.get(id) {
            Some(Ok(out)) => !shares_verify(cfg, **id, out),
            _ => true,
        })
        .copied()
        .collect();
    Criterion {
        name: "honest-shares-verify",
        pass: bad.is_empty(),
        detail: if bad.is_empty() {
            "every honest share opens the combined commitments".to_string()
        } else {
            format!("invalid shares at: {:?}", bad)
        },
    }
}

fn qualified_of(outputs: &Outputs, honest: &BTreeSet<PlayerId>) -> Vec<PlayerId> {
    honest
        .iter()
        .find_map(|id| match outputs.get(id) {
            Some(Ok(out)) => Some(out.qualified.iter().copied().collect()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Runs one named scenario of the matrix.
///
/// # Errors
///
/// `Err` on an unknown scenario name or a transport failure; a scenario
/// whose *criteria* fail still returns `Ok` (the report carries the
/// verdicts — CI asserts on [`ScenarioReport::all_pass`]).
pub fn run_scenario(name: &str, seed: u64) -> Result<ScenarioReport, String> {
    match name {
        "equivocation" => equivocation(seed),
        "adaptive-corruption" => adaptive_corruption(seed),
        "complaint-flood" => complaint_flood(seed),
        "churn" => churn(seed),
        other => Err(format!(
            "unknown scenario {:?}; known: {:?}",
            other, SCENARIOS
        )),
    }
}

/// Two equivocating/malformed dealers (2 broadcasts two conflicting
/// commitment messages, 5 broadcasts the wrong width). Both must be
/// disqualified by *every* honest player, the run must complete, and
/// the traffic must be byte-identical across transports (the broadcast
/// misbehavior is deterministic).
fn equivocation(seed: u64) -> Result<ScenarioReport, String> {
    let (t, n) = (3, 9);
    let cfg = cfg_for(t, n);
    let mut behaviors: BTreeMap<PlayerId, Behavior> = BTreeMap::new();
    behaviors.insert(
        2,
        Behavior {
            equivocate_commitments: true,
            ..Behavior::default()
        },
    );
    behaviors.insert(
        5,
        Behavior {
            bad_commitment_width: true,
            ..Behavior::default()
        },
    );
    let honest: BTreeSet<PlayerId> = (1..=n as PlayerId)
        .filter(|i| ![2, 5].contains(i))
        .collect();
    let (out_lock, m_lock) =
        dkg_session(&cfg, &behaviors, seed, &TransportKind::Lockstep).map_err(|e| e.to_string())?;
    let (_, m_chan) = dkg_session(
        &cfg,
        &behaviors,
        seed,
        &TransportKind::Channel(DeliveryPolicy::reliable()),
    )
    .map_err(|e| e.to_string())?;

    let agreed = agreement(&out_lock, &honest);
    let qualified = qualified_of(&out_lock, &honest);
    let disqualified = !qualified.contains(&2) && !qualified.contains(&5);
    let criteria = vec![
        completes(&out_lock, &honest),
        Criterion {
            name: "agreement",
            pass: agreed.is_some(),
            detail: "honest players agree on Q and the public key".to_string(),
        },
        Criterion {
            name: "equivocators-disqualified",
            pass: disqualified,
            detail: format!(
                "qualified = {:?} (players 2 and 5 must be absent)",
                qualified
            ),
        },
        honest_shares_verify(&cfg, &out_lock, &honest),
        transport_parity(&m_lock, &m_chan),
    ];
    Ok(ScenarioReport {
        name: "equivocation".into(),
        n,
        t,
        corrupted: vec![],
        qualified,
        criteria,
    })
}

fn transport_parity(a: &Metrics, b: &Metrics) -> Criterion {
    Criterion {
        name: "transport-parity",
        pass: a.same_traffic(b),
        detail: format!(
            "lockstep {} msgs / {} bytes vs channel {} msgs / {} bytes",
            a.messages, a.bytes, b.messages, b.bytes
        ),
    }
}

/// A dealer (3) quietly corrupts two recipients' shares; the adversary
/// watches the complaint round and *then* corrupts the most-accused
/// dealer, making it refuse to answer — an adaptive pile-on. The dealer
/// must end up disqualified, everyone honest must still finish, and the
/// adversary must stay within its budget.
fn adaptive_corruption(seed: u64) -> Result<ScenarioReport, String> {
    let (t, n) = (3, 9);
    let cfg = cfg_for(t, n);
    let mut behaviors: BTreeMap<PlayerId, Behavior> = BTreeMap::new();
    behaviors.insert(
        3,
        Behavior {
            corrupt_shares_to: [5, 6].into_iter().collect(),
            ..Behavior::default()
        },
    );
    let adversary = Adversary::new(AdversaryScript {
        budget: t,
        rule: CorruptionRule::MostAccused { at_round: 2 },
        action: CorruptAction::RefuseAnswers,
    });
    let players = adaptive_dkg_players(&cfg, &behaviors, seed, &adversary);
    let (outputs, _) =
        run_protocol(&TransportKind::Lockstep, players, 8).map_err(|e| e.to_string())?;
    let corrupted = adversary.corrupted();
    let honest: BTreeSet<PlayerId> = (1..=n as PlayerId)
        .filter(|i| *i != 3 && !corrupted.contains(i))
        .collect();
    let agreed = agreement(&outputs, &honest);
    let qualified = qualified_of(&outputs, &honest);
    let criteria = vec![
        completes(&outputs, &honest),
        Criterion {
            name: "agreement",
            pass: agreed.is_some(),
            detail: "honest players agree on Q and the public key".to_string(),
        },
        Criterion {
            name: "accused-dealer-corrupted",
            pass: corrupted == vec![3],
            detail: format!(
                "adversary corrupted {:?} (expected the accused dealer 3)",
                corrupted
            ),
        },
        Criterion {
            name: "corrupted-dealer-disqualified",
            pass: !qualified.contains(&3),
            detail: format!("qualified = {:?} (dealer 3 must be absent)", qualified),
        },
        Criterion {
            name: "budget-respected",
            pass: corrupted.len() <= t,
            detail: format!("corrupted {} of budget {}", corrupted.len(), t),
        },
        honest_shares_verify(&cfg, &outputs, &honest),
    ];
    Ok(ScenarioReport {
        name: "adaptive-corruption".into(),
        n,
        t,
        corrupted,
        qualified,
        criteria,
    })
}

/// The adversary corrupts `t` players after the dealing round and has
/// them flood complaints against *everyone*. Every honest dealer then
/// faces exactly `t` complaints — the maximum the protocol must absorb
/// without disqualifying anyone — and answers them all publicly. The
/// run must end with the full committee qualified and visibly heavier
/// traffic than a clean run.
fn complaint_flood(seed: u64) -> Result<ScenarioReport, String> {
    let (t, n) = (4, 9);
    let cfg = cfg_for(t, n);
    let adversary = Adversary::new(AdversaryScript {
        budget: t,
        rule: CorruptionRule::TopBroadcasters { at_round: 1 },
        action: CorruptAction::FloodComplaints,
    });
    let players = adaptive_dkg_players(&cfg, &BTreeMap::new(), seed, &adversary);
    let (outputs, metrics) =
        run_protocol(&TransportKind::Lockstep, players, 8).map_err(|e| e.to_string())?;
    let (_, clean_metrics) = dkg_session(&cfg, &BTreeMap::new(), seed, &TransportKind::Lockstep)
        .map_err(|e| e.to_string())?;
    let corrupted = adversary.corrupted();
    let honest: BTreeSet<PlayerId> = (1..=n as PlayerId)
        .filter(|i| !corrupted.contains(i))
        .collect();
    let agreed = agreement(&outputs, &honest);
    let qualified = qualified_of(&outputs, &honest);
    let all: Vec<PlayerId> = (1..=n as PlayerId).collect();
    let criteria = vec![
        completes(&outputs, &honest),
        Criterion {
            name: "agreement",
            pass: agreed.is_some(),
            detail: "honest players agree on Q and the public key".to_string(),
        },
        Criterion {
            name: "nobody-disqualified",
            pass: qualified == all,
            detail: format!(
                "qualified = {:?} (a complaint flood of ≤ t per dealer must disqualify nobody)",
                qualified
            ),
        },
        Criterion {
            name: "budget-respected",
            pass: corrupted.len() == t,
            detail: format!("corrupted {:?} (budget {})", corrupted, t),
        },
        Criterion {
            name: "flood-visible",
            pass: metrics.messages > clean_metrics.messages,
            detail: format!(
                "{} msgs under flood vs {} clean",
                metrics.messages, clean_metrics.messages
            ),
        },
        honest_shares_verify(&cfg, &outputs, &honest),
    ];
    Ok(ScenarioReport {
        name: "complaint-flood".into(),
        n,
        t,
        corrupted,
        qualified,
        criteria,
    })
}

/// Crash-restart churn: player 4's private links are dark through the
/// dealing round (its shares never arrive anywhere, and nobody's reach
/// it), player 7 restarts across the complaint rounds, and the whole
/// run rides a reordering, frame-duplicating network. The protocol's
/// correct response is asymmetric: dealer 4 draws `n-1 > t` complaints
/// and **must** be disqualified, while player 4 itself still finishes —
/// its complaints are broadcast (reliable), so every qualified dealer
/// answers publicly and 4 rebuilds its share from the answers. Player
/// 7's window touches only broadcast rounds and must be a no-op.
fn churn(seed: u64) -> Result<ScenarioReport, String> {
    let (t, n) = (3, 9);
    let cfg = cfg_for(t, n);
    let policy = DeliveryPolicy {
        seed,
        duplicate_rate: 0.15,
        reorder: true,
        outages: vec![
            Outage {
                player: 4,
                from_round: 0,
                until_round: 2,
            },
            Outage {
                player: 7,
                from_round: 1,
                until_round: 3,
            },
        ],
        ..DeliveryPolicy::default()
    };
    let honest: BTreeSet<PlayerId> = (1..=n as PlayerId).collect();
    let (outputs, m_chan) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        seed,
        &TransportKind::Channel(policy.clone()),
    )
    .map_err(|e| e.to_string())?;
    // The same churn over real sockets through the event-driven
    // reactor: outages, duplication and reordering come from the shared
    // policy streams, so the schedule — and the metered traffic — must
    // be identical to the in-process run.
    let (out_rx, m_rx) = dkg_session(
        &cfg,
        &BTreeMap::new(),
        seed,
        &TransportKind::TcpReactor(policy),
    )
    .map_err(|e| e.to_string())?;
    let agreed = agreement(&outputs, &honest);
    let qualified = qualified_of(&outputs, &honest);
    let expected: Vec<PlayerId> = (1..=n as PlayerId).filter(|i| *i != 4).collect();
    let criteria = vec![
        completes(&outputs, &honest),
        Criterion {
            name: "agreement",
            pass: agreed.is_some(),
            detail: "honest players agree on Q and the public key".to_string(),
        },
        Criterion {
            name: "dark-dealer-disqualified",
            pass: qualified == expected,
            detail: format!(
                "qualified = {:?} (exactly dealer 4 absent: dark through dealing, n-1 > t complaints)",
                qualified
            ),
        },
        Criterion {
            name: "restarted-players-recover",
            pass: matches!(outputs.get(&4), Some(Ok(out)) if shares_verify(&cfg, 4, out))
                && matches!(outputs.get(&7), Some(Ok(out)) if shares_verify(&cfg, 7, out)),
            detail: "players 4 and 7 finish with valid shares rebuilt from broadcast answers"
                .to_string(),
        },
        honest_shares_verify(&cfg, &outputs, &honest),
        Criterion {
            name: "reactor-parity",
            pass: m_chan.same_traffic(&m_rx) && qualified_of(&out_rx, &honest) == qualified,
            detail: format!(
                "channel {} msgs / {} bytes vs reactor sockets {} msgs / {} bytes, same qualified set",
                m_chan.messages, m_chan.bytes, m_rx.messages, m_rx.bytes
            ),
        },
    ];
    Ok(ScenarioReport {
        name: "churn".into(),
        n,
        t,
        corrupted: vec![],
        qualified,
        criteria,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes() {
        for name in SCENARIOS {
            let report = run_scenario(name, 0xad5e_25a7).expect("scenario runs");
            assert!(report.all_pass(), "{}", report);
        }
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(run_scenario("no-such-scenario", 1).is_err());
    }

    #[test]
    fn scenarios_are_seed_stable() {
        // Same seed → identical corruption decisions and qualified sets.
        let a = run_scenario("adaptive-corruption", 7).unwrap();
        let b = run_scenario("adaptive-corruption", 7).unwrap();
        assert_eq!(a.corrupted, b.corrupted);
        assert_eq!(a.qualified, b.qualified);
    }
}
