//! The shared frame router: metering, fan-out and fault injection.
//!
//! Both transports funnel every round's outgoing frames through one
//! [`Router`], so byte accounting ([`Metrics`]) and delivery semantics
//! are *identical by construction* — a DKG run over
//! [`crate::ChannelTransport`] with a reliable policy reports the exact
//! same byte counts as the same run over [`crate::LockstepTransport`].
//!
//! Fault randomness comes from the policy's shared derivations
//! ([`DeliveryPolicy::sender_rng`], [`DeliveryPolicy::reorder_rng`]) —
//! per-sender streams for drop/duplicate decisions and per-inbox streams
//! for reorder shuffles, never a router-global sequence. The TCP runtime
//! draws from the same streams in the same order, so a *faulted* run
//! injects the identical delivery schedule on either transport.

use crate::policy::DeliveryPolicy;
use crate::{Metrics, PlayerId, Recipient, SimError};
use rand::rngs::StdRng;
use rand::RngCore;
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// A frame queued for a player, before decoding.
#[derive(Clone, Debug)]
pub(crate) struct RawDelivered {
    pub from: PlayerId,
    pub broadcast: bool,
    pub frame: Vec<u8>,
}

/// One addressed frame handed to the router by a transport.
#[derive(Debug)]
pub(crate) struct FrameSend {
    pub from: PlayerId,
    pub to: Recipient,
    pub frame: Vec<u8>,
}

pub(crate) struct Router {
    ids: Vec<PlayerId>,
    policy: DeliveryPolicy,
    /// One lazily-created fault stream per sender (the same streams a
    /// distributed run derives locally at each player).
    sender_rngs: BTreeMap<PlayerId, StdRng>,
    pub(crate) metrics: Metrics,
}

impl Router {
    pub(crate) fn new(ids: Vec<PlayerId>, policy: DeliveryPolicy) -> Self {
        Router {
            ids,
            policy,
            sender_rngs: BTreeMap::new(),
            metrics: Metrics::default(),
        }
    }

    /// Meters and routes one round's frames into next-round inboxes.
    ///
    /// Byte counts are sender-side: a frame is metered at its encoded
    /// length when sent, whether or not the policy then drops, corrupts
    /// or duplicates it in flight. Players in `finished` receive nothing
    /// (and a private frame to a finished player is silently dropped —
    /// its recipient has legitimately left the protocol).
    pub(crate) fn route(
        &mut self,
        round: usize,
        sends: Vec<FrameSend>,
        finished: &HashSet<PlayerId>,
    ) -> Result<BTreeMap<PlayerId, Vec<RawDelivered>>, SimError> {
        let mut inboxes: BTreeMap<PlayerId, Vec<RawDelivered>> = self
            .ids
            .iter()
            .filter(|id| !finished.contains(id))
            .map(|id| (*id, Vec::new()))
            .collect();
        let mut round_msgs = 0usize;
        let mut round_bytes = 0usize;

        for send in sends {
            round_msgs += 1;
            round_bytes += send.frame.len();
            *self.metrics.bytes_by_player.entry(send.from).or_insert(0) += send.frame.len();

            let mut frame = send.frame;
            self.policy.tamper_frame(round, send.from, &mut frame);

            match send.to {
                Recipient::Broadcast => {
                    // The broadcast channel is reliable by assumption
                    // (§2.1): exactly-once delivery to every live player,
                    // the policy's private-link loss faults do not apply.
                    // (Tampering was applied above, pre-fan-out: a
                    // garbage-emitting *sender* is modeled, and every
                    // receiver sees the identical corrupted frame.)
                    for (_, inbox) in inboxes.iter_mut() {
                        inbox.push(RawDelivered {
                            from: send.from,
                            broadcast: true,
                            frame: frame.clone(),
                        });
                    }
                }
                Recipient::Private(to) => {
                    if !self.ids.contains(&to) {
                        return Err(SimError::UnknownRecipient(to));
                    }
                    if !self.policy.link_up(round, send.from, to) {
                        continue;
                    }
                    if !self.sender_rngs.contains_key(&send.from) {
                        let rng = self.policy.sender_rng(send.from);
                        self.sender_rngs.insert(send.from, rng);
                    }
                    let rng = self
                        .sender_rngs
                        .get_mut(&send.from)
                        .expect("sender stream just inserted");
                    let dropped = DeliveryPolicy::chance(rng, self.policy.drop_rate);
                    let duplicated =
                        !dropped && DeliveryPolicy::chance(rng, self.policy.duplicate_rate);
                    if dropped {
                        continue;
                    }
                    if let Some(inbox) = inboxes.get_mut(&to) {
                        let delivered = RawDelivered {
                            from: send.from,
                            broadcast: false,
                            frame,
                        };
                        if duplicated {
                            inbox.push(delivered.clone());
                        }
                        inbox.push(delivered);
                    }
                }
            }
        }

        if self.policy.reorder {
            for (id, inbox) in inboxes.iter_mut() {
                // Fisher–Yates from the per-(receiver, deliver-round)
                // stream; frames routed in round `r` are consumed at
                // `r + 1`, which is the round the derivation is keyed on.
                let mut rng = self.policy.reorder_rng(round + 1, *id);
                for i in (1..inbox.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    inbox.swap(i, j);
                }
            }
        }

        self.metrics.messages += round_msgs;
        self.metrics.bytes += round_bytes;
        self.metrics.per_round.push((round_msgs, round_bytes));
        if round_msgs > 0 {
            self.metrics.active_rounds += 1;
        }
        Ok(inboxes)
    }

    /// Records wall-clock samples for the round just routed.
    pub(crate) fn finish_round(&mut self, round_start: Instant, run_start: Instant) {
        self.metrics.total_rounds += 1;
        self.metrics.per_round_elapsed.push(round_start.elapsed());
        self.metrics.elapsed = run_start.elapsed();
    }
}
