//! The shared frame router: metering, fan-out and fault injection.
//!
//! Both transports funnel every round's outgoing frames through one
//! [`Router`], so byte accounting ([`Metrics`]) and delivery semantics
//! are *identical by construction* — a DKG run over
//! [`crate::ChannelTransport`] with a reliable policy reports the exact
//! same byte counts as the same run over [`crate::LockstepTransport`].

use crate::policy::DeliveryPolicy;
use crate::{Metrics, PlayerId, Recipient, SimError};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// A frame queued for a player, before decoding.
#[derive(Clone, Debug)]
pub(crate) struct RawDelivered {
    pub from: PlayerId,
    pub broadcast: bool,
    pub frame: Vec<u8>,
}

/// One addressed frame handed to the router by a transport.
#[derive(Debug)]
pub(crate) struct FrameSend {
    pub from: PlayerId,
    pub to: Recipient,
    pub frame: Vec<u8>,
}

pub(crate) struct Router {
    ids: Vec<PlayerId>,
    policy: DeliveryPolicy,
    rng: StdRng,
    pub(crate) metrics: Metrics,
}

impl Router {
    pub(crate) fn new(ids: Vec<PlayerId>, policy: DeliveryPolicy) -> Self {
        let rng = StdRng::seed_from_u64(policy.seed);
        Router {
            ids,
            policy,
            rng,
            metrics: Metrics::default(),
        }
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (self.rng.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Meters and routes one round's frames into next-round inboxes.
    ///
    /// Byte counts are sender-side: a frame is metered at its encoded
    /// length when sent, whether or not the policy then drops, corrupts
    /// or duplicates it in flight. Players in `finished` receive nothing
    /// (and a private frame to a finished player is silently dropped —
    /// its recipient has legitimately left the protocol).
    pub(crate) fn route(
        &mut self,
        round: usize,
        sends: Vec<FrameSend>,
        finished: &HashSet<PlayerId>,
    ) -> Result<BTreeMap<PlayerId, Vec<RawDelivered>>, SimError> {
        let mut inboxes: BTreeMap<PlayerId, Vec<RawDelivered>> = self
            .ids
            .iter()
            .filter(|id| !finished.contains(id))
            .map(|id| (*id, Vec::new()))
            .collect();
        let mut round_msgs = 0usize;
        let mut round_bytes = 0usize;

        for send in sends {
            round_msgs += 1;
            round_bytes += send.frame.len();
            *self.metrics.bytes_by_player.entry(send.from).or_insert(0) += send.frame.len();

            let mut frame = send.frame;
            self.policy.tamper_frame(round, send.from, &mut frame);

            match send.to {
                Recipient::Broadcast => {
                    // The broadcast channel is reliable by assumption
                    // (§2.1): exactly-once delivery to every live player,
                    // the policy's private-link loss faults do not apply.
                    // (Tampering was applied above, pre-fan-out: a
                    // garbage-emitting *sender* is modeled, and every
                    // receiver sees the identical corrupted frame.)
                    for (_, inbox) in inboxes.iter_mut() {
                        inbox.push(RawDelivered {
                            from: send.from,
                            broadcast: true,
                            frame: frame.clone(),
                        });
                    }
                }
                Recipient::Private(to) => {
                    if !self.ids.contains(&to) {
                        return Err(SimError::UnknownRecipient(to));
                    }
                    if !self.policy.link_up(round, send.from, to) {
                        continue;
                    }
                    let dropped = self.chance(self.policy.drop_rate);
                    let duplicated = !dropped && self.chance(self.policy.duplicate_rate);
                    if dropped {
                        continue;
                    }
                    if let Some(inbox) = inboxes.get_mut(&to) {
                        let delivered = RawDelivered {
                            from: send.from,
                            broadcast: false,
                            frame,
                        };
                        if duplicated {
                            inbox.push(delivered.clone());
                        }
                        inbox.push(delivered);
                    }
                }
            }
        }

        if self.policy.reorder {
            for inbox in inboxes.values_mut() {
                // Fisher–Yates from the policy RNG: deterministic per seed.
                for i in (1..inbox.len()).rev() {
                    let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
                    inbox.swap(i, j);
                }
            }
        }

        self.metrics.messages += round_msgs;
        self.metrics.bytes += round_bytes;
        self.metrics.per_round.push((round_msgs, round_bytes));
        if round_msgs > 0 {
            self.metrics.active_rounds += 1;
        }
        Ok(inboxes)
    }

    /// Records wall-clock samples for the round just routed.
    pub(crate) fn finish_round(&mut self, round_start: Instant, run_start: Instant) {
        self.metrics.total_rounds += 1;
        self.metrics.per_round_elapsed.push(round_start.elapsed());
        self.metrics.elapsed = run_start.elapsed();
    }
}
