//! Socket readiness without crates or busy-waits.
//!
//! The reactor ([`crate::reactor`]) and the legacy transport's accept
//! loop both need one primitive: *block until one of these sockets can
//! make progress, or a timeout passes*. On Linux that is `poll(2)`,
//! bound here through a minimal `extern "C"` declaration (no new
//! dependencies — the binding is three constants and one function). On
//! every other platform the same API degrades to a **readiness scan
//! with adaptive backoff**: the caller's descriptors are all reported
//! ready after a short sleep, and the caller's nonblocking reads and
//! writes simply return `WouldBlock` for the ones that had nothing.
//! The sleep starts near zero and doubles up to a small ceiling while
//! nothing happens; [`Readiness::note_progress`] resets it, so a busy
//! mesh spins tight and an idle one converges to a few wakeups per
//! second instead of the old fixed 2 ms poll.
//!
//! Both paths are deliberately *hint-shaped*: a descriptor reported
//! ready may still yield `WouldBlock` (spurious wakeups, the fallback
//! path always), so callers must treat readiness as permission to try,
//! never as a guarantee.

use std::io;
use std::time::Duration;

/// Raw descriptor handle. On Unix this is the real fd; elsewhere it is
/// a placeholder (the fallback scan never dereferences it).
#[cfg(unix)]
pub(crate) type Fd = std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub(crate) type Fd = i32;

/// Extracts the raw descriptor of a socket-like object.
#[cfg(unix)]
pub(crate) fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> Fd {
    t.as_raw_fd()
}
#[cfg(not(unix))]
pub(crate) fn fd_of<T>(_t: &T) -> Fd {
    0
}

/// One descriptor's interest set going into [`Readiness::wait`] and its
/// readiness flags coming out.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Want {
    /// The descriptor to watch.
    pub fd: Fd,
    /// Wake when readable (or closed/errored — EOF must be observable).
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
    /// Out: a read (or an EOF/error-revealing read) can make progress.
    pub ready_read: bool,
    /// Out: a write can make progress.
    pub ready_write: bool,
}

impl Want {
    /// Read interest on `fd`.
    pub fn readable(fd: Fd) -> Self {
        Want {
            fd,
            read: true,
            write: false,
            ready_read: false,
            ready_write: false,
        }
    }

    /// Read-and-write interest on `fd`.
    pub fn duplex(fd: Fd, write: bool) -> Self {
        Want {
            fd,
            read: true,
            write,
            ready_read: false,
            ready_write: false,
        }
    }

    /// Write-only interest on `fd`.
    pub fn writable(fd: Fd) -> Self {
        Want {
            fd,
            read: false,
            write: true,
            ready_read: false,
            ready_write: false,
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::{c_int, c_ulong};

    #[repr(C)]
    pub(super) struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub(super) const POLLIN: i16 = 0x001;
    pub(super) const POLLOUT: i16 = 0x004;
    pub(super) const POLLERR: i16 = 0x008;
    pub(super) const POLLHUP: i16 = 0x010;

    extern "C" {
        pub(super) fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// The adaptive-backoff scan behind the non-Linux [`Readiness`] path.
/// Kept platform-independent (and unit-tested) even where the real
/// `poll(2)` binding is used.
#[cfg(any(not(target_os = "linux"), test))]
#[derive(Debug)]
pub(crate) struct FallbackScan {
    pause: Duration,
}

/// Floor of the fallback backoff: the first sleep after progress.
#[cfg(any(not(target_os = "linux"), test))]
const BACKOFF_MIN: Duration = Duration::from_micros(50);
/// Ceiling of the fallback backoff: the idle-mesh wakeup period.
#[cfg(any(not(target_os = "linux"), test))]
const BACKOFF_MAX: Duration = Duration::from_millis(5);

#[cfg(any(not(target_os = "linux"), test))]
impl FallbackScan {
    pub fn new() -> Self {
        FallbackScan { pause: BACKOFF_MIN }
    }

    /// Sleeps out one backoff step (capped by `timeout`), doubles the
    /// next step, and optimistically marks every wanted descriptor
    /// ready — callers' nonblocking operations absorb the false
    /// positives as `WouldBlock`.
    pub fn wait(&mut self, wants: &mut [Want], timeout: Duration) -> usize {
        let pause = self.pause.min(timeout);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        self.pause = (self.pause * 2).min(BACKOFF_MAX);
        let mut ready = 0usize;
        for w in wants.iter_mut() {
            w.ready_read = w.read;
            w.ready_write = w.write;
            if w.ready_read || w.ready_write {
                ready += 1;
            }
        }
        ready
    }

    pub fn note_progress(&mut self) {
        self.pause = BACKOFF_MIN;
    }

    #[cfg(test)]
    fn current_pause(&self) -> Duration {
        self.pause
    }
}

/// Blocking readiness queries over a set of descriptors: `poll(2)` on
/// Linux, the adaptive [`FallbackScan`] everywhere else.
#[derive(Debug)]
pub(crate) struct Readiness {
    #[cfg(not(target_os = "linux"))]
    scan: FallbackScan,
}

impl Readiness {
    pub fn new() -> Self {
        Readiness {
            #[cfg(not(target_os = "linux"))]
            scan: FallbackScan::new(),
        }
    }

    /// Blocks until at least one wanted descriptor is (possibly) ready
    /// or `timeout` elapses, filling in the `ready_*` flags. Returns
    /// the number of descriptors flagged ready; `0` means the timeout
    /// passed (or the wait was interrupted) with nothing to do.
    #[cfg(target_os = "linux")]
    pub fn wait(&mut self, wants: &mut [Want], timeout: Duration) -> io::Result<usize> {
        for w in wants.iter_mut() {
            w.ready_read = false;
            w.ready_write = false;
        }
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(wants.len());
        let mut slots: Vec<usize> = Vec::with_capacity(wants.len());
        for (i, w) in wants.iter().enumerate() {
            let mut events = 0i16;
            if w.read {
                events |= sys::POLLIN;
            }
            if w.write {
                events |= sys::POLLOUT;
            }
            if events != 0 {
                fds.push(sys::PollFd {
                    fd: w.fd,
                    events,
                    revents: 0,
                });
                slots.push(i);
            }
        }
        if fds.is_empty() {
            if !timeout.is_zero() {
                std::thread::sleep(timeout);
            }
            return Ok(0);
        }
        // Round sub-millisecond timeouts up so a short budget blocks
        // instead of degenerating into a busy spin.
        let millis = if timeout.is_zero() {
            0
        } else {
            timeout.as_millis().clamp(1, i32::MAX as u128) as i32
        };
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, millis) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let mut ready = 0usize;
        for (pf, slot) in fds.iter().zip(&slots) {
            let w = &mut wants[*slot];
            // Errors and hangups surface as read-readiness: the next
            // read observes the EOF/error, which is exactly how the
            // round engine learns a peer crashed.
            w.ready_read =
                w.read && (pf.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP)) != 0;
            w.ready_write = w.write && (pf.revents & (sys::POLLOUT | sys::POLLERR)) != 0;
            if w.ready_read || w.ready_write {
                ready += 1;
            }
        }
        Ok(ready)
    }

    /// See the Linux variant; here the [`FallbackScan`] supplies
    /// optimistic readiness after an adaptive pause.
    #[cfg(not(target_os = "linux"))]
    pub fn wait(&mut self, wants: &mut [Want], timeout: Duration) -> io::Result<usize> {
        Ok(self.scan.wait(wants, timeout))
    }

    /// Tells the backoff that real work happened (fallback only;
    /// `poll(2)` needs no pacing hint).
    pub fn note_progress(&mut self) {
        #[cfg(not(target_os = "linux"))]
        self.scan.note_progress();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn fallback_scan_backs_off_and_resets() {
        let mut scan = FallbackScan::new();
        let mut wants = [Want::readable(0)];
        assert_eq!(scan.wait(&mut wants, Duration::from_millis(1)), 1);
        assert!(wants[0].ready_read);
        assert!(!wants[0].ready_write);
        // Idle waits double the pause up to the ceiling...
        for _ in 0..16 {
            scan.wait(&mut wants, Duration::ZERO);
        }
        assert_eq!(scan.current_pause(), BACKOFF_MAX);
        // ...and progress snaps it back to the floor.
        scan.note_progress();
        assert_eq!(scan.current_pause(), BACKOFF_MIN);
    }

    #[test]
    fn wait_times_out_on_silent_socket_and_wakes_on_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut readiness = Readiness::new();
        // Nothing written yet: on Linux the wait must report nothing
        // ready; the fallback may report optimistically, but the
        // nonblocking read below disambiguates either way.
        let mut wants = [Want::readable(fd_of(&server))];
        let _ = readiness
            .wait(&mut wants, Duration::from_millis(5))
            .unwrap();
        let mut buf = [0u8; 8];
        if wants[0].ready_read {
            let err = (&server).read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }

        client.write_all(b"ping").unwrap();
        readiness.note_progress();
        // With data in flight the wake must come quickly and the read
        // must succeed.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut wants = [Want::readable(fd_of(&server))];
            readiness
                .wait(&mut wants, Duration::from_millis(10))
                .unwrap();
            if wants[0].ready_read {
                match (&server).read(&mut buf) {
                    Ok(n) => {
                        assert_eq!(&buf[..n], b"ping");
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read failed: {}", e),
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "data never became readable"
            );
        }
    }

    #[test]
    fn wait_reports_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        let mut readiness = Readiness::new();
        let mut wants = [Want::duplex(fd_of(&client), true)];
        readiness
            .wait(&mut wants, Duration::from_millis(100))
            .unwrap();
        assert!(
            wants[0].ready_write,
            "an idle socket's send buffer is writable"
        );
    }
}
