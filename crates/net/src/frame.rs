//! Wire frames: the byte strings that actually cross a transport.
//!
//! Every message is shipped as a *frame*:
//!
//! ```text
//!     +----------------+---------------------------------------+
//!     | version (1 B)  | canonical message encoding ([`Wire`]) |
//!     +----------------+---------------------------------------+
//! ```
//!
//! The version byte is the whole negotiation story: a receiver that sees
//! an unknown version rejects the frame ([`CodecError::UnsupportedVersion`])
//! instead of guessing at the layout. The payload is decoded *strictly* —
//! trailing bytes, unknown tags, non-canonical scalars and invalid points
//! all fail — so two honest receivers can never disagree about whether a
//! frame is well-formed (the property the DKG's public disqualification
//! logic relies on).

use borndist_pairing::codec::{CodecError, Wire};

/// Current wire-format version, the first byte of every frame.
pub const WIRE_VERSION: u8 = 1;

/// Encodes a message into a versioned frame.
pub fn encode_frame<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.encoded_len());
    out.push(WIRE_VERSION);
    msg.encode_to(&mut out);
    out
}

/// Decodes a versioned frame, strictly.
///
/// # Errors
///
/// [`CodecError::UnexpectedEnd`] on an empty frame,
/// [`CodecError::UnsupportedVersion`] on a version byte other than
/// [`WIRE_VERSION`], and any payload [`CodecError`] (including
/// `TrailingBytes`) from the strict message decode.
pub fn decode_frame<M: Wire>(frame: &[u8]) -> Result<M, CodecError> {
    let (&version, payload) = frame.split_first().ok_or(CodecError::UnexpectedEnd)?;
    if version != WIRE_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    M::decode_exact(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(&(7u32, vec![1u64, 2]));
        assert_eq!(frame[0], WIRE_VERSION);
        assert_eq!(frame.len(), 1 + 4 + 4 + 16);
        let back: (u32, Vec<u64>) = decode_frame(&frame).unwrap();
        assert_eq!(back, (7, vec![1, 2]));
    }

    #[test]
    fn empty_frame_rejected() {
        assert_eq!(decode_frame::<u32>(&[]), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn unknown_version_rejected() {
        let mut frame = encode_frame(&5u32);
        frame[0] = 0x7f;
        assert_eq!(
            decode_frame::<u32>(&frame),
            Err(CodecError::UnsupportedVersion(0x7f))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_frame(&5u32);
        frame.push(0);
        assert_eq!(
            decode_frame::<u32>(&frame),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }
}
