//! The TCP transport: one player per [`TcpTransport`], real
//! `std::net::TcpStream` sockets between players — the transport that
//! lets a protocol run span OS processes and machines.
//!
//! ## Mesh formation
//!
//! Every player knows the listen address of every peer. Connections are
//! keyed by player id: the **higher** id dials the **lower** id (with
//! retry-and-backoff, so start order does not matter), and a
//! [`Envelope::Hello`]/[`Envelope::HelloAck`] handshake pins who is on
//! each end before any protocol byte flows. One acceptor loop collects
//! the inbound half of the mesh while the dials proceed; after that,
//! one reader thread per peer turns the socket into decoded
//! [`Envelope`]s (the same scoped-thread discipline as
//! [`borndist_parallel`]'s workers).
//!
//! ## Rounds over sockets
//!
//! The paper's protocols are round-based, so the transport recreates the
//! lockstep barrier with explicit markers: all of a round's payload
//! envelopes are followed by [`Envelope::EndRound`] on every link, and a
//! player enters round `r + 1` once every live peer has closed round
//! `r`. TCP's per-link ordering makes that exact — a peer can run at
//! most one round ahead, and early frames are parked per round until
//! their barrier opens. A player that terminates sends
//! [`Envelope::Finished`] (which satisfies every future barrier) and a
//! peer whose socket dies or that stays silent past the round timeout is
//! treated as crashed: its traffic simply stops, which is exactly the
//! fault the protocols' complaint machinery absorbs.
//!
//! ## Fault injection and metering
//!
//! The same [`DeliveryPolicy`] drives fault injection, applied
//! sender-side exactly like the shared router: frames are metered at
//! their real encoded length *before* tampering, loss-shaped faults act
//! only on private links, and broadcast loops back to the sender
//! locally. Decisions come from the policy's shared per-sender and
//! per-inbox derivations ([`DeliveryPolicy::sender_rng`],
//! [`DeliveryPolicy::reorder_rng`]) — the in-process router draws from
//! the *same* streams in the same order, so even a faulted run injects
//! the identical drop/duplicate/reorder schedule on either transport,
//! and a run's merged [`Metrics`] (see [`Metrics::merge`]) are
//! **byte-identical** to the same protocol over
//! [`crate::ChannelTransport`] — the cross-transport parity gate CI
//! enforces, lossy runs included.

use crate::error::{Error, TcpError};
use crate::mesh::{read_envelope, route_outgoing, write_envelope, RoundState};
use crate::policy::DeliveryPolicy;
use crate::ready::{fd_of, Readiness, Want};
use crate::{BoxedPlayer, Metrics, PlayerId, RoundAction, SimError, TransportStats};
use borndist_pairing::codec::Wire;
use borndist_parallel::{with_parallelism, Parallelism};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

pub use crate::mesh::{Envelope, MAX_ENVELOPE_BYTES};

/// Tuning knobs of a TCP mesh.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Fault injection, identical semantics to the in-process router.
    pub policy: DeliveryPolicy,
    /// Dial attempts per peer before giving up.
    pub dial_attempts: u32,
    /// Initial dial backoff (doubles per attempt).
    pub dial_backoff: Duration,
    /// Backoff ceiling.
    pub dial_backoff_max: Duration,
    /// Wall-clock cap on the whole outbound dialing phase (all peers).
    /// An elapsed deadline surfaces as [`TcpError::DialFailed`] with an
    /// `io::ErrorKind::TimedOut` cause — even when it elapses before the
    /// first connect attempt (e.g. a zero timeout).
    pub dial_timeout: Duration,
    /// How long the acceptor waits for the full inbound mesh.
    pub accept_timeout: Duration,
    /// A live peer silent past this deadline is treated as crashed.
    pub round_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            policy: DeliveryPolicy::reliable(),
            dial_attempts: 40,
            dial_backoff: Duration::from_millis(5),
            dial_backoff_max: Duration::from_millis(500),
            dial_timeout: Duration::from_secs(30),
            accept_timeout: Duration::from_secs(30),
            round_timeout: Duration::from_secs(60),
        }
    }
}

impl TcpOptions {
    /// Default options with the given fault policy.
    pub fn with_policy(policy: DeliveryPolicy) -> Self {
        TcpOptions {
            policy,
            ..Self::default()
        }
    }
}

/// Dials `addr` with exponential backoff — how a mesh member tolerates
/// peers that have not bound their listener yet.
///
/// # Errors
///
/// [`TcpError::DialFailed`] after `attempts` failed connections.
pub fn dial_with_backoff(
    peer: PlayerId,
    addr: SocketAddr,
    attempts: u32,
    backoff: Duration,
    backoff_max: Duration,
) -> Result<TcpStream, TcpError> {
    dial_with_deadline(peer, addr, attempts, backoff, backoff_max, None)
}

/// [`dial_with_backoff`] under an optional wall-clock deadline: gives up
/// as soon as the deadline elapses, including *before the first connect
/// attempt* (an already-expired deadline — e.g. a zero `dial_timeout` —
/// returns [`TcpError::DialFailed`] with a `TimedOut` cause rather than
/// panicking on the missing attempt error).
///
/// # Errors
///
/// [`TcpError::DialFailed`] carrying the attempts actually made and the
/// last connect error, or a synthesized `TimedOut` when none ran.
pub fn dial_with_deadline(
    peer: PlayerId,
    addr: SocketAddr,
    attempts: u32,
    mut backoff: Duration,
    backoff_max: Duration,
    deadline: Option<Instant>,
) -> Result<TcpStream, TcpError> {
    let expired = |now: Instant| deadline.is_some_and(|d| now >= d);
    let mut last = None;
    let mut made = 0u32;
    for attempt in 0..attempts.max(1) {
        if expired(Instant::now()) {
            break;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                made = attempt + 1;
                if attempt + 1 < attempts.max(1) {
                    let mut pause = backoff;
                    if let Some(d) = deadline {
                        pause = pause.min(d.saturating_duration_since(Instant::now()));
                    }
                    std::thread::sleep(pause);
                    backoff = (backoff * 2).min(backoff_max);
                }
            }
        }
    }
    Err(TcpError::DialFailed {
        peer,
        addr,
        attempts: made,
        last: last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "dial deadline elapsed before the first connect attempt",
            )
        }),
    })
}

/// Collects the inbound half of the mesh: accepts until every expected
/// higher-id peer has completed the Hello/HelloAck handshake or the
/// deadline passes. Stray or misaddressed connections are dropped
/// without killing the mesh.
fn accept_mesh(
    listener: TcpListener,
    me: PlayerId,
    expected: BTreeSet<PlayerId>,
    deadline: Instant,
) -> Result<BTreeMap<PlayerId, TcpStream>, TcpError> {
    let mut accepted: BTreeMap<PlayerId, TcpStream> = BTreeMap::new();
    listener.set_nonblocking(true)?;
    let mut readiness = Readiness::new();
    while accepted.len() < expected.len() {
        if Instant::now() >= deadline {
            let missing: Vec<PlayerId> = expected
                .iter()
                .filter(|p| !accepted.contains_key(p))
                .copied()
                .collect();
            return Err(TcpError::AcceptTimeout { missing });
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                readiness.note_progress();
                // The accepted socket must be blocking regardless of
                // what it inherited from the nonblocking listener.
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                match read_envelope(&mut stream) {
                    Ok(Envelope::Hello { from, to })
                        if to == me
                            && expected.contains(&from)
                            && !accepted.contains_key(&from) =>
                    {
                        if write_envelope(&mut stream, &Envelope::HelloAck { from: me }).is_ok() {
                            stream.set_read_timeout(None)?;
                            accepted.insert(from, stream);
                        }
                    }
                    // Wrong target, unknown or duplicate id, malformed
                    // hello: drop the connection and keep accepting.
                    _ => drop(stream),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Block until a connection is pending (or the deadline
                // passes) instead of the old fixed 2 ms sleep-poll: an
                // idle acceptor costs nothing, a busy one wakes at once.
                let budget = deadline.saturating_duration_since(Instant::now());
                let mut wants = [Want::readable(fd_of(&listener))];
                readiness.wait(&mut wants, budget)?;
            }
            Err(e) => return Err(TcpError::Io(e)),
        }
    }
    Ok(accepted)
}

/// An event surfaced by a reader thread.
enum Event {
    Env(PlayerId, Envelope),
    Gone(PlayerId),
}

/// Drives **one** player of a protocol over a TCP mesh. The other
/// players live in other transports — other threads
/// ([`crate::TransportKind::TcpLoopback`]), other processes (the
/// signing daemon), or other machines.
pub struct TcpTransport<M, O> {
    player: BoxedPlayer<M, O>,
    id: PlayerId,
    /// Write halves, one per peer, keyed by id.
    streams: BTreeMap<PlayerId, TcpStream>,
    options: TcpOptions,
}

impl<M: Wire, O> TcpTransport<M, O> {
    /// Binds `listen` and joins the mesh described by `peers`
    /// (id → address of every *other* player).
    ///
    /// # Errors
    ///
    /// Bind/dial/handshake failures as [`TcpError`] variants.
    pub fn connect(
        player: BoxedPlayer<M, O>,
        listen: SocketAddr,
        peers: BTreeMap<PlayerId, SocketAddr>,
        options: TcpOptions,
    ) -> Result<Self, Error> {
        let listener = TcpListener::bind(listen)?;
        Self::connect_with_listener(player, listener, peers, options)
    }

    /// [`Self::connect`] with a pre-bound listener (lets a caller bind
    /// port 0 first and publish the real address).
    ///
    /// # Errors
    ///
    /// See [`Self::connect`].
    pub fn connect_with_listener(
        player: BoxedPlayer<M, O>,
        listener: TcpListener,
        peers: BTreeMap<PlayerId, SocketAddr>,
        options: TcpOptions,
    ) -> Result<Self, Error> {
        let id = player.id();
        if peers.contains_key(&id) {
            return Err(SimError::DuplicatePlayer(id).into());
        }
        // The higher id dials; the lower id accepts.
        let expected_inbound: BTreeSet<PlayerId> =
            peers.keys().copied().filter(|p| *p > id).collect();
        let to_dial: Vec<(PlayerId, SocketAddr)> = peers
            .iter()
            .filter(|(p, _)| **p < id)
            .map(|(p, a)| (*p, *a))
            .collect();

        let acceptor = {
            let expected = expected_inbound.clone();
            let deadline = Instant::now() + options.accept_timeout;
            std::thread::spawn(move || accept_mesh(listener, id, expected, deadline))
        };

        let mut streams = BTreeMap::new();
        let dial_deadline = Instant::now() + options.dial_timeout;
        for (peer, addr) in to_dial {
            let mut stream = dial_with_deadline(
                peer,
                addr,
                options.dial_attempts,
                options.dial_backoff,
                options.dial_backoff_max,
                Some(dial_deadline),
            )?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(options.accept_timeout))?;
            write_envelope(&mut stream, &Envelope::Hello { from: id, to: peer })?;
            match read_envelope(&mut stream) {
                Ok(Envelope::HelloAck { from }) if from == peer => {}
                Ok(other) => {
                    return Err(TcpError::Handshake {
                        peer,
                        reason: format!("expected HelloAck from {}, got {:?}", peer, other),
                    }
                    .into())
                }
                Err(e) => {
                    return Err(TcpError::Handshake {
                        peer,
                        reason: format!("handshake read failed: {}", e),
                    }
                    .into())
                }
            }
            stream.set_read_timeout(None)?;
            streams.insert(peer, stream);
        }

        let inbound = acceptor
            .join()
            .expect("acceptor thread panicked")
            .map_err(Error::Tcp)?;
        streams.extend(inbound);

        Ok(TcpTransport {
            player,
            id,
            streams,
            options,
        })
    }

    /// Runs this player to completion, returning its output and the
    /// **local** metrics (this player's sends only — merge across the
    /// mesh with [`Metrics::merge`] for the global view).
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if the player is still running
    /// after `max_rounds`; [`SimError::UnknownRecipient`] on a
    /// misaddressed frame; socket failures during the run are treated as
    /// peer crashes, not errors.
    pub fn run(self, max_rounds: usize) -> Result<(O, Metrics), Error> {
        let (out, metrics, _) = self.run_with_stats(max_rounds)?;
        Ok((out, metrics))
    }

    /// [`Self::run`], additionally returning the socket-layer
    /// [`TransportStats`] (connection high-water, frames in/out).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_with_stats(
        mut self,
        max_rounds: usize,
    ) -> Result<(O, Metrics, TransportStats), Error> {
        let mut stats = TransportStats {
            connections_high_water: self.streams.len() as u64,
            ..TransportStats::default()
        };
        let (event_tx, event_rx) = mpsc::channel::<Event>();
        let mut reader_streams: Vec<(PlayerId, TcpStream)> = Vec::new();
        for (pid, stream) in &self.streams {
            reader_streams.push((*pid, stream.try_clone()?));
        }

        let result = std::thread::scope(|scope| {
            for (pid, mut stream) in reader_streams {
                let tx = event_tx.clone();
                scope.spawn(move || loop {
                    match read_envelope(&mut stream) {
                        Ok(env) => {
                            if tx.send(Event::Env(pid, env)).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            let _ = tx.send(Event::Gone(pid));
                            break;
                        }
                    }
                });
            }
            drop(event_tx);

            let out = self.drive(max_rounds, &event_rx, &mut stats);
            // Unblock the reader threads whatever happened: once every
            // socket is shut down they hit EOF and exit, so the scope
            // join cannot deadlock (and peers see the disconnect instead
            // of waiting out their round timeout on a wedged mesh).
            for stream in self.streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            drop(event_rx);
            out
        });

        result.map(|(out, metrics)| (out, metrics, stats))
    }

    /// The round engine (runs on the caller's thread). The routing,
    /// metering and barrier logic is the shared [`crate::mesh`] engine —
    /// only the byte movement (blocking writes here, reader threads
    /// feeding `events`) is transport-specific.
    fn drive(
        &mut self,
        max_rounds: usize,
        events: &mpsc::Receiver<Event>,
        stats: &mut TransportStats,
    ) -> Result<(O, Metrics), Error> {
        let policy = self.options.policy.clone();
        let mut metrics = Metrics::default();
        let mut send_rng = policy.sender_rng(self.id);
        let mut state = RoundState::new(self.streams.keys().copied());
        let run_start = Instant::now();

        for round in 0..max_rounds {
            let round_start = Instant::now();
            let r32 = round as u32;

            let inbox = state.take_inbox::<M>(round, self.id, &policy);

            // Advance the state machine, pinned sequential like the
            // channel transport's workers so nested parallel primitives
            // never oversubscribe the machine.
            let action =
                with_parallelism(Parallelism::Sequential, || self.player.round(round, &inbox));

            match action {
                RoundAction::Finish(out) => {
                    metrics.per_round.push((0, 0));
                    metrics.per_round_elapsed.push(round_start.elapsed());
                    metrics.total_rounds += 1;
                    metrics.elapsed = run_start.elapsed();
                    self.broadcast_control(&Envelope::Finished { round: r32 }, &state, stats);
                    return Ok((out, metrics));
                }
                RoundAction::Continue(outgoing) => {
                    let me = self.id;
                    let streams = &mut self.streams;
                    route_outgoing(
                        me,
                        round,
                        outgoing,
                        &policy,
                        &mut send_rng,
                        &mut state,
                        &mut metrics,
                        &mut |pid, env| match streams.get_mut(&pid) {
                            Some(stream) => {
                                let ok = write_envelope(stream, env).is_ok();
                                if ok {
                                    stats.frames_out += 1;
                                }
                                // A failed write marks the peer crashed
                                // (its reader thread will confirm with an
                                // EOF event).
                                ok
                            }
                            None => true,
                        },
                    )?;
                    self.broadcast_control(&Envelope::EndRound { round: r32 }, &state, stats);
                }
            }

            // Barrier: wait until every live peer has closed this round
            // (EndRound), terminated (Finished), or died (socket EOF or
            // round timeout).
            let deadline = Instant::now() + self.options.round_timeout;
            loop {
                let waiting = state.waiting_on(r32);
                if waiting.is_empty() {
                    break;
                }
                let budget = deadline.saturating_duration_since(Instant::now());
                if budget.is_zero() {
                    // Silent peers past the deadline are crashed as far
                    // as this round is concerned; the complaint/timeout
                    // machinery upstairs deals with their absence.
                    state.gone.extend(waiting);
                    break;
                }
                match events.recv_timeout(budget) {
                    Ok(Event::Env(pid, env)) => {
                        stats.frames_in += 1;
                        state.note_envelope(pid, env, r32);
                    }
                    Ok(Event::Gone(pid)) => {
                        state.gone.insert(pid);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // All reader threads exited: every peer is gone.
                        state.gone.extend(waiting);
                        break;
                    }
                }
            }

            metrics.per_round_elapsed.push(round_start.elapsed());
            metrics.total_rounds += 1;
            metrics.elapsed = run_start.elapsed();
        }

        Err(SimError::RoundLimitExceeded {
            limit: max_rounds,
            unfinished: vec![self.id],
        }
        .into())
    }

    /// Writes a control envelope to every live peer.
    fn broadcast_control(
        &mut self,
        env: &Envelope,
        state: &RoundState,
        stats: &mut TransportStats,
    ) {
        for pid in state.live_peers() {
            if let Some(stream) = self.streams.get_mut(&pid) {
                if write_envelope(stream, env).is_ok() {
                    stats.frames_out += 1;
                }
            }
        }
    }
}

/// Runs a whole player set as an in-process TCP mesh on loopback: one
/// thread per player, each a full [`TcpTransport`] with real sockets and
/// ephemeral ports — how `TransportKind::TcpLoopback` lets every
/// existing driver and fault-injection test run over the real socket
/// path unchanged.
pub(crate) fn run_tcp_loopback<M: Wire, O: Send>(
    players: Vec<BoxedPlayer<M, O>>,
    policy: DeliveryPolicy,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, O>, Metrics), Error> {
    crate::check_unique_ids(&players)?;
    // Bind every listener up front so the mesh addresses are known
    // before any player dials.
    let mut listeners: BTreeMap<PlayerId, TcpListener> = BTreeMap::new();
    let mut addrs: BTreeMap<PlayerId, SocketAddr> = BTreeMap::new();
    for player in &players {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.insert(player.id(), listener.local_addr()?);
        listeners.insert(player.id(), listener);
    }

    let results: Vec<Result<(PlayerId, O, Metrics), Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = players
            .into_iter()
            .map(|player| {
                let id = player.id();
                let listener = listeners.remove(&id).expect("listener bound above");
                let peers: BTreeMap<PlayerId, SocketAddr> = addrs
                    .iter()
                    .filter(|(p, _)| **p != id)
                    .map(|(p, a)| (*p, *a))
                    .collect();
                let options = TcpOptions::with_policy(policy.clone());
                scope.spawn(move || {
                    let transport =
                        TcpTransport::connect_with_listener(player, listener, peers, options)?;
                    let (out, metrics) = transport.run(max_rounds)?;
                    Ok((id, out, metrics))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mesh player thread panicked"))
            .collect()
    });

    let mut outputs = BTreeMap::new();
    let mut locals = Vec::new();
    for result in results {
        let (id, out, metrics) = result?;
        outputs.insert(id, out);
        locals.push(metrics);
    }
    Ok((outputs, Metrics::merge(locals.iter())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outgoing, Protocol, Recipient};
    use borndist_pairing::codec::CodecError;
    use std::io::Write;

    #[test]
    fn envelope_roundtrip() {
        for env in [
            Envelope::Hello { from: 3, to: 1 },
            Envelope::HelloAck { from: 1 },
            Envelope::Payload {
                round: 7,
                broadcast: true,
                frame: vec![1, 2, 3],
            },
            Envelope::EndRound { round: 9 },
            Envelope::Finished { round: 2 },
        ] {
            assert_eq!(Envelope::decode_exact(&env.encode()).unwrap(), env);
        }
        assert!(matches!(
            Envelope::decode_exact(&[9]),
            Err(CodecError::InvalidTag(9))
        ));
        // Non-boolean broadcast flag is rejected.
        let mut bytes = Envelope::Payload {
            round: 0,
            broadcast: false,
            frame: vec![],
        }
        .encode();
        bytes[5] = 2;
        assert!(matches!(
            Envelope::decode_exact(&bytes),
            Err(CodecError::InvalidTag(2))
        ));
    }

    #[test]
    fn dial_backoff_waits_for_late_listener() {
        // Reserve a port, free it, and only re-bind it after a delay —
        // the dialer must ride its backoff schedule through the gap.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let listener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).unwrap();
            let _ = listener.accept().unwrap();
        });
        let stream = dial_with_backoff(
            1,
            addr,
            60,
            Duration::from_millis(5),
            Duration::from_millis(50),
        )
        .expect("dial must succeed once the listener appears");
        drop(stream);
        listener.join().unwrap();
    }

    #[test]
    fn dial_with_expired_deadline_errors_instead_of_panicking() {
        // Regression: a deadline that elapses before the first connect
        // attempt used to hit `last.expect("at least one attempt")`.
        // It must surface as DialFailed with a TimedOut cause and zero
        // attempts made.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let err = dial_with_deadline(
            7,
            addr,
            3,
            Duration::from_millis(1),
            Duration::from_millis(2),
            Some(Instant::now()),
        )
        .unwrap_err();
        match err {
            TcpError::DialFailed {
                peer,
                attempts,
                last,
                ..
            } => {
                assert_eq!(peer, 7);
                assert_eq!(attempts, 0, "no connect attempt fits a zero timeout");
                assert_eq!(last.kind(), std::io::ErrorKind::TimedOut);
            }
            other => panic!("unexpected error: {}", other),
        }
    }

    #[test]
    fn dial_deadline_caps_the_backoff_schedule() {
        // A deadline between attempts must stop the schedule early with
        // the true connect error preserved (not the synthetic TimedOut).
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let start = Instant::now();
        let err = dial_with_deadline(
            2,
            addr,
            1_000,
            Duration::from_millis(10),
            Duration::from_millis(10),
            Some(Instant::now() + Duration::from_millis(40)),
        )
        .unwrap_err();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must cut the 1000-attempt schedule short"
        );
        match err {
            TcpError::DialFailed { attempts, last, .. } => {
                assert!(attempts >= 1, "at least one real attempt ran");
                assert_ne!(last.kind(), std::io::ErrorKind::TimedOut);
            }
            other => panic!("unexpected error: {}", other),
        }
    }

    #[test]
    fn dial_gives_up_with_context() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let err = dial_with_backoff(
            5,
            addr,
            3,
            Duration::from_millis(1),
            Duration::from_millis(2),
        )
        .unwrap_err();
        match err {
            TcpError::DialFailed { peer, attempts, .. } => {
                assert_eq!(peer, 5);
                assert_eq!(attempts, 3);
            }
            other => panic!("unexpected error: {}", other),
        }
    }

    /// Player 1 finishes (and closes its sockets) at round 1 while
    /// players 2 and 3 keep exchanging frames until round 3: the
    /// mid-round disconnect must read as *silence* — the survivors see
    /// EOF, mark the peer gone, stop waiting for its round barriers,
    /// and complete normally. This is the socket-level half of the
    /// crash fault model; protocols translate the silence into
    /// complaints/disqualification at their own layer.
    #[test]
    fn peer_disconnect_mid_round_reads_as_silence() {
        struct Chatter {
            id: PlayerId,
            quit_after: usize,
            from_one: usize,
        }
        impl Protocol for Chatter {
            type Message = u64;
            type Output = usize;
            fn round(
                &mut self,
                round: usize,
                inbox: &[crate::Delivered<u64>],
            ) -> RoundAction<u64, usize> {
                self.from_one += inbox.iter().filter(|d| d.from == 1).count();
                if round >= self.quit_after {
                    return RoundAction::Finish(self.from_one);
                }
                RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Broadcast,
                    msg: self.id as u64 * 100 + round as u64,
                }])
            }
            fn id(&self) -> PlayerId {
                self.id
            }
        }

        let players: Vec<BoxedPlayer<u64, usize>> = vec![
            Box::new(Chatter {
                id: 1,
                quit_after: 1,
                from_one: 0,
            }),
            Box::new(Chatter {
                id: 2,
                quit_after: 3,
                from_one: 0,
            }),
            Box::new(Chatter {
                id: 3,
                quit_after: 3,
                from_one: 0,
            }),
        ];
        let (outputs, _) =
            run_tcp_loopback(players, DeliveryPolicy::reliable(), 10).expect("mesh completes");
        assert_eq!(outputs.len(), 3, "survivors and quitter all finish");
        // Player 1 broadcast in rounds 0 only (it finished in round 1
        // before sending more); each survivor therefore saw exactly one
        // frame from it, and heard nothing after the disconnect.
        assert_eq!(outputs[&2], 1);
        assert_eq!(outputs[&3], 1);
    }

    #[test]
    fn oversized_envelope_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&(u32::MAX).to_be_bytes())
                .expect("write length");
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_envelope(&mut stream).unwrap_err();
        assert!(matches!(
            err,
            Error::Tcp(TcpError::OversizedEnvelope { .. })
        ));
        writer.join().unwrap();
    }
}
