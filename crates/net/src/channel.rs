//! The channel transport: every player on its own OS thread, frames
//! crossing real `mpsc` channels, faults injected by a
//! [`DeliveryPolicy`].
//!
//! Per round, the router thread hands each live player its inbox of raw
//! frames over a channel; the player thread decodes and validates them
//! (in parallel across players — decoding compressed points is real
//! work), advances its state machine, encodes its outgoing messages and
//! sends the frames back. The router meters them, applies the policy
//! (drops, duplicates, reorder, partitions, outages, tampering) and
//! builds the next round's inboxes.
//!
//! Rounds are still barriers — the paper's protocols are round-based —
//! but *within* a round all players compute concurrently, and nothing
//! but bytes ever crosses a player boundary. Worker threads pin the
//! [`borndist_parallel`] setting to `Sequential` while a player runs, so
//! the pairing crate's own parallel primitives never oversubscribe the
//! machine (the same discipline `par_map` workers use).

use crate::frame::{decode_frame, encode_frame};
use crate::policy::DeliveryPolicy;
use crate::router::{FrameSend, RawDelivered, Router};
use crate::{BoxedPlayer, Delivered, Metrics, PlayerId, Recipient, RoundAction, SimError};
use borndist_parallel::{with_parallelism, Parallelism};
use std::collections::{BTreeMap, HashSet};
use std::sync::mpsc;
use std::time::Instant;

/// One player's outgoing frames for a round, in send order.
type Sends = Vec<(Recipient, Vec<u8>)>;

/// One player thread's answer for one round.
enum Reply<O> {
    Continue(PlayerId, Sends),
    Finished(PlayerId, O),
    /// The player's `round` panicked; the worker re-raises after sending
    /// this, and the router panics too so the scope propagates instead of
    /// deadlocking on a reply that will never come.
    Panicked(PlayerId),
}

/// Drives [`crate::Protocol`] state machines on one thread per player,
/// with transport faults injected between rounds.
pub struct ChannelTransport<M, O> {
    players: Vec<BoxedPlayer<M, O>>,
    policy: DeliveryPolicy,
    metrics: Metrics,
}

impl<M, O> ChannelTransport<M, O>
where
    M: borndist_pairing::Wire,
    O: Send,
{
    /// Creates a transport over the given players and fault policy.
    ///
    /// # Errors
    ///
    /// Fails if two players share an id.
    pub fn new(players: Vec<BoxedPlayer<M, O>>, policy: DeliveryPolicy) -> Result<Self, SimError> {
        crate::check_unique_ids(&players)?;
        Ok(ChannelTransport {
            players,
            policy,
            metrics: Metrics::default(),
        })
    }

    /// Runs until every player finishes or `max_rounds` is hit.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::LockstepTransport::run`]. Under a lossy
    /// policy, protocols without retransmission may legitimately exhaust
    /// the round budget — the error names who was still waiting.
    pub fn run(&mut self, max_rounds: usize) -> Result<BTreeMap<PlayerId, O>, SimError> {
        let players = std::mem::take(&mut self.players);
        let ids: Vec<PlayerId> = players.iter().map(|p| p.id()).collect();
        // Registration order decides metering order, matching the
        // lockstep transport's player iteration exactly (byte-parity).
        let position: BTreeMap<PlayerId, usize> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let mut router = Router::new(ids.clone(), self.policy.clone());

        let result = std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = mpsc::channel::<Reply<O>>();
            let mut inbox_txs: BTreeMap<PlayerId, mpsc::Sender<(usize, Vec<RawDelivered>)>> =
                BTreeMap::new();

            for mut player in players {
                let pid = player.id();
                let tx = reply_tx.clone();
                let (inbox_tx, inbox_rx) = mpsc::channel::<(usize, Vec<RawDelivered>)>();
                inbox_txs.insert(pid, inbox_tx);
                scope.spawn(move || {
                    while let Ok((round, raw_inbox)) = inbox_rx.recv() {
                        let inbox: Vec<Delivered<M>> = raw_inbox
                            .into_iter()
                            .map(|raw| Delivered {
                                from: raw.from,
                                broadcast: raw.broadcast,
                                msg: decode_frame(&raw.frame),
                            })
                            .collect();
                        let action = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            with_parallelism(Parallelism::Sequential, || {
                                player.round(round, &inbox)
                            })
                        }));
                        let action = match action {
                            Ok(action) => action,
                            Err(payload) => {
                                let _ = tx.send(Reply::Panicked(pid));
                                std::panic::resume_unwind(payload);
                            }
                        };
                        let reply = match action {
                            RoundAction::Finish(out) => Reply::Finished(pid, out),
                            RoundAction::Continue(outgoing) => Reply::Continue(
                                pid,
                                outgoing
                                    .into_iter()
                                    .map(|out| (out.to, encode_frame(&out.msg)))
                                    .collect(),
                            ),
                        };
                        let done = matches!(reply, Reply::Finished(..));
                        if tx.send(reply).is_err() || done {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);

            let mut inboxes: BTreeMap<PlayerId, Vec<RawDelivered>> = BTreeMap::new();
            let mut outputs: BTreeMap<PlayerId, O> = BTreeMap::new();
            let mut finished: HashSet<PlayerId> = HashSet::new();
            let run_start = Instant::now();

            for round in 0..max_rounds {
                let round_start = Instant::now();
                // Dispatch inboxes to every live player...
                let mut live = 0usize;
                for id in &ids {
                    if finished.contains(id) {
                        continue;
                    }
                    live += 1;
                    let inbox = inboxes.remove(id).unwrap_or_default();
                    // A send can only fail if the player thread panicked;
                    // the scope will propagate that panic at join.
                    let _ = inbox_txs[id].send((round, inbox));
                }
                // ...collect exactly one reply from each.
                let mut replies: Vec<(usize, PlayerId, Sends)> = Vec::new();
                for _ in 0..live {
                    match reply_rx.recv() {
                        Ok(Reply::Finished(pid, out)) => {
                            outputs.insert(pid, out);
                            finished.insert(pid);
                            inbox_txs.remove(&pid);
                        }
                        Ok(Reply::Continue(pid, sends)) => {
                            replies.push((position[&pid], pid, sends));
                        }
                        Ok(Reply::Panicked(pid)) => {
                            panic!("player {} panicked mid-round", pid)
                        }
                        // A worker died without replying (panic): leave
                        // the scope so the panic surfaces at join.
                        Err(_) => panic!("player thread terminated mid-round"),
                    }
                }
                replies.sort_by_key(|(pos, _, _)| *pos);
                let sends: Vec<FrameSend> = replies
                    .into_iter()
                    .flat_map(|(_, pid, sends)| {
                        sends.into_iter().map(move |(to, frame)| FrameSend {
                            from: pid,
                            to,
                            frame,
                        })
                    })
                    .collect();

                inboxes = router.route(round, sends, &finished)?;
                router.finish_round(round_start, run_start);

                if finished.len() == ids.len() {
                    return Ok(outputs);
                }
            }
            Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                unfinished: ids
                    .iter()
                    .copied()
                    .filter(|id| !finished.contains(id))
                    .collect(),
            })
        });

        self.metrics = router.metrics;
        result
    }

    /// Traffic statistics of the completed (or aborted) run.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}
