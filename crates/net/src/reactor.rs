//! The event-driven TCP transport: **one poll loop, zero extra
//! threads** per player.
//!
//! [`crate::tcp::TcpTransport`] spends one reader thread per peer plus
//! an acceptor — O(n) threads per process, O(n²) across an in-process
//! mesh, which is what capped the real-socket experiments near n=128.
//! [`ReactorTransport`] runs the same protocol, byte-for-byte, on the
//! caller's thread alone: every peer socket is nonblocking and owned by
//! a reactor that waits for readiness ([`crate::ready`] — `poll(2)` on
//! Linux, an adaptive backoff scan elsewhere), reads length-prefixed
//! envelopes through per-peer incremental buffers
//! ([`crate::mesh::FrameReader`], a partial-read state machine replacing
//! the blocking `read_exact` pair), and drains per-peer write queues
//! with partial-write tracking ([`crate::mesh::WriteQueue`]) so a large
//! simultaneous fan-out can never deadlock on full kernel buffers: an
//! unwritable socket just keeps its bytes queued in user space until
//! the receiver catches up.
//!
//! Mesh formation is the same higher-id-dials-lower-id scheme as the
//! threaded transport, but fully interleaved in one loop: the reactor
//! keeps accepting and handshaking inbound peers *while* its own dials
//! and `HelloAck` waits are in flight. Because a player only ever waits
//! on strictly lower ids (and acks depend on nothing), the wait graph
//! is acyclic and single-threaded formation cannot deadlock.
//!
//! Determinism: all routing, metering, fault injection and barrier
//! logic is the shared [`crate::mesh`] round engine — the reactor moves
//! bytes, it never decides which frames exist. A run's merged
//! [`Metrics`] are therefore byte-identical to the same protocol over
//! [`crate::ChannelTransport`] or the threaded TCP transport, lossy
//! runs included.

use crate::error::{Error, TcpError};
use crate::mesh::{
    frame_envelope, route_outgoing, Envelope, Flush, FrameReader, RoundState, WriteQueue,
};
use crate::policy::DeliveryPolicy;
use crate::ready::{fd_of, Readiness, Want};
use crate::tcp::TcpOptions;
use crate::{BoxedPlayer, Metrics, PlayerId, RoundAction, SimError, TransportStats};
use borndist_pairing::codec::Wire;
use borndist_parallel::{with_parallelism, Parallelism};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Raises the process file-descriptor limit to at least `needed`
/// descriptors (soft limit, capped by the hard limit). Returns whether
/// `needed` descriptors are available — large in-process meshes
/// (n=512 ⇒ ~n² sockets) call this before binding and skip with a
/// logged reason when the host cannot provide them.
#[cfg(target_os = "linux")]
pub fn ensure_fd_capacity(needed: u64) -> bool {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return false;
        }
        if lim.cur >= needed {
            return true;
        }
        if lim.max >= needed {
            let raised = RLimit {
                cur: needed,
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
                return true;
            }
        }
        false
    }
}

/// Non-Linux fallback: no portable rlimit binding, so report capacity
/// optimistically and let socket creation surface any real limit.
#[cfg(not(target_os = "linux"))]
pub fn ensure_fd_capacity(_needed: u64) -> bool {
    true
}

/// One peer socket owned by the reactor.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    /// Envelopes that arrived during the handshake, hard on the heels
    /// of the peer's `HelloAck` (a fast peer may enter round 0 while
    /// our connect is still in flight). Drained into the round engine
    /// before the first barrier — dropping them would lose real
    /// protocol frames.
    backlog: Vec<Envelope>,
    /// Set on EOF, socket error or framing violation; a dead conn is
    /// never polled again and its peer is `gone` to the round engine.
    dead: bool,
}

impl Conn {
    /// Adopts a post-handshake socket, keeping the handshake reader
    /// (it may hold a partially received frame) and any envelopes
    /// pulled past the handshake word.
    fn new(stream: TcpStream, reader: FrameReader, backlog: Vec<Envelope>) -> Self {
        Conn {
            stream,
            reader,
            wq: WriteQueue::new(),
            backlog,
            dead: false,
        }
    }
}

/// Writes `buf` to a nonblocking stream, waiting for writability
/// between partial writes — only used for the two tiny handshake words,
/// where queueing would complicate the state machine for no benefit.
fn write_all_nb(
    stream: &mut TcpStream,
    buf: &[u8],
    readiness: &mut Readiness,
    deadline: Instant,
) -> std::io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let budget = deadline.saturating_duration_since(Instant::now());
                if budget.is_zero() {
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                let mut wants = [Want::writable(fd_of(stream))];
                readiness.wait(&mut wants, budget.min(Duration::from_millis(50)))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// An inbound connection whose `Hello` has not completed yet.
struct PendingInbound {
    stream: TcpStream,
    reader: FrameReader,
}

/// Where the outbound dial plan stands (one peer at a time, ascending —
/// each completed ack proves the lower peer is accepting, so the plan
/// never waits on anything a later step could unblock).
enum DialPhase {
    /// Pick the next peer off the plan.
    Next,
    /// Between connect attempts to `peer` (backoff running).
    Retry {
        peer: PlayerId,
        addr: SocketAddr,
        attempts_left: u32,
        backoff: Duration,
        retry_at: Instant,
    },
    /// `Hello` sent; waiting for the peer's `HelloAck`.
    Ack {
        peer: PlayerId,
        stream: TcpStream,
        reader: FrameReader,
        deadline: Instant,
    },
    /// Every outbound peer is connected and acked.
    Done,
}

/// Drives **one** player of a protocol over a TCP mesh with a single
/// event loop on the caller's thread — no per-peer threads, no
/// acceptor thread. See the module docs for the full design.
pub struct ReactorTransport<M, O> {
    player: BoxedPlayer<M, O>,
    id: PlayerId,
    conns: BTreeMap<PlayerId, Conn>,
    options: TcpOptions,
    readiness: Readiness,
    stats: TransportStats,
}

impl<M: Wire, O> ReactorTransport<M, O> {
    /// Binds `listen` and joins the mesh described by `peers`
    /// (id → address of every *other* player).
    ///
    /// # Errors
    ///
    /// Bind/dial/handshake failures as [`TcpError`] variants.
    pub fn connect(
        player: BoxedPlayer<M, O>,
        listen: SocketAddr,
        peers: BTreeMap<PlayerId, SocketAddr>,
        options: TcpOptions,
    ) -> Result<Self, Error> {
        let listener = TcpListener::bind(listen)?;
        Self::connect_with_listener(player, listener, peers, options)
    }

    /// [`Self::connect`] with a pre-bound listener (lets a caller bind
    /// port 0 first and publish the real address).
    ///
    /// # Errors
    ///
    /// See [`Self::connect`].
    pub fn connect_with_listener(
        player: BoxedPlayer<M, O>,
        listener: TcpListener,
        peers: BTreeMap<PlayerId, SocketAddr>,
        options: TcpOptions,
    ) -> Result<Self, Error> {
        let id = player.id();
        if peers.contains_key(&id) {
            return Err(SimError::DuplicatePlayer(id).into());
        }
        let expected: BTreeSet<PlayerId> = peers.keys().copied().filter(|p| *p > id).collect();
        let mut dial_plan: Vec<(PlayerId, SocketAddr)> = peers
            .iter()
            .filter(|(p, _)| **p < id)
            .map(|(p, a)| (*p, *a))
            .collect();
        dial_plan.sort_by_key(|(p, _)| *p);
        let mut dial_iter = dial_plan.into_iter();

        listener.set_nonblocking(true)?;
        let mut readiness = Readiness::new();
        let mut conns: BTreeMap<PlayerId, Conn> = BTreeMap::new();
        let mut inbound: Vec<PendingInbound> = Vec::new();
        let accept_deadline = Instant::now() + options.accept_timeout;
        let dial_deadline = Instant::now() + options.dial_timeout;
        let mut phase = DialPhase::Next;

        loop {
            let inbound_done = conns.keys().filter(|p| **p > id).count() == expected.len();
            if inbound_done && matches!(phase, DialPhase::Done) {
                break;
            }
            if !inbound_done && Instant::now() >= accept_deadline {
                let missing: Vec<PlayerId> = expected
                    .iter()
                    .filter(|p| !conns.contains_key(p))
                    .copied()
                    .collect();
                return Err(TcpError::AcceptTimeout { missing }.into());
            }
            let mut progressed = false;

            // 1. Drain the accept queue (keeping the backlog clear even
            //    while our own dials are mid-flight).
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true)?;
                        stream.set_nodelay(true)?;
                        inbound.push(PendingInbound {
                            stream,
                            reader: FrameReader::new(),
                        });
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(TcpError::Io(e).into()),
                }
            }

            // 2. Progress inbound handshakes. Stray, misaddressed,
            //    duplicate or malformed hellos drop the connection
            //    without killing the mesh — same policy as the threaded
            //    acceptor.
            let mut i = 0;
            while i < inbound.len() {
                let pend = &mut inbound[i];
                let pull = pend.reader.pull(&mut pend.stream);
                let mut drop_it = pull.closed;
                let mut envs = pull.envelopes.into_iter();
                if let Some(env) = envs.next() {
                    if let Envelope::Hello { from, to } = env {
                        if to == id && expected.contains(&from) && !conns.contains_key(&from) {
                            let mut done = inbound.swap_remove(i);
                            let ack = frame_envelope(&Envelope::HelloAck { from: id });
                            if write_all_nb(&mut done.stream, &ack, &mut readiness, accept_deadline)
                                .is_ok()
                            {
                                conns.insert(
                                    from,
                                    Conn::new(done.stream, done.reader, envs.collect()),
                                );
                            }
                            progressed = true;
                            continue;
                        }
                    }
                    drop_it = true;
                }
                if drop_it {
                    inbound.swap_remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }

            // 3. Advance the dial plan one step.
            phase = match phase {
                DialPhase::Next => match dial_iter.next() {
                    None => DialPhase::Done,
                    Some((peer, addr)) => DialPhase::Retry {
                        peer,
                        addr,
                        attempts_left: options.dial_attempts.max(1),
                        backoff: options.dial_backoff,
                        retry_at: Instant::now(),
                    },
                },
                DialPhase::Retry {
                    peer,
                    addr,
                    attempts_left,
                    backoff,
                    retry_at,
                } => {
                    if Instant::now() >= dial_deadline {
                        return Err(TcpError::DialFailed {
                            peer,
                            addr,
                            attempts: options.dial_attempts.max(1) - attempts_left,
                            last: std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "dial deadline elapsed",
                            ),
                        }
                        .into());
                    }
                    if Instant::now() < retry_at {
                        DialPhase::Retry {
                            peer,
                            addr,
                            attempts_left,
                            backoff,
                            retry_at,
                        }
                    } else {
                        match TcpStream::connect(addr) {
                            Ok(mut stream) => {
                                stream.set_nonblocking(true)?;
                                stream.set_nodelay(true)?;
                                let hello = frame_envelope(&Envelope::Hello { from: id, to: peer });
                                write_all_nb(&mut stream, &hello, &mut readiness, dial_deadline)
                                    .map_err(|e| TcpError::Handshake {
                                        peer,
                                        reason: format!("hello write failed: {}", e),
                                    })?;
                                progressed = true;
                                DialPhase::Ack {
                                    peer,
                                    stream,
                                    reader: FrameReader::new(),
                                    deadline: Instant::now() + options.accept_timeout,
                                }
                            }
                            Err(e) => {
                                if attempts_left <= 1 {
                                    return Err(TcpError::DialFailed {
                                        peer,
                                        addr,
                                        attempts: options.dial_attempts.max(1),
                                        last: e,
                                    }
                                    .into());
                                }
                                DialPhase::Retry {
                                    peer,
                                    addr,
                                    attempts_left: attempts_left - 1,
                                    backoff: (backoff * 2).min(options.dial_backoff_max),
                                    retry_at: Instant::now() + backoff,
                                }
                            }
                        }
                    }
                }
                DialPhase::Ack {
                    peer,
                    mut stream,
                    mut reader,
                    deadline,
                } => {
                    let pull = reader.pull(&mut stream);
                    let mut envs = pull.envelopes.into_iter();
                    if let Some(env) = envs.next() {
                        match env {
                            Envelope::HelloAck { from } if from == peer => {
                                // A fast peer may already be in round 0:
                                // whatever followed its ack (complete
                                // envelopes and partial bytes alike)
                                // must survive into the run.
                                conns.insert(peer, Conn::new(stream, reader, envs.collect()));
                                progressed = true;
                                DialPhase::Next
                            }
                            other => {
                                return Err(TcpError::Handshake {
                                    peer,
                                    reason: format!(
                                        "expected HelloAck from {}, got {:?}",
                                        peer, other
                                    ),
                                }
                                .into())
                            }
                        }
                    } else if pull.closed {
                        return Err(TcpError::Handshake {
                            peer,
                            reason: "connection closed during handshake".into(),
                        }
                        .into());
                    } else if Instant::now() >= deadline {
                        return Err(TcpError::Handshake {
                            peer,
                            reason: "HelloAck never arrived".into(),
                        }
                        .into());
                    } else {
                        DialPhase::Ack {
                            peer,
                            stream,
                            reader,
                            deadline,
                        }
                    }
                }
                DialPhase::Done => DialPhase::Done,
            };

            if progressed {
                readiness.note_progress();
                continue;
            }

            // 4. Nothing moved: block until a socket has something for
            //    us (or a backoff/deadline step is due).
            let mut wants = vec![Want::readable(fd_of(&listener))];
            for pend in &inbound {
                wants.push(Want::readable(fd_of(&pend.stream)));
            }
            let mut budget = Duration::from_millis(50);
            match &phase {
                DialPhase::Retry { retry_at, .. } => {
                    budget = budget.min(retry_at.saturating_duration_since(Instant::now()));
                }
                DialPhase::Ack { stream, .. } => {
                    wants.push(Want::readable(fd_of(stream)));
                }
                _ => {}
            }
            if !budget.is_zero() {
                readiness.wait(&mut wants, budget)?;
            }
        }

        let stats = TransportStats {
            connections_high_water: conns.len() as u64,
            ..TransportStats::default()
        };
        Ok(ReactorTransport {
            player,
            id,
            conns,
            options,
            readiness,
            stats,
        })
    }

    /// Runs this player to completion, returning its output and the
    /// **local** metrics (this player's sends only — merge across the
    /// mesh with [`Metrics::merge`] for the global view).
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if the player is still running
    /// after `max_rounds`; [`SimError::UnknownRecipient`] on a
    /// misaddressed frame; socket failures during the run are treated as
    /// peer crashes, not errors.
    pub fn run(self, max_rounds: usize) -> Result<(O, Metrics), Error> {
        let (out, metrics, _) = self.run_with_stats(max_rounds)?;
        Ok((out, metrics))
    }

    /// [`Self::run`], additionally returning the socket-layer
    /// [`TransportStats`] (connection high-water, frames in/out,
    /// partial-read resumptions).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_with_stats(
        mut self,
        max_rounds: usize,
    ) -> Result<(O, Metrics, TransportStats), Error> {
        let result = self.drive(max_rounds);
        // Close everything whatever happened, so peers observe EOF
        // instead of waiting out their round timeout on a wedged mesh.
        for conn in self.conns.values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.stats.partial_read_resumptions = self
            .conns
            .values()
            .map(|c| c.reader.resumptions())
            .sum::<u64>();
        let stats = self.stats;
        result.map(|(out, metrics)| (out, metrics, stats))
    }

    /// The round engine (the whole transport runs on this one thread).
    fn drive(&mut self, max_rounds: usize) -> Result<(O, Metrics), Error> {
        let policy = self.options.policy.clone();
        let mut metrics = Metrics::default();
        let mut send_rng = policy.sender_rng(self.id);
        let mut state = RoundState::new(self.conns.keys().copied());
        // Frames that raced the handshake park exactly as if they had
        // arrived during round 0's barrier.
        for (pid, conn) in self.conns.iter_mut() {
            for env in std::mem::take(&mut conn.backlog) {
                self.stats.frames_in += 1;
                state.note_envelope(*pid, env, 0);
            }
        }
        let run_start = Instant::now();

        for round in 0..max_rounds {
            let round_start = Instant::now();
            let r32 = round as u32;

            let inbox = state.take_inbox::<M>(round, self.id, &policy);

            // Advance the state machine, pinned sequential like the
            // channel transport's workers so nested parallel primitives
            // never oversubscribe the machine.
            let action =
                with_parallelism(Parallelism::Sequential, || self.player.round(round, &inbox));

            match action {
                RoundAction::Finish(out) => {
                    metrics.per_round.push((0, 0));
                    metrics.per_round_elapsed.push(round_start.elapsed());
                    metrics.total_rounds += 1;
                    metrics.elapsed = run_start.elapsed();
                    self.queue_control(&Envelope::Finished { round: r32 }, &state);
                    self.flush_outgoing(Instant::now() + self.options.round_timeout);
                    return Ok((out, metrics));
                }
                RoundAction::Continue(outgoing) => {
                    let me = self.id;
                    let conns = &mut self.conns;
                    let stats = &mut self.stats;
                    route_outgoing(
                        me,
                        round,
                        outgoing,
                        &policy,
                        &mut send_rng,
                        &mut state,
                        &mut metrics,
                        &mut |pid, env| match conns.get_mut(&pid) {
                            Some(conn) if !conn.dead => {
                                conn.wq.push(env);
                                stats.frames_out += 1;
                                true
                            }
                            Some(_) => false,
                            None => true,
                        },
                    )?;
                    self.queue_control(&Envelope::EndRound { round: r32 }, &state);
                }
            }

            // Barrier: pump the reactor until every live peer has closed
            // this round (EndRound), terminated (Finished), or died
            // (socket EOF or round timeout). Queued writes drain inside
            // the same pump.
            let deadline = Instant::now() + self.options.round_timeout;
            loop {
                let waiting = state.waiting_on(r32);
                if waiting.is_empty() {
                    break;
                }
                let budget = deadline.saturating_duration_since(Instant::now());
                if budget.is_zero() {
                    // Silent peers past the deadline are crashed as far
                    // as this round is concerned; the complaint/timeout
                    // machinery upstairs deals with their absence.
                    state.gone.extend(waiting);
                    break;
                }
                self.pump(&mut state, r32, budget)?;
            }

            metrics.per_round_elapsed.push(round_start.elapsed());
            metrics.total_rounds += 1;
            metrics.elapsed = run_start.elapsed();
        }

        Err(SimError::RoundLimitExceeded {
            limit: max_rounds,
            unfinished: vec![self.id],
        }
        .into())
    }

    /// One reactor turn: wait (≤ `budget`) for readiness across every
    /// live socket, then pull frames and drain write queues wherever
    /// progress is possible.
    fn pump(&mut self, state: &mut RoundState, r32: u32, budget: Duration) -> Result<(), Error> {
        let mut wants = Vec::with_capacity(self.conns.len());
        let mut ids = Vec::with_capacity(self.conns.len());
        for (pid, conn) in self.conns.iter() {
            if conn.dead {
                continue;
            }
            // Read interest always (EOF must be observable); write
            // interest only while bytes are queued.
            wants.push(Want::duplex(fd_of(&conn.stream), !conn.wq.is_empty()));
            ids.push(*pid);
        }
        if wants.is_empty() {
            // Every socket is dead; the barrier's timeout logic decides.
            std::thread::sleep(budget.min(Duration::from_millis(10)));
            return Ok(());
        }
        self.readiness.wait(&mut wants, budget)?;
        let mut progressed = false;
        for (want, pid) in wants.iter().zip(&ids) {
            let conn = self.conns.get_mut(pid).expect("conn exists");
            if want.ready_read {
                let pull = conn.reader.pull(&mut conn.stream);
                if !pull.envelopes.is_empty() {
                    progressed = true;
                }
                for env in pull.envelopes {
                    self.stats.frames_in += 1;
                    state.note_envelope(*pid, env, r32);
                }
                if pull.closed {
                    let conn = self.conns.get_mut(pid).expect("conn exists");
                    conn.dead = true;
                    state.gone.insert(*pid);
                    progressed = true;
                }
            }
            let conn = self.conns.get_mut(pid).expect("conn exists");
            if want.ready_write && !conn.dead && !conn.wq.is_empty() {
                match conn.wq.flush(&mut conn.stream) {
                    Flush::Closed => {
                        conn.dead = true;
                        state.gone.insert(*pid);
                    }
                    Flush::Drained => progressed = true,
                    Flush::Blocked => {}
                }
            }
        }
        if progressed {
            self.readiness.note_progress();
        }
        Ok(())
    }

    /// Queues a control envelope to every live peer.
    fn queue_control(&mut self, env: &Envelope, state: &RoundState) {
        for pid in state.live_peers() {
            if let Some(conn) = self.conns.get_mut(&pid) {
                if !conn.dead {
                    conn.wq.push(env);
                    self.stats.frames_out += 1;
                }
            }
        }
    }

    /// Best-effort drain of every write queue before shutdown (the
    /// `Finished` word must reach peers or they wait out a timeout).
    fn flush_outgoing(&mut self, deadline: Instant) {
        loop {
            let mut wants = Vec::new();
            let mut ids = Vec::new();
            for (pid, conn) in self.conns.iter() {
                if !conn.dead && !conn.wq.is_empty() {
                    wants.push(Want::writable(fd_of(&conn.stream)));
                    ids.push(*pid);
                }
            }
            if wants.is_empty() {
                return;
            }
            let budget = deadline.saturating_duration_since(Instant::now());
            if budget.is_zero() {
                return;
            }
            if self.readiness.wait(&mut wants, budget).unwrap_or(0) == 0 {
                continue;
            }
            for (want, pid) in wants.iter().zip(&ids) {
                if want.ready_write {
                    let conn = self.conns.get_mut(pid).expect("conn exists");
                    if conn.wq.flush(&mut conn.stream) == Flush::Closed {
                        conn.dead = true;
                    }
                }
            }
        }
    }
}

/// Runs a whole player set as an in-process reactor mesh on loopback —
/// how `TransportKind::TcpReactor` lets every existing driver and
/// fault-injection test run over the event-driven socket path
/// unchanged. One thread per *player* (each player's reactor is
/// single-threaded), versus the threaded transport's ~n threads per
/// player.
pub(crate) fn run_tcp_reactor_loopback<M: Wire, O: Send>(
    players: Vec<BoxedPlayer<M, O>>,
    policy: DeliveryPolicy,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, O>, Metrics), Error> {
    run_tcp_reactor_loopback_with(players, TcpOptions::with_policy(policy), max_rounds)
}

/// [`run_tcp_reactor_loopback`] with explicit [`TcpOptions`] — large
/// meshes (n=512) need raised dial/accept/round timeouts, everything
/// else uses the defaults for parity with the threaded transport.
///
/// # Errors
///
/// The first player-level [`Error`] of the mesh, if any.
pub fn run_tcp_reactor_loopback_with<M: Wire, O: Send>(
    players: Vec<BoxedPlayer<M, O>>,
    options: TcpOptions,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, O>, Metrics), Error> {
    crate::check_unique_ids(&players)?;
    // Bind every listener up front so the mesh addresses are known
    // before any player dials.
    let mut listeners: BTreeMap<PlayerId, TcpListener> = BTreeMap::new();
    let mut addrs: BTreeMap<PlayerId, SocketAddr> = BTreeMap::new();
    for player in &players {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.insert(player.id(), listener.local_addr()?);
        listeners.insert(player.id(), listener);
    }

    let results: Vec<Result<(PlayerId, O, Metrics), Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = players
            .into_iter()
            .map(|player| {
                let id = player.id();
                let listener = listeners.remove(&id).expect("listener bound above");
                let peers: BTreeMap<PlayerId, SocketAddr> = addrs
                    .iter()
                    .filter(|(p, _)| **p != id)
                    .map(|(p, a)| (*p, *a))
                    .collect();
                let options = options.clone();
                scope.spawn(move || {
                    let transport =
                        ReactorTransport::connect_with_listener(player, listener, peers, options)?;
                    let (out, metrics) = transport.run(max_rounds)?;
                    Ok((id, out, metrics))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mesh player thread panicked"))
            .collect()
    });

    let mut outputs = BTreeMap::new();
    let mut locals = Vec::new();
    for result in results {
        let (id, out, metrics) = result?;
        outputs.insert(id, out);
        locals.push(metrics);
    }
    Ok((outputs, Metrics::merge(locals.iter())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delivered, Outgoing, Protocol, Recipient};

    #[test]
    fn fd_capacity_check_accepts_modest_requests() {
        assert!(ensure_fd_capacity(64));
    }

    /// Mirror of the threaded transport's disconnect-as-silence test:
    /// player 1 finishes (and closes its sockets) at round 1 while
    /// players 2 and 3 keep exchanging frames until round 3. The
    /// survivors must read the mid-round disconnect as silence — EOF,
    /// peer gone, barriers stop waiting — and complete normally.
    #[test]
    fn peer_disconnect_mid_round_reads_as_silence() {
        struct Chatter {
            id: PlayerId,
            quit_after: usize,
            from_one: usize,
        }
        impl Protocol for Chatter {
            type Message = u64;
            type Output = usize;
            fn round(&mut self, round: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, usize> {
                self.from_one += inbox.iter().filter(|d| d.from == 1).count();
                if round >= self.quit_after {
                    return RoundAction::Finish(self.from_one);
                }
                RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Broadcast,
                    msg: self.id as u64 * 100 + round as u64,
                }])
            }
            fn id(&self) -> PlayerId {
                self.id
            }
        }

        let players: Vec<BoxedPlayer<u64, usize>> = vec![
            Box::new(Chatter {
                id: 1,
                quit_after: 1,
                from_one: 0,
            }),
            Box::new(Chatter {
                id: 2,
                quit_after: 3,
                from_one: 0,
            }),
            Box::new(Chatter {
                id: 3,
                quit_after: 3,
                from_one: 0,
            }),
        ];
        let (outputs, _) = run_tcp_reactor_loopback(players, DeliveryPolicy::reliable(), 10)
            .expect("mesh completes");
        assert_eq!(outputs.len(), 3, "survivors and quitter all finish");
        // Player 1 broadcast in round 0 only; each survivor therefore
        // saw exactly one frame from it and silence after the
        // disconnect.
        assert_eq!(outputs[&2], 1);
        assert_eq!(outputs[&3], 1);
    }

    /// A two-player mesh driven through the public per-process API:
    /// both sides report live transport counters.
    #[test]
    fn two_player_mesh_reports_stats() {
        struct Echo {
            id: PlayerId,
            heard: u64,
        }
        impl Protocol for Echo {
            type Message = u64;
            type Output = u64;
            fn round(&mut self, round: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, u64> {
                self.heard += inbox
                    .iter()
                    .filter_map(|d| d.msg.as_ref().ok())
                    .sum::<u64>();
                if round >= 2 {
                    return RoundAction::Finish(self.heard);
                }
                RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Broadcast,
                    msg: self.id as u64,
                }])
            }
            fn id(&self) -> PlayerId {
                self.id
            }
        }

        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = l1.local_addr().unwrap();
        let a2 = l2.local_addr().unwrap();
        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let t = ReactorTransport::connect_with_listener(
                    Box::new(Echo { id: 1, heard: 0 }) as BoxedPlayer<u64, u64>,
                    l1,
                    BTreeMap::from([(2, a2)]),
                    TcpOptions::default(),
                )
                .expect("player 1 connects");
                t.run_with_stats(10).expect("player 1 runs")
            });
            let h2 = scope.spawn(move || {
                let t = ReactorTransport::connect_with_listener(
                    Box::new(Echo { id: 2, heard: 0 }) as BoxedPlayer<u64, u64>,
                    l2,
                    BTreeMap::from([(1, a1)]),
                    TcpOptions::default(),
                )
                .expect("player 2 connects");
                t.run_with_stats(10).expect("player 2 runs")
            });
            (h1.join().unwrap(), h2.join().unwrap())
        });
        let (out1, _, stats1) = r1;
        let (out2, _, stats2) = r2;
        // Broadcast loops back to the sender: each player hears both
        // broadcasts (1 + 2 = 3) in rounds 1 and 2.
        assert_eq!(out1, 6, "player 1 heard both players in both rounds");
        assert_eq!(out2, 6, "player 2 heard both players in both rounds");
        for stats in [&stats1, &stats2] {
            assert_eq!(stats.connections_high_water, 1);
            assert!(stats.frames_in > 0, "payload + control frames arrived");
            assert!(stats.frames_out > 0, "payload + control frames left");
        }
    }
}
