//! Fault injection at the transport layer: what the network does to
//! frames *after* an honest (or Byzantine) player has sent them.
//!
//! A [`DeliveryPolicy`] describes an unreliable network deterministically
//! (everything is driven by a seeded RNG, so a failing scenario replays
//! exactly). Loss-shaped faults — drops, duplicates, partitions,
//! outages — act only on **private channels**: the paper's model (§2.1)
//! assumes a reliable broadcast channel, and the DKG's agreement
//! argument depends on it, so broadcast frames are always delivered
//! exactly once to every live player. Private point-to-point links are
//! where real deployments lose, duplicate, reorder and partition
//! traffic — and where the protocol's complaint machinery earns its
//! keep. The one deliberate exception is [`TamperRule`]: it corrupts a
//! *sender's* frames before fan-out (broadcasts included), modeling a
//! player that emits garbage bytes — every receiver still sees the
//! identical (corrupted) broadcast, so the reliable-channel agreement
//! property is preserved; what is being injected is sender misbehavior,
//! not in-transit tampering.

use crate::PlayerId;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeSet;

/// A transport-level corruption of one player's outgoing frames in one
/// round — how tests exercise the strict decoder end to end (a tampered
/// frame must surface as a decode error at every receiver, never as a
/// panic or a silently wrong value).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tamper {
    /// Drop the last byte (decode fails with `UnexpectedEnd`).
    TruncateTail,
    /// Append a zero byte (decode fails with `TrailingBytes`).
    AppendByte,
    /// Flip the lowest bit of the last payload byte (typically an
    /// invalid-point or non-canonical-scalar failure).
    FlipPayloadBit,
    /// Overwrite the version byte with `0xff` (`UnsupportedVersion`).
    BadVersion,
}

impl Tamper {
    /// Applies the corruption to a frame.
    pub fn apply(self, frame: &mut Vec<u8>) {
        match self {
            Tamper::TruncateTail => {
                frame.pop();
            }
            Tamper::AppendByte => frame.push(0),
            Tamper::FlipPayloadBit => {
                if let Some(last) = frame.last_mut() {
                    *last ^= 1;
                }
            }
            Tamper::BadVersion => {
                if let Some(first) = frame.first_mut() {
                    *first = 0xff;
                }
            }
        }
    }
}

/// Tampers every frame sent by `from` in `round` — broadcasts included
/// (applied before fan-out, so all receivers see the same bytes; this
/// models a faulty or malicious sender, not a broken broadcast channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TamperRule {
    /// The round whose frames are corrupted.
    pub round: usize,
    /// The sending player whose frames are corrupted.
    pub from: PlayerId,
    /// How the frames are corrupted.
    pub kind: Tamper,
}

/// A network split: while active, private frames between the group and
/// its complement are dropped. Frames within the group (and within the
/// complement) flow normally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First round the split is active.
    pub from_round: usize,
    /// First round the split has healed (exclusive end).
    pub until_round: usize,
    /// One side of the split.
    pub group: BTreeSet<PlayerId>,
}

/// A crash-restart window for one player's network interface: while
/// active, all private frames to *and* from the player are dropped.
/// (The player's state machine keeps running — this models a flaky NIC
/// or a process restart that replays from persisted state, as opposed
/// to the protocol-level crash faults injected via Byzantine behaviors.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// The affected player.
    pub player: PlayerId,
    /// First round of the outage.
    pub from_round: usize,
    /// First round after recovery (exclusive end).
    pub until_round: usize,
}

/// Deterministic fault injection for a [`crate::ChannelTransport`] run.
///
/// The default policy is fully reliable (what [`crate::LockstepTransport`]
/// always provides); each field switches on one failure mode.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeliveryPolicy {
    /// Seed of the fault RNG (drops, duplicates and reorder shuffles).
    pub seed: u64,
    /// Probability in `[0, 1]` that a private frame is dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a delivered private frame arrives
    /// twice.
    pub duplicate_rate: f64,
    /// Shuffle each inbox's arrival order every round.
    pub reorder: bool,
    /// Scheduled network splits.
    pub partitions: Vec<Partition>,
    /// Scheduled per-player link outages (crash-restart windows).
    pub outages: Vec<Outage>,
    /// Scheduled frame corruptions.
    pub tamper: Vec<TamperRule>,
}

impl DeliveryPolicy {
    /// A fully reliable network (every field off).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A uniformly lossy, reordering network — the classic "10% drop"
    /// scenario of `examples/lossy_network.rs`.
    pub fn lossy(seed: u64, drop_rate: f64) -> Self {
        DeliveryPolicy {
            seed,
            drop_rate,
            reorder: true,
            ..Self::default()
        }
    }

    /// `true` if the policy never interferes with delivery.
    pub fn is_reliable(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && !self.reorder
            && self.partitions.is_empty()
            && self.outages.is_empty()
            && self.tamper.is_empty()
    }

    /// `true` if the private link `a → b` is administratively up in
    /// `round` (partitions and outages; random drops come on top).
    pub fn link_up(&self, round: usize, a: PlayerId, b: PlayerId) -> bool {
        for o in &self.outages {
            if (o.player == a || o.player == b) && round >= o.from_round && round < o.until_round {
                return false;
            }
        }
        for p in &self.partitions {
            if round >= p.from_round
                && round < p.until_round
                && p.group.contains(&a) != p.group.contains(&b)
            {
                return false;
            }
        }
        true
    }

    /// Applies any matching tamper rule to a frame.
    pub fn tamper_frame(&self, round: usize, from: PlayerId, frame: &mut Vec<u8>) {
        for rule in &self.tamper {
            if rule.round == round && rule.from == from {
                rule.kind.apply(frame);
            }
        }
    }

    /// The fault RNG for one *sender's* drop/duplicate decisions,
    /// deterministic per `(seed, id)`. Every transport derives its
    /// injection schedule from this same stream — one decision drawn per
    /// private frame the sender emits on an administratively-up link, in
    /// emission order — so a faulted run injects the identical schedule
    /// whether the players share a process ([`crate::ChannelTransport`])
    /// or sit behind real sockets ([`crate::TcpTransport`]).
    pub fn sender_rng(&self, id: PlayerId) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (0x7c9_0000_0000u64 | u64::from(id)).rotate_left(17))
    }

    /// The reorder RNG for one receiver's inbox in the round that
    /// *consumes* it, deterministic per `(seed, deliver_round, receiver)`.
    /// Transports shuffle the inbox with one Fisher–Yates pass over this
    /// stream, starting from the canonical pre-shuffle order (ascending
    /// sender id, emission order within a sender, duplicates adjacent).
    pub fn reorder_rng(&self, deliver_round: usize, receiver: PlayerId) -> StdRng {
        StdRng::seed_from_u64(
            self.seed ^ u64::from(deliver_round as u32).rotate_left(32) ^ u64::from(receiver),
        )
    }

    /// One probability draw from a fault RNG. `p <= 0` consumes no
    /// randomness, so a reliable policy leaves every stream untouched.
    pub fn chance(rng: &mut StdRng, p: f64) -> bool {
        p > 0.0 && (rng.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_is_reliable() {
        assert!(DeliveryPolicy::reliable().is_reliable());
        assert!(!DeliveryPolicy::lossy(1, 0.1).is_reliable());
    }

    #[test]
    fn partitions_cut_cross_links_only() {
        let policy = DeliveryPolicy {
            partitions: vec![Partition {
                from_round: 1,
                until_round: 3,
                group: [1, 2].into_iter().collect(),
            }],
            ..DeliveryPolicy::default()
        };
        // Inactive rounds: everything up.
        assert!(policy.link_up(0, 1, 3));
        // Active: cross-split links down, intra-side links up.
        assert!(!policy.link_up(1, 1, 3));
        assert!(!policy.link_up(2, 4, 2));
        assert!(policy.link_up(2, 1, 2));
        assert!(policy.link_up(2, 3, 4));
        // Healed.
        assert!(policy.link_up(3, 1, 3));
    }

    #[test]
    fn outage_cuts_both_directions() {
        let policy = DeliveryPolicy {
            outages: vec![Outage {
                player: 2,
                from_round: 1,
                until_round: 2,
            }],
            ..DeliveryPolicy::default()
        };
        assert!(!policy.link_up(1, 2, 3));
        assert!(!policy.link_up(1, 3, 2));
        assert!(policy.link_up(1, 3, 4));
        assert!(policy.link_up(2, 2, 3));
    }

    #[test]
    fn tamper_kinds() {
        let frame = vec![1u8, 2, 3];
        let mut f = frame.clone();
        Tamper::TruncateTail.apply(&mut f);
        assert_eq!(f, vec![1, 2]);
        let mut f = frame.clone();
        Tamper::AppendByte.apply(&mut f);
        assert_eq!(f, vec![1, 2, 3, 0]);
        let mut f = frame.clone();
        Tamper::FlipPayloadBit.apply(&mut f);
        assert_eq!(f, vec![1, 2, 2]);
        let mut f = frame;
        Tamper::BadVersion.apply(&mut f);
        assert_eq!(f, vec![0xff, 2, 3]);
    }
}
