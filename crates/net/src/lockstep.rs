//! The lockstep transport: the paper's idealized communication model
//! (§2.1) driven synchronously on one thread.
//!
//! This is the faithful-model baseline (formerly `Simulator`): rounds
//! advance in lockstep, every frame sent in round `r` is delivered at
//! the start of round `r + 1`, broadcast is reliable, private channels
//! never fail. Messages still cross the round boundary as **encoded
//! frames** — each recipient independently decodes and validates the
//! bytes — so serialization is exercised even in the idealized model.

use crate::frame::{decode_frame, encode_frame};
use crate::policy::DeliveryPolicy;
use crate::router::{FrameSend, RawDelivered, Router};
use crate::{BoxedPlayer, Delivered, Metrics, PlayerId, RoundAction, SimError};
use borndist_pairing::CodecError;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// Drives a set of [`crate::Protocol`] state machines in lockstep rounds,
/// exchanging encoded frames.
pub struct LockstepTransport<M, O> {
    players: Vec<BoxedPlayer<M, O>>,
    router: Router,
}

impl<M: borndist_pairing::Wire + Clone, O> LockstepTransport<M, O> {
    /// Creates a transport over the given players.
    ///
    /// # Errors
    ///
    /// Fails if two players share an id.
    pub fn new(players: Vec<BoxedPlayer<M, O>>) -> Result<Self, SimError> {
        let ids = crate::check_unique_ids(&players)?;
        Ok(LockstepTransport {
            players,
            router: Router::new(ids, DeliveryPolicy::reliable()),
        })
    }

    /// Runs until every player finishes or `max_rounds` is hit.
    ///
    /// Returns the outputs keyed by player id.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] (naming the unfinished players)
    /// if some player never finishes; [`SimError::UnknownRecipient`] on a
    /// misaddressed private frame.
    pub fn run(&mut self, max_rounds: usize) -> Result<BTreeMap<PlayerId, O>, SimError> {
        let mut inboxes: BTreeMap<PlayerId, Vec<RawDelivered>> = BTreeMap::new();
        let mut outputs: BTreeMap<PlayerId, O> = BTreeMap::new();
        let mut finished: HashSet<PlayerId> = HashSet::new();
        let run_start = Instant::now();

        for round in 0..max_rounds {
            let round_start = Instant::now();
            let mut sends: Vec<FrameSend> = Vec::new();
            // Broadcast fan-out delivers the same frame to every player;
            // the strict decoder is a pure function of the bytes, so the
            // lockstep driver decodes each distinct frame once per round
            // and clones the verdict. (The channel transport skips the
            // cache: its per-player threads decode concurrently, which is
            // the realistic per-recipient-validation behavior.)
            let mut decoded: HashMap<Vec<u8>, Result<M, CodecError>> = HashMap::new();

            for player in self.players.iter_mut() {
                let pid = player.id();
                if finished.contains(&pid) {
                    continue;
                }
                let inbox: Vec<Delivered<M>> = inboxes
                    .remove(&pid)
                    .unwrap_or_default()
                    .into_iter()
                    .map(|raw| {
                        // Probe by reference; on the first sighting the
                        // owned frame buffer itself becomes the cache key
                        // (no byte copies either way).
                        let msg = match decoded.get(&raw.frame) {
                            Some(verdict) => verdict.clone(),
                            None => {
                                let verdict = decode_frame(&raw.frame);
                                decoded.insert(raw.frame, verdict.clone());
                                verdict
                            }
                        };
                        Delivered {
                            from: raw.from,
                            broadcast: raw.broadcast,
                            msg,
                        }
                    })
                    .collect();
                match player.round(round, &inbox) {
                    RoundAction::Finish(out) => {
                        outputs.insert(pid, out);
                        finished.insert(pid);
                    }
                    RoundAction::Continue(outgoing) => {
                        sends.extend(outgoing.into_iter().map(|out| FrameSend {
                            from: pid,
                            to: out.to,
                            frame: encode_frame(&out.msg),
                        }));
                    }
                }
            }

            inboxes = self.router.route(round, sends, &finished)?;
            self.router.finish_round(round_start, run_start);

            if finished.len() == self.players.len() {
                return Ok(outputs);
            }
        }
        Err(SimError::RoundLimitExceeded {
            limit: max_rounds,
            unfinished: self
                .players
                .iter()
                .map(|p| p.id())
                .filter(|id| !finished.contains(id))
                .collect(),
        })
    }

    /// Traffic statistics of the completed (or aborted) run.
    pub fn metrics(&self) -> &Metrics {
        &self.router.metrics
    }

    /// Consumes the transport, returning the collected metrics.
    pub fn into_metrics(self) -> Metrics {
        self.router.metrics
    }
}
