//! # borndist-net
//!
//! A transport-abstracted runtime for the communication model the paper
//! assumes (§2.1): *partially synchronous* communication organized in
//! rounds, a reliable public **broadcast channel** that the adversary
//! can read and use but cannot tamper with, and **private authenticated
//! channels** between every pair of players.
//!
//! Protocols are state machines implementing [`Protocol`]. Their
//! messages never cross a player boundary as Rust values: every message
//! is encoded into a versioned byte [`frame`] (canonical [`Wire`]
//! codec), metered at its real encoded length, and independently
//! decoded-and-validated by each recipient. A frame that fails the
//! strict decode is delivered as a [`CodecError`] in
//! [`Delivered::msg`], so protocols treat malformed traffic as
//! first-class misbehavior rather than panicking.
//!
//! Three interchangeable transports drive the players:
//!
//! * [`LockstepTransport`] — the faithful idealized model (formerly
//!   `Simulator`): synchronous rounds on one thread, reliable delivery;
//! * [`ChannelTransport`] — one OS thread per player, frames crossing
//!   `mpsc` channels, with a deterministic fault-injection
//!   [`DeliveryPolicy`] (per-link drop, duplication, reordering,
//!   partitions, crash-restart outages, frame tampering);
//! * [`TcpTransport`] — one player per engine over real
//!   `std::net::TcpStream` sockets (one reader thread per peer), so a
//!   run can span OS processes and machines;
//!   [`TransportKind::TcpLoopback`] runs a whole player set as an
//!   in-process mesh on `127.0.0.1` for tests;
//! * [`ReactorTransport`] — the same real-socket mesh driven by **one
//!   event loop and zero extra threads** per player (`poll(2)` on
//!   Linux, adaptive readiness scan elsewhere), which is what scales to
//!   n=512+ meshes; [`TransportKind::TcpReactor`] is its in-process
//!   loopback driver.
//!
//! The in-process transports share one router, and the TCP transport
//! meters identically (sender-side, real frame lengths, before fault
//! injection), so traffic metering ([`Metrics`]) agrees by
//! construction: experiment E5's byte counts are the exact frame
//! lengths on the wire, whichever transport runs the protocol.
//! Byzantine behavior is expressed by registering a *different* state
//! machine (or behavior-hooked player) for a corrupted player;
//! unreliable-network behavior by the policy — both in one runtime.
//! Failures from every layer unify in [`Error`] (see [`error`]).

mod channel;
mod error;
pub mod frame;
mod lockstep;
pub mod mesh;
mod policy;
pub mod reactor;
mod ready;
mod router;
pub mod tcp;

pub use borndist_pairing::codec::{CodecError, Wire};
pub use channel::ChannelTransport;
pub use error::{Error, TcpError};
pub use frame::{decode_frame, encode_frame, WIRE_VERSION};
pub use lockstep::LockstepTransport;
pub use policy::{DeliveryPolicy, Outage, Partition, Tamper, TamperRule};
pub use reactor::{ensure_fd_capacity, run_tcp_reactor_loopback_with, ReactorTransport};
pub use tcp::{dial_with_backoff, TcpOptions, TcpTransport, MAX_ENVELOPE_BYTES};

use std::collections::BTreeMap;
use std::time::Duration;

/// 1-based player identifier (index `0` is reserved, matching the
/// secret-sharing convention).
pub type PlayerId = u32;

/// Where a message is addressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recipient {
    /// Reliable broadcast: delivered to *all* players (including the
    /// sender) and observable by the adversary.
    Broadcast,
    /// Private authenticated channel to one player.
    Private(PlayerId),
}

/// A message queued for delivery next round.
#[derive(Clone, Debug)]
pub struct Outgoing<M> {
    /// Destination.
    pub to: Recipient,
    /// Payload (encoded into a frame at the transport boundary).
    pub msg: M,
}

/// A frame delivered to a player at the start of a round, after the
/// strict decode.
#[derive(Clone, Debug)]
pub struct Delivered<M> {
    /// Authenticated sender identity.
    pub from: PlayerId,
    /// `true` if received over the broadcast channel.
    pub broadcast: bool,
    /// The decoded message — or the decode failure, which protocols
    /// must treat as sender misbehavior (decode-validate-then-process).
    pub msg: Result<M, CodecError>,
}

impl<M> Delivered<M> {
    /// The message if it decoded, `None` for malformed frames.
    pub fn ok(&self) -> Option<&M> {
        self.msg.as_ref().ok()
    }
}

/// What a player does at the end of a round.
pub enum RoundAction<M, O> {
    /// Keep running and send these messages.
    Continue(Vec<Outgoing<M>>),
    /// Terminate with a final output (no further messages).
    Finish(O),
}

/// A per-player protocol state machine.
///
/// `round` is called once per simulated round with all frames delivered
/// from the previous round; the first call (`round == 0`) has an empty
/// inbox.
pub trait Protocol {
    /// Wire message type ([`Wire`]-encodable: only its frame bytes ever
    /// leave the player).
    type Message: Wire;
    /// Final per-player output.
    type Output;

    /// Advances the state machine by one round.
    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<Self::Message>],
    ) -> RoundAction<Self::Message, Self::Output>;

    /// This player's identity.
    fn id(&self) -> PlayerId;
}

/// A boxed protocol player, as both transports consume them
/// (`Send` so the channel transport can move it onto its own thread).
pub type BoxedPlayer<M, O> = Box<dyn Protocol<Message = M, Output = O> + Send>;

/// Size of a value on the wire.
///
/// Formerly a hand-maintained estimate trait; now a blanket projection
/// of the [`Wire`] codec (`wire_size == encoded_len`), so size
/// accounting can never drift from the bytes actually sent. Frames add
/// [`frame::WIRE_VERSION`]'s one version byte on top.
pub trait WireSize {
    /// Number of bytes this value occupies on the wire (excluding the
    /// 1-byte frame header).
    fn wire_size(&self) -> usize;
}

impl<T: Wire> WireSize for T {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

/// Traffic statistics collected by the transports.
///
/// Byte counts are **real encoded frame lengths** (version byte
/// included), metered sender-side by the shared router — identical
/// between transports for the same protocol run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of rounds in which at least one message was sent.
    pub active_rounds: usize,
    /// Total rounds driven until every player finished.
    pub total_rounds: usize,
    /// Total messages sent (a broadcast counts once).
    pub messages: usize,
    /// Total frame bytes sent (a broadcast counts once; drops and
    /// duplicates in flight do not change the sender-side count).
    pub bytes: usize,
    /// Per-player bytes sent.
    pub bytes_by_player: BTreeMap<PlayerId, usize>,
    /// Per-round (messages, bytes).
    pub per_round: Vec<(usize, usize)>,
    /// Wall-clock time of the whole run (all players' compute across all
    /// rounds; communication is in-process, so this measures protocol
    /// computation — the latency dimension of experiment E5).
    pub elapsed: Duration,
    /// Per-round wall-clock time, aligned with [`Self::per_round`].
    pub per_round_elapsed: Vec<Duration>,
}

impl Metrics {
    /// `true` if the traffic-shaped fields (everything except the
    /// wall-clock samples) are identical — how transport byte-parity is
    /// asserted without comparing timings.
    pub fn same_traffic(&self, other: &Metrics) -> bool {
        self.active_rounds == other.active_rounds
            && self.total_rounds == other.total_rounds
            && self.messages == other.messages
            && self.bytes == other.bytes
            && self.bytes_by_player == other.bytes_by_player
            && self.per_round == other.per_round
    }

    /// Merges per-player metrics (each covering one player's sends, as
    /// the TCP transport produces) into the global view the in-process
    /// transports meter directly: counters sum, per-round vectors sum
    /// elementwise (padding short runs with zero rounds), and the
    /// wall-clock samples take the slowest player (rounds overlap in
    /// real time, they don't concatenate).
    pub fn merge<'a, I: IntoIterator<Item = &'a Metrics>>(parts: I) -> Metrics {
        let mut merged = Metrics::default();
        for part in parts {
            merged.messages += part.messages;
            merged.bytes += part.bytes;
            merged.total_rounds = merged.total_rounds.max(part.total_rounds);
            for (player, bytes) in &part.bytes_by_player {
                *merged.bytes_by_player.entry(*player).or_insert(0) += bytes;
            }
            if merged.per_round.len() < part.per_round.len() {
                merged.per_round.resize(part.per_round.len(), (0, 0));
            }
            for (slot, (msgs, bytes)) in merged.per_round.iter_mut().zip(&part.per_round) {
                slot.0 += msgs;
                slot.1 += bytes;
            }
            if merged.per_round_elapsed.len() < part.per_round_elapsed.len() {
                merged
                    .per_round_elapsed
                    .resize(part.per_round_elapsed.len(), Duration::ZERO);
            }
            for (slot, sample) in merged
                .per_round_elapsed
                .iter_mut()
                .zip(&part.per_round_elapsed)
            {
                *slot = (*slot).max(*sample);
            }
            merged.elapsed = merged.elapsed.max(part.elapsed);
        }
        merged.active_rounds = merged.per_round.iter().filter(|(m, _)| *m > 0).count();
        merged
    }
}

// Metrics cross process boundaries in the threshold-signing service
// (each player ships its local view to the front-end for merging), so
// they get a canonical encoding like any other protocol value.
impl Wire for Metrics {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.active_rounds as u64).encode_to(out);
        (self.total_rounds as u64).encode_to(out);
        (self.messages as u64).encode_to(out);
        (self.bytes as u64).encode_to(out);
        let by_player: Vec<(PlayerId, u64)> = self
            .bytes_by_player
            .iter()
            .map(|(p, b)| (*p, *b as u64))
            .collect();
        by_player.encode_to(out);
        let per_round: Vec<(u64, u64)> = self
            .per_round
            .iter()
            .map(|(m, b)| (*m as u64, *b as u64))
            .collect();
        per_round.encode_to(out);
        (self.elapsed.as_nanos() as u64).encode_to(out);
        let per_round_elapsed: Vec<u64> = self
            .per_round_elapsed
            .iter()
            .map(|d| d.as_nanos() as u64)
            .collect();
        per_round_elapsed.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let active_rounds = u64::decode(input)? as usize;
        let total_rounds = u64::decode(input)? as usize;
        let messages = u64::decode(input)? as usize;
        let bytes = u64::decode(input)? as usize;
        let by_player = Vec::<(PlayerId, u64)>::decode(input)?;
        let per_round = Vec::<(u64, u64)>::decode(input)?;
        let elapsed = Duration::from_nanos(u64::decode(input)?);
        let per_round_elapsed = Vec::<u64>::decode(input)?;
        Ok(Metrics {
            active_rounds,
            total_rounds,
            messages,
            bytes,
            bytes_by_player: by_player
                .into_iter()
                .map(|(p, b)| (p, b as usize))
                .collect(),
            per_round: per_round
                .into_iter()
                .map(|(m, b)| (m as usize, b as usize))
                .collect(),
            elapsed,
            per_round_elapsed: per_round_elapsed
                .into_iter()
                .map(Duration::from_nanos)
                .collect(),
        })
    }
}

/// A per-request latency distribution: count, mean, nearest-rank
/// percentiles, and the worst sample.
///
/// Built once from raw `Duration` samples by [`Self::from_samples`];
/// every layer that reports request latency (the mux coordinator's
/// enqueue→response stamps, the service front-end, the load harness)
/// summarizes through this one type so daemon-mode and in-process
/// histograms come from the same code path. It crosses the service's
/// client framing, so it carries a canonical encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest-rank).
    pub p50: Duration,
    /// 95th percentile (nearest-rank).
    pub p95: Duration,
    /// 99th percentile (nearest-rank).
    pub p99: Duration,
    /// Worst observed sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes raw samples (order-insensitive). The empty sample set
    /// yields the all-zero summary.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        // Nearest-rank: the q-th percentile is the ⌈q·n⌉-th smallest
        // sample, so small sample sets report real observations rather
        // than interpolated values.
        let pct = |q: f64| -> Duration {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencySummary {
            count: sorted.len() as u64,
            mean: total / sorted.len() as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl Wire for LatencySummary {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.count.encode_to(out);
        (self.mean.as_nanos() as u64).encode_to(out);
        (self.p50.as_nanos() as u64).encode_to(out);
        (self.p95.as_nanos() as u64).encode_to(out);
        (self.p99.as_nanos() as u64).encode_to(out);
        (self.max.as_nanos() as u64).encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(LatencySummary {
            count: u64::decode(input)?,
            mean: Duration::from_nanos(u64::decode(input)?),
            p50: Duration::from_nanos(u64::decode(input)?),
            p95: Duration::from_nanos(u64::decode(input)?),
            p99: Duration::from_nanos(u64::decode(input)?),
            max: Duration::from_nanos(u64::decode(input)?),
        })
    }
}

/// Socket-layer counters of one real-socket transport run — the
/// operational view ([`Metrics`] is the *protocol* view and stays
/// byte-identical across transports; these counters describe how the
/// bytes moved and legitimately differ between the threaded and reactor
/// transports).
///
/// Crosses the service's client framing (the daemon `Summary` reports
/// its signing-mesh counters), so it carries a canonical encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Most peer connections simultaneously open.
    pub connections_high_water: u64,
    /// Envelopes received (payload and control).
    pub frames_in: u64,
    /// Envelopes sent or queued for sending (payload and control).
    pub frames_out: u64,
    /// Times an inbound read resumed a partially buffered frame —
    /// nonzero means the reactor's incremental framing actually crossed
    /// packet boundaries (always `0` for the blocking transport, whose
    /// `read_exact` hides partial reads in the kernel).
    pub partial_read_resumptions: u64,
}

impl TransportStats {
    /// Folds another node's counters into this one: a deployment-wide
    /// aggregate over distinct processes (so even `connections_high_water`
    /// sums — each process's peak is independent).
    pub fn absorb(&mut self, other: &TransportStats) {
        self.connections_high_water += other.connections_high_water;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.partial_read_resumptions += other.partial_read_resumptions;
    }
}

impl Wire for TransportStats {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.connections_high_water.encode_to(out);
        self.frames_in.encode_to(out);
        self.frames_out.encode_to(out);
        self.partial_read_resumptions.encode_to(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TransportStats {
            connections_high_water: u64::decode(input)?,
            frames_in: u64::decode(input)?,
            frames_out: u64::decode(input)?,
            partial_read_resumptions: u64::decode(input)?,
        })
    }
}

/// Errors from a transport run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A player addressed a message to an unknown id.
    UnknownRecipient(PlayerId),
    /// Not all players finished within the round budget.
    RoundLimitExceeded {
        /// The configured budget.
        limit: usize,
        /// The players that had not finished when the budget ran out.
        unfinished: Vec<PlayerId>,
    },
    /// Two players registered with the same id.
    DuplicatePlayer(PlayerId),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::UnknownRecipient(id) => write!(f, "message to unknown player {}", id),
            SimError::RoundLimitExceeded { limit, unfinished } => {
                write!(
                    f,
                    "players {:?} did not finish within {} rounds",
                    unfinished, limit
                )
            }
            SimError::DuplicatePlayer(id) => write!(f, "duplicate player id {}", id),
        }
    }
}
impl std::error::Error for SimError {}

/// Which transport to run a protocol over — how callers up the stack
/// (DKG drivers, examples, benchmarks) select a runtime without caring
/// about its mechanics.
#[derive(Clone, Debug, Default)]
pub enum TransportKind {
    /// [`LockstepTransport`]: the idealized synchronous model.
    #[default]
    Lockstep,
    /// [`ChannelTransport`] with the given fault policy.
    Channel(DeliveryPolicy),
    /// An in-process mesh of [`TcpTransport`]s over real loopback
    /// sockets (one thread and one ephemeral `127.0.0.1` port per
    /// player) with the given fault policy — every driver and
    /// fault-injection test runs unchanged over the real socket path.
    TcpLoopback(DeliveryPolicy),
    /// An in-process mesh of [`ReactorTransport`]s over real loopback
    /// sockets with the given fault policy: the same wire format and
    /// byte-identical [`Metrics`] as [`Self::TcpLoopback`], but each
    /// player is one event loop on one thread instead of ~n threads.
    TcpReactor(DeliveryPolicy),
}

/// Runs a set of players over the selected transport to completion.
///
/// # Errors
///
/// See [`LockstepTransport::run`] / [`ChannelTransport::run`] /
/// [`TcpTransport::run`]; everything unifies into [`Error`].
pub fn run_protocol<M: Wire + Clone, O: Send>(
    kind: &TransportKind,
    players: Vec<BoxedPlayer<M, O>>,
    max_rounds: usize,
) -> Result<(BTreeMap<PlayerId, O>, Metrics), Error> {
    match kind {
        TransportKind::Lockstep => {
            let mut transport = LockstepTransport::new(players)?;
            let outputs = transport.run(max_rounds)?;
            Ok((outputs, transport.into_metrics()))
        }
        TransportKind::Channel(policy) => {
            let mut transport = ChannelTransport::new(players, policy.clone())?;
            let outputs = transport.run(max_rounds)?;
            Ok((outputs, transport.metrics().clone()))
        }
        TransportKind::TcpLoopback(policy) => {
            tcp::run_tcp_loopback(players, policy.clone(), max_rounds)
        }
        TransportKind::TcpReactor(policy) => {
            reactor::run_tcp_reactor_loopback(players, policy.clone(), max_rounds)
        }
    }
}

/// Shared id-uniqueness check for transport construction.
pub(crate) fn check_unique_ids<M: Wire, O>(
    players: &[BoxedPlayer<M, O>],
) -> Result<Vec<PlayerId>, SimError> {
    let mut seen = std::collections::HashSet::new();
    let ids: Vec<PlayerId> = players.iter().map(|p| p.id()).collect();
    for id in &ids {
        if !seen.insert(*id) {
            return Err(SimError::DuplicatePlayer(*id));
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: round 0 everyone broadcasts its id; round 1 everyone
    /// privately sends its id to player 1; round 2 everyone outputs the
    /// sum of everything received (malformed frames count as 1000).
    struct Summer {
        id: PlayerId,
        seen: u64,
    }

    impl Protocol for Summer {
        type Message = u64;
        type Output = u64;

        fn round(&mut self, round: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, u64> {
            self.seen += inbox
                .iter()
                .map(|d| match &d.msg {
                    Ok(v) => *v,
                    Err(_) => 1000,
                })
                .sum::<u64>();
            match round {
                0 => RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Broadcast,
                    msg: self.id as u64,
                }]),
                1 => RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Private(1),
                    msg: 100 + self.id as u64,
                }]),
                _ => RoundAction::Finish(self.seen),
            }
        }

        fn id(&self) -> PlayerId {
            self.id
        }
    }

    fn summers(n: u32) -> Vec<BoxedPlayer<u64, u64>> {
        (1..=n)
            .map(|id| Box::new(Summer { id, seen: 0 }) as BoxedPlayer<u64, u64>)
            .collect()
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let mut sim = LockstepTransport::new(summers(4)).unwrap();
        let out = sim.run(10).unwrap();
        // Everyone saw the 4 broadcasts (1+2+3+4 = 10); player 1 also got
        // the 4 private messages 101+102+103+104 = 410.
        assert_eq!(out[&2], 10);
        assert_eq!(out[&3], 10);
        assert_eq!(out[&1], 10 + 410);
    }

    #[test]
    fn metrics_count_messages_and_rounds() {
        let mut sim = LockstepTransport::new(summers(4)).unwrap();
        sim.run(10).unwrap();
        let m = sim.metrics();
        // Round 0: 4 broadcasts; round 1: 4 private; round 2: none.
        // Each u64 frame is 1 version byte + 8 payload bytes.
        assert_eq!(m.messages, 8);
        assert_eq!(m.active_rounds, 2);
        assert_eq!(m.total_rounds, 3);
        assert_eq!(m.per_round[0], (4, 4 * 9));
        assert_eq!(m.bytes, 8 * 9);
        assert_eq!(m.bytes_by_player[&1], 18);
        // Wall-clock capture: one sample per driven round, and the run
        // total covers at least the per-round sum.
        assert_eq!(m.per_round_elapsed.len(), m.total_rounds);
        let per_round_sum: Duration = m.per_round_elapsed.iter().sum();
        assert!(m.elapsed >= per_round_sum);
    }

    #[test]
    fn channel_transport_agrees_with_lockstep() {
        let mut lockstep = LockstepTransport::new(summers(5)).unwrap();
        let out_l = lockstep.run(10).unwrap();
        let mut channel = ChannelTransport::new(summers(5), DeliveryPolicy::reliable()).unwrap();
        let out_c = channel.run(10).unwrap();
        assert_eq!(out_l, out_c);
        assert!(lockstep.metrics().same_traffic(channel.metrics()));
    }

    #[test]
    fn run_protocol_dispatches_all_kinds() {
        let (out, metrics) = run_protocol(&TransportKind::Lockstep, summers(3), 10).unwrap();
        let (out2, metrics2) = run_protocol(
            &TransportKind::Channel(DeliveryPolicy::reliable()),
            summers(3),
            10,
        )
        .unwrap();
        assert_eq!(out, out2);
        assert!(metrics.same_traffic(&metrics2));
        // The real-socket mesh produces the same outputs and — merged
        // across players — byte-identical traffic metrics (the parity
        // gate of the TCP transport).
        let (out3, metrics3) = run_protocol(
            &TransportKind::TcpLoopback(DeliveryPolicy::reliable()),
            summers(3),
            10,
        )
        .unwrap();
        assert_eq!(out, out3);
        assert!(
            metrics.same_traffic(&metrics3),
            "lockstep {:?} vs tcp {:?}",
            metrics,
            metrics3
        );
        // The event-driven reactor mesh is held to the same parity bar.
        let (out4, metrics4) = run_protocol(
            &TransportKind::TcpReactor(DeliveryPolicy::reliable()),
            summers(3),
            10,
        )
        .unwrap();
        assert_eq!(out, out4);
        assert!(
            metrics.same_traffic(&metrics4),
            "lockstep {:?} vs reactor {:?}",
            metrics,
            metrics4
        );
    }

    #[test]
    fn metrics_merge_sums_traffic_and_maxes_time() {
        let a = Metrics {
            active_rounds: 1,
            total_rounds: 2,
            messages: 3,
            bytes: 30,
            bytes_by_player: [(1, 30)].into_iter().collect(),
            per_round: vec![(3, 30), (0, 0)],
            elapsed: Duration::from_millis(5),
            per_round_elapsed: vec![Duration::from_millis(4), Duration::from_millis(1)],
        };
        let b = Metrics {
            active_rounds: 2,
            total_rounds: 3,
            messages: 2,
            bytes: 20,
            bytes_by_player: [(2, 20)].into_iter().collect(),
            per_round: vec![(1, 10), (1, 10), (0, 0)],
            elapsed: Duration::from_millis(7),
            per_round_elapsed: vec![
                Duration::from_millis(2),
                Duration::from_millis(3),
                Duration::from_millis(2),
            ],
        };
        let merged = Metrics::merge([&a, &b]);
        assert_eq!(merged.messages, 5);
        assert_eq!(merged.bytes, 50);
        assert_eq!(merged.total_rounds, 3);
        assert_eq!(merged.per_round, vec![(4, 40), (1, 10), (0, 0)]);
        assert_eq!(merged.active_rounds, 2);
        assert_eq!(merged.bytes_by_player[&1], 30);
        assert_eq!(merged.bytes_by_player[&2], 20);
        assert_eq!(merged.elapsed, Duration::from_millis(7));
        assert_eq!(merged.per_round_elapsed[0], Duration::from_millis(4));
        assert_eq!(merged.per_round_elapsed[1], Duration::from_millis(3));
    }

    #[test]
    fn metrics_roundtrip_on_the_wire() {
        let mut sim = LockstepTransport::new(summers(4)).unwrap();
        sim.run(10).unwrap();
        let m = sim.metrics().clone();
        let decoded = Metrics::decode_exact(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn round_limit_reports_unfinished_players() {
        struct Forever(PlayerId);
        impl Protocol for Forever {
            type Message = u64;
            type Output = ();
            fn round(&mut self, _r: usize, _i: &[Delivered<u64>]) -> RoundAction<u64, ()> {
                RoundAction::Continue(vec![])
            }
            fn id(&self) -> PlayerId {
                self.0
            }
        }
        struct Immediate(PlayerId);
        impl Protocol for Immediate {
            type Message = u64;
            type Output = ();
            fn round(&mut self, _r: usize, _i: &[Delivered<u64>]) -> RoundAction<u64, ()> {
                RoundAction::Finish(())
            }
            fn id(&self) -> PlayerId {
                self.0
            }
        }
        // Players 2 and 4 never finish — the error names exactly them.
        let players: Vec<BoxedPlayer<u64, ()>> = vec![
            Box::new(Immediate(1)),
            Box::new(Forever(2)),
            Box::new(Immediate(3)),
            Box::new(Forever(4)),
        ];
        let mut sim = LockstepTransport::new(players).unwrap();
        assert_eq!(
            sim.run(5),
            Err(SimError::RoundLimitExceeded {
                limit: 5,
                unfinished: vec![2, 4],
            })
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let players: Vec<BoxedPlayer<u64, u64>> = vec![
            Box::new(Summer { id: 1, seen: 0 }),
            Box::new(Summer { id: 1, seen: 0 }),
        ];
        assert!(matches!(
            LockstepTransport::new(players),
            Err(SimError::DuplicatePlayer(1))
        ));
    }

    #[test]
    fn unknown_recipient_detected() {
        struct Misaddressed;
        impl Protocol for Misaddressed {
            type Message = u64;
            type Output = ();
            fn round(&mut self, _r: usize, _i: &[Delivered<u64>]) -> RoundAction<u64, ()> {
                RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Private(99),
                    msg: 0,
                }])
            }
            fn id(&self) -> PlayerId {
                1
            }
        }
        let mut sim: LockstepTransport<u64, ()> =
            LockstepTransport::new(vec![Box::new(Misaddressed)]).unwrap();
        assert_eq!(sim.run(3), Err(SimError::UnknownRecipient(99)));
    }

    #[test]
    fn no_delivery_to_finished_players() {
        // Player 1 finishes in round 0; players 2 and 3 keep
        // broadcasting afterwards. Their frames must never be queued
        // into player 1's inbox (it would silently leak memory and mask
        // protocol bugs) — and 2 and 3 must still hear each other.
        struct EarlyOut;
        impl Protocol for EarlyOut {
            type Message = u64;
            type Output = u64;
            fn round(&mut self, _r: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, u64> {
                assert!(inbox.is_empty(), "finished player must receive nothing");
                RoundAction::Finish(0)
            }
            fn id(&self) -> PlayerId {
                1
            }
        }
        struct Chatter {
            id: PlayerId,
            heard: u64,
        }
        impl Protocol for Chatter {
            type Message = u64;
            type Output = u64;
            fn round(&mut self, round: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, u64> {
                self.heard += inbox.iter().filter(|d| d.msg.is_ok()).count() as u64;
                if round == 3 {
                    RoundAction::Finish(self.heard)
                } else {
                    RoundAction::Continue(vec![Outgoing {
                        to: Recipient::Broadcast,
                        msg: round as u64,
                    }])
                }
            }
            fn id(&self) -> PlayerId {
                self.id
            }
        }
        let players: Vec<BoxedPlayer<u64, u64>> = vec![
            Box::new(EarlyOut),
            Box::new(Chatter { id: 2, heard: 0 }),
            Box::new(Chatter { id: 3, heard: 0 }),
        ];
        let mut sim = LockstepTransport::new(players).unwrap();
        let out = sim.run(10).unwrap();
        // Rounds 0..=2 each had 2 broadcasts; every chatter hears both
        // (its own included) in rounds 1..=3.
        assert_eq!(out[&2], 6);
        assert_eq!(out[&3], 6);
        // Broadcasts after round 0 were delivered to exactly 2 players,
        // not 3: total messages is 6, and byte totals match 2 frames of
        // 9 bytes per active round — the metering sees sends, while
        // player 1's inbox assertion above proves non-delivery.
        assert_eq!(sim.metrics().messages, 6);
    }

    #[test]
    fn wire_size_blanket_matches_encoded_len() {
        use borndist_pairing::Wire as _;
        assert_eq!(42u32.wire_size(), 4);
        assert_eq!(vec![1u64, 2, 3].wire_size(), 4 + 24);
        assert_eq!(Some(7u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!((1u32, 2u64).wire_size(), 12);
        // The blanket impl is literally the encoder's output length.
        assert_eq!(
            vec![1u64, 2, 3].wire_size(),
            vec![1u64, 2, 3].encode().len()
        );
    }

    #[test]
    fn lossy_channel_delivers_broadcasts_reliably() {
        // Broadcast traffic is immune to the policy: even at 100% drop
        // rate the Summer protocol's broadcasts arrive. The round-1
        // private messages all drop, so player 1 sums only broadcasts.
        let policy = DeliveryPolicy {
            drop_rate: 1.0,
            seed: 9,
            ..DeliveryPolicy::default()
        };
        let mut channel = ChannelTransport::new(summers(4), policy).unwrap();
        let out = channel.run(10).unwrap();
        assert_eq!(out[&1], 10);
        assert_eq!(out[&2], 10);
    }

    #[test]
    fn tampered_frames_surface_as_decode_errors() {
        // Tamper player 2's round-0 broadcast: every receiver sees a
        // CodecError (counted as 1000 by Summer) instead of the value 2.
        let policy = DeliveryPolicy {
            tamper: vec![TamperRule {
                round: 0,
                from: 2,
                kind: Tamper::TruncateTail,
            }],
            ..DeliveryPolicy::default()
        };
        let mut channel = ChannelTransport::new(summers(4), policy).unwrap();
        let out = channel.run(10).unwrap();
        assert_eq!(out[&3], 10 - 2 + 1000);
        // Metering is sender-side: byte totals are unchanged by the
        // in-flight corruption.
        assert_eq!(channel.metrics().bytes, 8 * 9);
    }

    #[test]
    fn duplicates_and_reorder_are_deterministic() {
        let policy = DeliveryPolicy {
            duplicate_rate: 1.0,
            reorder: true,
            seed: 4,
            ..DeliveryPolicy::default()
        };
        let run = |policy: DeliveryPolicy| {
            let mut channel = ChannelTransport::new(summers(4), policy).unwrap();
            let out = channel.run(10).unwrap();
            (out, channel.metrics().clone())
        };
        let (out1, m1) = run(policy.clone());
        let (out2, m2) = run(policy);
        assert_eq!(out1, out2);
        assert!(m1.same_traffic(&m2));
        // Every private message to player 1 was duplicated.
        assert_eq!(out1[&1], 10 + 2 * 410);
        // Sender-side metering ignores duplication.
        assert_eq!(m1.messages, 8);
    }

    #[test]
    fn outage_window_drops_private_frames() {
        // Player 1's links are down in round 1 (when the private sends
        // happen) — it receives none of them, but broadcasts got through
        // in round 0.
        let policy = DeliveryPolicy {
            outages: vec![Outage {
                player: 1,
                from_round: 1,
                until_round: 2,
            }],
            ..DeliveryPolicy::default()
        };
        let mut channel = ChannelTransport::new(summers(4), policy).unwrap();
        let out = channel.run(10).unwrap();
        assert_eq!(out[&1], 10);
    }
}
