//! # borndist-net
//!
//! A deterministic, in-process simulator of the communication model the
//! paper assumes (§2.1): *partially synchronous* communication organized
//! in rounds, a reliable public **broadcast channel** that the adversary
//! can read and use but cannot tamper with, and **private authenticated
//! channels** between every pair of players.
//!
//! Protocols are state machines implementing [`Protocol`]; the
//! [`Simulator`] drives all players round by round, delivering each
//! round's messages at the start of the next. Byzantine behavior is
//! expressed simply by registering a *different* state machine for a
//! corrupted player — the DKG crate ships a small zoo of liars and
//! crashers built this way.
//!
//! The simulator also meters traffic ([`Metrics`]): rounds elapsed,
//! messages and bytes per round and per player, which is how experiment
//! E5 (DKG communication cost vs. `n`) is measured. Byte counts come from
//! the [`WireSize`] trait so they reflect compact wire encodings
//! (48/96-byte compressed points, 32-byte scalars) rather than any
//! codec's framing overhead.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// 1-based player identifier (index `0` is reserved, matching the
/// secret-sharing convention).
pub type PlayerId = u32;

/// Where a message is addressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recipient {
    /// Reliable broadcast: delivered to *all* players (including the
    /// sender) and observable by the adversary.
    Broadcast,
    /// Private authenticated channel to one player.
    Private(PlayerId),
}

/// A message queued for delivery next round.
#[derive(Clone, Debug)]
pub struct Outgoing<M> {
    /// Destination.
    pub to: Recipient,
    /// Payload.
    pub msg: M,
}

/// A message delivered to a player at the start of a round.
#[derive(Clone, Debug)]
pub struct Delivered<M> {
    /// Authenticated sender identity.
    pub from: PlayerId,
    /// `true` if received over the broadcast channel.
    pub broadcast: bool,
    /// Payload.
    pub msg: M,
}

/// What a player does at the end of a round.
pub enum RoundAction<M, O> {
    /// Keep running and send these messages.
    Continue(Vec<Outgoing<M>>),
    /// Terminate with a final output (no further messages).
    Finish(O),
}

/// A per-player protocol state machine.
///
/// `round` is called once per simulated round with all messages delivered
/// from the previous round; the first call (`round == 0`) has an empty
/// inbox.
pub trait Protocol {
    /// Wire message type.
    type Message: Clone + WireSize;
    /// Final per-player output.
    type Output;

    /// Advances the state machine by one round.
    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivered<Self::Message>],
    ) -> RoundAction<Self::Message, Self::Output>;

    /// This player's identity.
    fn id(&self) -> PlayerId;
}

/// Size of a value in a compact wire encoding, used for byte metering.
pub trait WireSize {
    /// Number of bytes this value occupies on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}
impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}
impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}
impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}
impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}
impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

/// Traffic statistics collected by the simulator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of rounds in which at least one message was sent.
    pub active_rounds: usize,
    /// Total rounds driven until every player finished.
    pub total_rounds: usize,
    /// Total messages sent (a broadcast counts once).
    pub messages: usize,
    /// Total bytes sent (a broadcast counts once).
    pub bytes: usize,
    /// Per-player bytes sent.
    pub bytes_by_player: BTreeMap<PlayerId, usize>,
    /// Per-round (messages, bytes).
    pub per_round: Vec<(usize, usize)>,
    /// Wall-clock time of the whole run (all players' compute across all
    /// rounds; communication is simulated in-process, so this measures
    /// protocol computation — the latency dimension of experiment E5).
    pub elapsed: Duration,
    /// Per-round wall-clock time, aligned with [`Self::per_round`].
    pub per_round_elapsed: Vec<Duration>,
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A player addressed a message to an unknown id.
    UnknownRecipient(PlayerId),
    /// Not all players finished within the round budget.
    RoundLimitExceeded {
        /// The configured budget.
        limit: usize,
    },
    /// Two players registered with the same id.
    DuplicatePlayer(PlayerId),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::UnknownRecipient(id) => write!(f, "message to unknown player {}", id),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "players did not finish within {} rounds", limit)
            }
            SimError::DuplicatePlayer(id) => write!(f, "duplicate player id {}", id),
        }
    }
}
impl std::error::Error for SimError {}

/// Drives a set of [`Protocol`] state machines in lockstep rounds.
pub struct Simulator<M, O> {
    players: Vec<Box<dyn Protocol<Message = M, Output = O>>>,
    metrics: Metrics,
}

impl<M: Clone + WireSize, O> Simulator<M, O> {
    /// Creates a simulator over the given players.
    ///
    /// # Errors
    ///
    /// Fails if two players share an id.
    pub fn new(players: Vec<Box<dyn Protocol<Message = M, Output = O>>>) -> Result<Self, SimError> {
        let mut seen = std::collections::HashSet::new();
        for p in &players {
            if !seen.insert(p.id()) {
                return Err(SimError::DuplicatePlayer(p.id()));
            }
        }
        Ok(Simulator {
            players,
            metrics: Metrics::default(),
        })
    }

    /// Runs until every player finishes or `max_rounds` is hit.
    ///
    /// Returns the outputs keyed by player id.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if some player never finishes;
    /// [`SimError::UnknownRecipient`] on a misaddressed private message.
    pub fn run(&mut self, max_rounds: usize) -> Result<BTreeMap<PlayerId, O>, SimError> {
        let ids: Vec<PlayerId> = self.players.iter().map(|p| p.id()).collect();
        let mut inboxes: BTreeMap<PlayerId, Vec<Delivered<M>>> =
            ids.iter().map(|id| (*id, Vec::new())).collect();
        let mut outputs: BTreeMap<PlayerId, O> = BTreeMap::new();
        let mut finished: std::collections::HashSet<PlayerId> = Default::default();
        let run_start = Instant::now();

        for round in 0..max_rounds {
            let round_start = Instant::now();
            let mut round_msgs = 0usize;
            let mut round_bytes = 0usize;
            let mut next_inboxes: BTreeMap<PlayerId, Vec<Delivered<M>>> =
                ids.iter().map(|id| (*id, Vec::new())).collect();

            for player in self.players.iter_mut() {
                let pid = player.id();
                if finished.contains(&pid) {
                    continue;
                }
                let inbox = inboxes.remove(&pid).unwrap_or_default();
                match player.round(round, &inbox) {
                    RoundAction::Finish(out) => {
                        outputs.insert(pid, out);
                        finished.insert(pid);
                    }
                    RoundAction::Continue(outgoing) => {
                        for out in outgoing {
                            let size = out.msg.wire_size();
                            round_msgs += 1;
                            round_bytes += size;
                            *self.metrics.bytes_by_player.entry(pid).or_insert(0) += size;
                            match out.to {
                                Recipient::Broadcast => {
                                    for target in &ids {
                                        next_inboxes.get_mut(target).unwrap().push(Delivered {
                                            from: pid,
                                            broadcast: true,
                                            msg: out.msg.clone(),
                                        });
                                    }
                                }
                                Recipient::Private(to) => {
                                    let slot = next_inboxes
                                        .get_mut(&to)
                                        .ok_or(SimError::UnknownRecipient(to))?;
                                    slot.push(Delivered {
                                        from: pid,
                                        broadcast: false,
                                        msg: out.msg.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }

            self.metrics.total_rounds = round + 1;
            self.metrics.messages += round_msgs;
            self.metrics.bytes += round_bytes;
            self.metrics.per_round.push((round_msgs, round_bytes));
            self.metrics.per_round_elapsed.push(round_start.elapsed());
            self.metrics.elapsed = run_start.elapsed();
            if round_msgs > 0 {
                self.metrics.active_rounds += 1;
            }
            inboxes = next_inboxes;

            if finished.len() == self.players.len() {
                return Ok(outputs);
            }
        }
        Err(SimError::RoundLimitExceeded { limit: max_rounds })
    }

    /// Traffic statistics of the completed (or aborted) run.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: round 0 everyone broadcasts its id; round 1 everyone
    /// privately sends its id to player 1; round 2 everyone outputs the
    /// sum of everything received.
    struct Summer {
        id: PlayerId,
        seen: u64,
    }

    impl Protocol for Summer {
        type Message = u64;
        type Output = u64;

        fn round(&mut self, round: usize, inbox: &[Delivered<u64>]) -> RoundAction<u64, u64> {
            self.seen += inbox.iter().map(|d| d.msg).sum::<u64>();
            match round {
                0 => RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Broadcast,
                    msg: self.id as u64,
                }]),
                1 => RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Private(1),
                    msg: 100 + self.id as u64,
                }]),
                _ => RoundAction::Finish(self.seen),
            }
        }

        fn id(&self) -> PlayerId {
            self.id
        }
    }

    fn summers(n: u32) -> Vec<Box<dyn Protocol<Message = u64, Output = u64>>> {
        (1..=n)
            .map(|id| {
                Box::new(Summer { id, seen: 0 }) as Box<dyn Protocol<Message = u64, Output = u64>>
            })
            .collect()
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let mut sim = Simulator::new(summers(4)).unwrap();
        let out = sim.run(10).unwrap();
        // Everyone saw the 4 broadcasts (1+2+3+4 = 10); player 1 also got
        // the 4 private messages 101+102+103+104 = 410.
        assert_eq!(out[&2], 10);
        assert_eq!(out[&3], 10);
        assert_eq!(out[&1], 10 + 410);
    }

    #[test]
    fn metrics_count_messages_and_rounds() {
        let mut sim = Simulator::new(summers(4)).unwrap();
        sim.run(10).unwrap();
        let m = sim.metrics();
        // Round 0: 4 broadcasts; round 1: 4 private; round 2: none.
        assert_eq!(m.messages, 8);
        assert_eq!(m.active_rounds, 2);
        assert_eq!(m.total_rounds, 3);
        assert_eq!(m.per_round[0], (4, 4 * 8));
        assert_eq!(m.bytes, 8 * 8);
        assert_eq!(m.bytes_by_player[&1], 16);
        // Wall-clock capture: one sample per driven round, and the run
        // total covers at least the per-round sum.
        assert_eq!(m.per_round_elapsed.len(), m.total_rounds);
        let per_round_sum: Duration = m.per_round_elapsed.iter().sum();
        assert!(m.elapsed >= per_round_sum);
    }

    #[test]
    fn round_limit_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Message = u64;
            type Output = ();
            fn round(&mut self, _r: usize, _i: &[Delivered<u64>]) -> RoundAction<u64, ()> {
                RoundAction::Continue(vec![])
            }
            fn id(&self) -> PlayerId {
                1
            }
        }
        let mut sim: Simulator<u64, ()> = Simulator::new(vec![Box::new(Forever)]).unwrap();
        assert_eq!(sim.run(5), Err(SimError::RoundLimitExceeded { limit: 5 }));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let players = vec![
            Box::new(Summer { id: 1, seen: 0 }) as Box<dyn Protocol<Message = u64, Output = u64>>,
            Box::new(Summer { id: 1, seen: 0 }),
        ];
        assert!(matches!(
            Simulator::new(players),
            Err(SimError::DuplicatePlayer(1))
        ));
    }

    #[test]
    fn unknown_recipient_detected() {
        struct Misaddressed;
        impl Protocol for Misaddressed {
            type Message = u64;
            type Output = ();
            fn round(&mut self, _r: usize, _i: &[Delivered<u64>]) -> RoundAction<u64, ()> {
                RoundAction::Continue(vec![Outgoing {
                    to: Recipient::Private(99),
                    msg: 0,
                }])
            }
            fn id(&self) -> PlayerId {
                1
            }
        }
        let mut sim: Simulator<u64, ()> = Simulator::new(vec![Box::new(Misaddressed)]).unwrap();
        assert_eq!(sim.run(3), Err(SimError::UnknownRecipient(99)));
    }

    #[test]
    fn wire_size_impls() {
        assert_eq!(42u32.wire_size(), 4);
        assert_eq!(vec![1u64, 2, 3].wire_size(), 4 + 24);
        assert_eq!(Some(7u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!((1u32, 2u64).wire_size(), 12);
    }
}
