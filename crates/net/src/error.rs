//! One error hierarchy for the whole network stack.
//!
//! Before the TCP transport landed, every layer had its own ad-hoc enum
//! and callers matched on each in turn. Now [`SimError`] (protocol-run
//! failures), [`CodecError`] (strict-decode failures) and [`TcpError`]
//! (socket-layer failures) all implement `std::error::Error` + `Display`
//! and convert into the top-level [`Error`] via `From`, so a daemon can
//! thread `?` from a socket read all the way up to its main loop.

use crate::{PlayerId, SimError};
use borndist_pairing::CodecError;
use std::net::SocketAddr;

/// Any failure of a protocol run, whichever transport carried it.
#[derive(Debug)]
pub enum Error {
    /// Protocol-level failure (round budget, bad addressing, duplicate
    /// ids) — the errors the in-process transports already produced.
    Sim(SimError),
    /// A strict-decode failure at a layer where it is *not* protocol
    /// misbehavior (e.g. a corrupted transport envelope). Malformed
    /// protocol frames never surface here — they are delivered to the
    /// player as `Delivered::msg: Err(CodecError)` instead.
    Codec(CodecError),
    /// Socket-layer failure of the TCP transport.
    Tcp(TcpError),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "protocol run failed: {}", e),
            Error::Codec(e) => write!(f, "envelope decode failed: {}", e),
            Error::Tcp(e) => write!(f, "tcp transport failed: {}", e),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Codec(e) => Some(e),
            Error::Tcp(e) => Some(e),
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Codec(e)
    }
}

impl From<TcpError> for Error {
    fn from(e: TcpError) -> Self {
        Error::Tcp(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Tcp(TcpError::Io(e))
    }
}

/// What can go wrong between real sockets.
#[derive(Debug)]
pub enum TcpError {
    /// An I/O operation failed outside any more specific context.
    Io(std::io::Error),
    /// A peer could not be dialed within the configured retry budget.
    DialFailed {
        /// The peer that never answered.
        peer: PlayerId,
        /// The address dialed.
        addr: SocketAddr,
        /// Number of attempts made.
        attempts: u32,
        /// The last connection error.
        last: std::io::Error,
    },
    /// The connect/accept handshake failed or identified the wrong peer.
    Handshake {
        /// Who the handshake was with (0 if the peer never said).
        peer: PlayerId,
        /// Human-readable reason.
        reason: String,
    },
    /// Not every expected inbound peer connected within the accept
    /// deadline.
    AcceptTimeout {
        /// Peers that never completed the handshake.
        missing: Vec<PlayerId>,
    },
    /// A length prefix exceeded [`crate::tcp::MAX_ENVELOPE_BYTES`] — the
    /// pre-allocation guard against adversarial lengths.
    OversizedEnvelope {
        /// The declared length.
        declared: usize,
        /// The enforced maximum.
        max: usize,
    },
}

impl core::fmt::Display for TcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "socket i/o failed: {}", e),
            TcpError::DialFailed {
                peer,
                addr,
                attempts,
                last,
            } => write!(
                f,
                "dialing player {} at {} failed after {} attempts: {}",
                peer, addr, attempts, last
            ),
            TcpError::Handshake { peer, reason } => {
                write!(f, "handshake with player {} failed: {}", peer, reason)
            }
            TcpError::AcceptTimeout { missing } => {
                write!(f, "players {:?} never connected", missing)
            }
            TcpError::OversizedEnvelope { declared, max } => {
                write!(f, "envelope length {} exceeds the {} cap", declared, max)
            }
        }
    }
}

impl std::error::Error for TcpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcpError::Io(e) => Some(e),
            TcpError::DialFailed { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_compose_with_question_mark() {
        fn sim() -> Result<(), Error> {
            Err(SimError::DuplicatePlayer(3))?;
            Ok(())
        }
        fn codec() -> Result<(), Error> {
            Err(CodecError::UnexpectedEnd)?;
            Ok(())
        }
        fn io() -> Result<(), Error> {
            Err(std::io::Error::other("x"))?;
            Ok(())
        }
        assert!(matches!(sim(), Err(Error::Sim(_))));
        assert!(matches!(codec(), Err(Error::Codec(_))));
        assert!(matches!(io(), Err(Error::Tcp(TcpError::Io(_)))));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e = Error::from(SimError::DuplicatePlayer(1));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("duplicate player"));
        let t = Error::from(TcpError::Handshake {
            peer: 2,
            reason: "wrong id".into(),
        });
        assert!(t.to_string().contains("player 2"));
    }
}
